//===- sem/Lower.cpp - Lowering: unrolling, folding, normalization -------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sem/Lower.h"

#include "ast/ASTUtil.h"
#include "support/Casting.h"

#include <cmath>
#include <optional>
#include <set>
#include <unordered_set>

using namespace psketch;

unsigned LoweredProgram::slotId(const std::string &Slot) const {
  auto It = SlotIds.find(Slot);
  return It == SlotIds.end() ? ~0u : It->second;
}

namespace {

std::string slotName(const std::string &Array, long Index) {
  return Array + "[" + std::to_string(Index) + "]";
}

class Lowerer {
public:
  Lowerer(const Program &P, const InputBindings &Inputs, DiagEngine &Diags,
          bool KeepHoles)
      : P(P), Inputs(Inputs), Diags(Diags), KeepHoles(KeepHoles) {}

  std::unique_ptr<LoweredProgram> run();

private:
  bool registerSlots(LoweredProgram &LP);
  bool lowerStmt(const Stmt &S, std::vector<StmtPtr> &Out);
  ExprPtr lowerExpr(const Expr &E);
  std::optional<long> evalInt(const Expr &E);

  /// Slots assigned anywhere in the given lowered statements (including
  /// inside nested ifs).
  static void updatedSlots(const std::vector<StmtPtr> &Stmts,
                           std::set<std::string> &Slots);

  const Program &P;
  const InputBindings &Inputs;
  DiagEngine &Diags;
  LoweredProgram *LP = nullptr;
  std::unordered_map<std::string, long> LoopVals;
  bool KeepHoles = false;
};

bool Lowerer::registerSlots(LoweredProgram &Out) {
  auto AddSlot = [&](const std::string &Name, ScalarKind Kind) {
    Out.SlotIds[Name] = unsigned(Out.Slots.size());
    Out.Slots.push_back(Name);
    Out.SlotKinds.push_back(Kind);
  };
  for (const LocalDecl &D : P.getDecls()) {
    if (!D.isArray()) {
      AddSlot(D.Name, D.Kind);
      continue;
    }
    auto Size = evalInt(*D.ArraySize);
    if (!Size || *Size < 0) {
      Diags.error(D.ArraySize->getLoc(),
                  "array size of '" + D.Name +
                      "' is not a non-negative input constant");
      return false;
    }
    for (long I = 0; I != *Size; ++I)
      AddSlot(slotName(D.Name, I), D.Kind);
  }
  for (const std::string &R : P.getReturns()) {
    const LocalDecl *D = P.findDecl(R);
    if (!D) {
      Diags.error({}, "returned variable '" + R + "' is not a local");
      return false;
    }
    if (!D->isArray()) {
      Out.ReturnSlots.push_back(R);
      continue;
    }
    auto Size = evalInt(*D->ArraySize);
    for (long I = 0; I != *Size; ++I)
      Out.ReturnSlots.push_back(slotName(R, I));
  }
  return true;
}

std::optional<long> Lowerer::evalInt(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::Const: {
    const auto &C = cast<ConstExpr>(E);
    if (C.getScalarKind() == ScalarKind::Bool)
      return std::nullopt;
    double V = C.getValue();
    if (V != std::floor(V))
      return std::nullopt;
    return long(V);
  }
  case Expr::Kind::Var: {
    const std::string &Name = cast<VarExpr>(E).getName();
    auto It = LoopVals.find(Name);
    if (It != LoopVals.end())
      return It->second;
    const InputValue *IV = Inputs.find(Name);
    if (IV && !IV->isArray() && IV->Ty.Kind == ScalarKind::Int)
      return long(IV->scalar());
    return std::nullopt;
  }
  case Expr::Kind::Index: {
    const auto &IX = cast<IndexExpr>(E);
    const InputValue *IV = Inputs.find(IX.getArrayName());
    if (!IV || !IV->isArray())
      return std::nullopt;
    auto Idx = evalInt(IX.getIndex());
    if (!Idx || *Idx < 0 || size_t(*Idx) >= IV->Values.size())
      return std::nullopt;
    double V = IV->Values[size_t(*Idx)];
    if (V != std::floor(V))
      return std::nullopt;
    return long(V);
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    if (U.getOp() != UnaryOp::Neg)
      return std::nullopt;
    auto Sub = evalInt(U.getSub());
    if (!Sub)
      return std::nullopt;
    return -*Sub;
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    auto L = evalInt(B.getLHS());
    auto R = evalInt(B.getRHS());
    if (!L || !R)
      return std::nullopt;
    switch (B.getOp()) {
    case BinaryOp::Add:
      return *L + *R;
    case BinaryOp::Sub:
      return *L - *R;
    case BinaryOp::Mul:
      return *L * *R;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

ExprPtr Lowerer::lowerExpr(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::Const:
    return E.clone();
  case Expr::Kind::Var: {
    const std::string &Name = cast<VarExpr>(E).getName();
    auto It = LoopVals.find(Name);
    if (It != LoopVals.end())
      return ConstExpr::integer(It->second, E.getLoc());
    if (const InputValue *IV = Inputs.find(Name)) {
      if (IV->isArray()) {
        Diags.error(E.getLoc(),
                    "input array '" + Name + "' used without an index");
        return nullptr;
      }
      return std::make_unique<ConstExpr>(IV->scalar(), IV->Ty.Kind,
                                         E.getLoc());
    }
    if (LP->SlotIds.count(Name))
      return std::make_unique<VarExpr>(Name, E.getLoc());
    Diags.error(E.getLoc(), "unbound variable '" + Name + "'");
    return nullptr;
  }
  case Expr::Kind::Index: {
    const auto &IX = cast<IndexExpr>(E);
    auto Idx = evalInt(IX.getIndex());
    if (!Idx) {
      Diags.error(E.getLoc(),
                  "array index into '" + IX.getArrayName() +
                      "' is not an input-computable constant");
      return nullptr;
    }
    if (const InputValue *IV = Inputs.find(IX.getArrayName())) {
      if (*Idx < 0 || size_t(*Idx) >= IV->Values.size()) {
        Diags.error(E.getLoc(), "index " + std::to_string(*Idx) +
                                    " out of bounds for input array '" +
                                    IX.getArrayName() + "'");
        return nullptr;
      }
      return std::make_unique<ConstExpr>(IV->Values[size_t(*Idx)],
                                         IV->Ty.Kind, E.getLoc());
    }
    std::string Slot = slotName(IX.getArrayName(), *Idx);
    if (!LP->SlotIds.count(Slot)) {
      Diags.error(E.getLoc(), "index " + std::to_string(*Idx) +
                                  " out of bounds for array '" +
                                  IX.getArrayName() + "'");
      return nullptr;
    }
    return std::make_unique<VarExpr>(Slot, E.getLoc());
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    ExprPtr Sub = lowerExpr(U.getSub());
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(U.getOp(), std::move(Sub),
                                       E.getLoc());
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    ExprPtr L = lowerExpr(B.getLHS());
    ExprPtr R = lowerExpr(B.getRHS());
    if (!L || !R)
      return nullptr;
    return std::make_unique<BinaryExpr>(B.getOp(), std::move(L),
                                        std::move(R), E.getLoc());
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(E);
    ExprPtr C = lowerExpr(I.getCond());
    ExprPtr T = lowerExpr(I.getThen());
    ExprPtr F = lowerExpr(I.getElse());
    if (!C || !T || !F)
      return nullptr;
    return std::make_unique<IteExpr>(std::move(C), std::move(T),
                                     std::move(F), E.getLoc());
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(E);
    std::vector<ExprPtr> Args;
    Args.reserve(S.getNumArgs());
    for (const ExprPtr &A : S.getArgs()) {
      ExprPtr LA = lowerExpr(*A);
      if (!LA)
        return nullptr;
      Args.push_back(std::move(LA));
    }
    return std::make_unique<SampleExpr>(S.getDist(), std::move(Args),
                                        E.getLoc());
  }
  case Expr::Kind::Hole: {
    if (!KeepHoles) {
      Diags.error(E.getLoc(),
                  "holes must be instantiated before lowering");
      return nullptr;
    }
    // Template mode: keep the hole, lower its arguments in this
    // unrolling context so each site's references are resolved.
    const auto &H = cast<HoleExpr>(E);
    std::vector<ExprPtr> Args;
    Args.reserve(H.getNumArgs());
    for (const ExprPtr &A : H.getArgs()) {
      ExprPtr LA = lowerExpr(*A);
      if (!LA)
        return nullptr;
      Args.push_back(std::move(LA));
    }
    auto Out = std::make_unique<HoleExpr>(H.getHoleId(), std::move(Args),
                                          E.getLoc());
    Out->setExpectedKind(H.getExpectedKind());
    return Out;
  }
  case Expr::Kind::HoleArg:
    Diags.error(E.getLoc(),
                "holes must be instantiated before lowering");
    return nullptr;
  }
  return nullptr;
}

void Lowerer::updatedSlots(const std::vector<StmtPtr> &Stmts,
                           std::set<std::string> &Slots) {
  for (const StmtPtr &S : Stmts) {
    if (const auto *A = dyn_cast<AssignStmt>(S.get())) {
      Slots.insert(A->getTarget().Name);
    } else if (const auto *I = dyn_cast<IfStmt>(S.get())) {
      updatedSlots(I->getThen().getStmts(), Slots);
      updatedSlots(I->getElse().getStmts(), Slots);
    }
  }
}

bool Lowerer::lowerStmt(const Stmt &S, std::vector<StmtPtr> &Out) {
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    return true;
  case Stmt::Kind::Assign: {
    const auto &A = cast<AssignStmt>(S);
    std::string Slot = A.getTarget().Name;
    if (Inputs.find(Slot)) {
      Diags.error(S.getLoc(), "cannot assign to input '" + Slot + "'");
      return false;
    }
    if (A.getTarget().isArrayElement()) {
      auto Idx = evalInt(*A.getTarget().Index);
      if (!Idx) {
        Diags.error(S.getLoc(),
                    "assignment index into '" + Slot +
                        "' is not an input-computable constant");
        return false;
      }
      std::string Element = slotName(Slot, *Idx);
      if (!LP->SlotIds.count(Element)) {
        Diags.error(S.getLoc(), "index " + std::to_string(*Idx) +
                                    " out of bounds for array '" + Slot +
                                    "'");
        return false;
      }
      Slot = std::move(Element);
    }
    if (!LP->SlotIds.count(Slot)) {
      Diags.error(S.getLoc(), "assignment to unknown slot '" + Slot + "'");
      return false;
    }
    ExprPtr Value = lowerExpr(A.getValue());
    if (!Value)
      return false;
    Out.push_back(std::make_unique<AssignStmt>(LValue(Slot),
                                               std::move(Value), S.getLoc()));
    return true;
  }
  case Stmt::Kind::Observe: {
    ExprPtr Cond = lowerExpr(cast<ObserveStmt>(S).getCond());
    if (!Cond)
      return false;
    Out.push_back(std::make_unique<ObserveStmt>(std::move(Cond), S.getLoc()));
    return true;
  }
  case Stmt::Kind::Block: {
    for (const StmtPtr &Sub : cast<BlockStmt>(S).getStmts())
      if (!lowerStmt(*Sub, Out))
        return false;
    return true;
  }
  case Stmt::Kind::If: {
    const auto &I = cast<IfStmt>(S);
    ExprPtr Cond = lowerExpr(I.getCond());
    if (!Cond)
      return false;
    std::vector<StmtPtr> ThenStmts, ElseStmts;
    if (!lowerStmt(I.getThen(), ThenStmts) ||
        !lowerStmt(I.getElse(), ElseStmts))
      return false;
    // The paper's pre-pass: make both branches update the same slot set
    // by adding identity assignments for one-sided updates.
    std::set<std::string> ThenUpd, ElseUpd;
    updatedSlots(ThenStmts, ThenUpd);
    updatedSlots(ElseStmts, ElseUpd);
    for (const std::string &Slot : ThenUpd)
      if (!ElseUpd.count(Slot))
        ElseStmts.push_back(std::make_unique<AssignStmt>(
            LValue(Slot), std::make_unique<VarExpr>(Slot), S.getLoc()));
    for (const std::string &Slot : ElseUpd)
      if (!ThenUpd.count(Slot))
        ThenStmts.push_back(std::make_unique<AssignStmt>(
            LValue(Slot), std::make_unique<VarExpr>(Slot), S.getLoc()));
    Out.push_back(std::make_unique<IfStmt>(
        std::move(Cond),
        std::make_unique<BlockStmt>(std::move(ThenStmts)),
        std::make_unique<BlockStmt>(std::move(ElseStmts)), S.getLoc()));
    return true;
  }
  case Stmt::Kind::For: {
    const auto &F = cast<ForStmt>(S);
    auto Lo = evalInt(F.getLo());
    auto Hi = evalInt(F.getHi());
    if (!Lo || !Hi) {
      Diags.error(S.getLoc(),
                  "loop bounds are not input-computable constants");
      return false;
    }
    if (LoopVals.count(F.getIndexVar())) {
      Diags.error(S.getLoc(), "nested reuse of loop variable '" +
                                  F.getIndexVar() + "'");
      return false;
    }
    for (long I = *Lo; I < *Hi; ++I) {
      LoopVals[F.getIndexVar()] = I;
      bool Ok = lowerStmt(F.getBody(), Out);
      LoopVals.erase(F.getIndexVar());
      if (!Ok)
        return false;
    }
    return true;
  }
  }
  return false;
}

std::unique_ptr<LoweredProgram> Lowerer::run() {
  auto Result = std::make_unique<LoweredProgram>();
  LP = Result.get();
  if (!registerSlots(*Result))
    return nullptr;
  if (!lowerStmt(P.getBody(), Result->Stmts))
    return nullptr;
  return Result;
}

/// Collects slot names read by an expression (post-lowering, every
/// VarExpr names a slot).
void collectUses(const Expr &E, std::unordered_set<std::string> &Uses) {
  forEachNode(E, [&](const Expr &N) {
    if (const auto *V = dyn_cast<VarExpr>(&N))
      Uses.insert(V->getName());
  });
}

bool checkStmts(const std::vector<StmtPtr> &Stmts,
                std::unordered_set<std::string> &Defined,
                DiagEngine &Diags) {
  for (const StmtPtr &S : Stmts) {
    if (const auto *A = dyn_cast<AssignStmt>(S.get())) {
      std::unordered_set<std::string> Uses;
      collectUses(A->getValue(), Uses);
      for (const std::string &U : Uses)
        if (!Defined.count(U)) {
          Diags.error(S->getLoc(),
                      "slot '" + U + "' may be read before assignment");
          return false;
        }
      Defined.insert(A->getTarget().Name);
      continue;
    }
    if (const auto *O = dyn_cast<ObserveStmt>(S.get())) {
      std::unordered_set<std::string> Uses;
      collectUses(O->getCond(), Uses);
      for (const std::string &U : Uses)
        if (!Defined.count(U)) {
          Diags.error(S->getLoc(),
                      "slot '" + U + "' may be read before assignment");
          return false;
        }
      continue;
    }
    const auto *I = cast<IfStmt>(S.get());
    std::unordered_set<std::string> Uses;
    collectUses(I->getCond(), Uses);
    for (const std::string &U : Uses)
      if (!Defined.count(U)) {
        Diags.error(S->getLoc(),
                    "slot '" + U + "' may be read before assignment");
        return false;
      }
    std::unordered_set<std::string> ThenDef = Defined, ElseDef = Defined;
    if (!checkStmts(I->getThen().getStmts(), ThenDef, Diags) ||
        !checkStmts(I->getElse().getStmts(), ElseDef, Diags))
      return false;
    // Only slots defined on both paths are definitely assigned after.
    for (const std::string &D : ThenDef)
      if (ElseDef.count(D))
        Defined.insert(D);
  }
  return true;
}

} // namespace

std::unique_ptr<LoweredProgram>
psketch::lowerProgram(const Program &P, const InputBindings &Inputs,
                      DiagEngine &Diags, bool KeepHoles) {
  Lowerer L(P, Inputs, Diags, KeepHoles);
  auto Result = L.run();
  if (Diags.hasErrors())
    return nullptr;
  return Result;
}

bool psketch::checkDefiniteAssignment(const LoweredProgram &LP,
                                      DiagEngine &Diags) {
  std::unordered_set<std::string> Defined;
  if (!checkStmts(LP.Stmts, Defined, Diags))
    return false;
  for (const std::string &R : LP.ReturnSlots)
    if (!Defined.count(R)) {
      Diags.error({}, "returned slot '" + R + "' is never assigned");
      return false;
    }
  return true;
}
