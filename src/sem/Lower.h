//===- sem/Lower.h - Lowering: unrolling, folding, normalization ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a hole-free program plus concrete input bindings to the
/// straight-line slot form consumed by the LL(.) likelihood operator
/// (Figure 5), the numeric-integration baseline and the forward
/// sampler:
///
///  * bounded `for` loops are fully unrolled (the paper's assumption);
///  * loop indices and all references to program inputs are constant
///    folded away;
///  * array elements become scalar *slots* named `arr[i]`;
///  * `if` branches are normalized to update the same slot set by
///    appending identity assignments (the paper's pre-pass); and
///  * statements reduce to Assign (scalar slot target), Observe and If.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SEM_LOWER_H
#define PSKETCH_SEM_LOWER_H

#include "ast/Program.h"
#include "sem/Bindings.h"
#include "support/Diag.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace psketch {

/// The lowered form of a program under fixed inputs.  Statements are
/// AssignStmt (scalar LValue naming a slot), ObserveStmt, or IfStmt
/// whose blocks recursively contain only lowered statements.  Every
/// variable reference inside expressions is a VarExpr whose name is a
/// slot.
struct LoweredProgram {
  std::vector<StmtPtr> Stmts;

  /// Every assignable slot, in declaration order (`x`, `skills[0]`,
  /// `skills[1]`, ...), with its scalar type.
  std::vector<std::string> Slots;
  std::vector<ScalarKind> SlotKinds;
  std::unordered_map<std::string, unsigned> SlotIds;

  /// The program's returned variables expanded to slots; this is the
  /// observable output tuple whose joint density the likelihood
  /// machinery scores against the dataset.
  std::vector<std::string> ReturnSlots;

  /// Returns the id for \p Slot or ~0u when unknown.
  unsigned slotId(const std::string &Slot) const;
};

/// Lowers \p P under \p Inputs.  \p P must be hole-free and well typed.
/// Returns nullptr and reports to \p Diags on failure (unbound inputs,
/// non-constant loop bounds or array indices, out-of-bounds accesses).
///
/// With \p KeepHoles, hole expressions survive lowering with their
/// arguments lowered in place (loop unrolling resolves each hole
/// site's argument references individually).  This produces a sketch
/// *template*: the synthesizer lowers the sketch once and the symbolic
/// executor plugs completion tuples into the template per candidate,
/// instead of re-splicing and re-lowering the AST for every proposal.
/// Holes in structural positions (loop bounds, array sizes or indices)
/// still fail to lower; callers fall back to per-candidate splicing.
std::unique_ptr<LoweredProgram>
lowerProgram(const Program &P, const InputBindings &Inputs,
             DiagEngine &Diags, bool KeepHoles = false);

/// Checks definite assignment on a lowered program: every slot read is
/// written on all paths beforehand, and every returned slot is written.
/// Used as part of the synthesis validity filter.
bool checkDefiniteAssignment(const LoweredProgram &LP, DiagEngine &Diags);

} // namespace psketch

#endif // PSKETCH_SEM_LOWER_H
