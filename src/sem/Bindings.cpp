//===- sem/Bindings.cpp - Concrete program inputs -------------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sem/Bindings.h"

using namespace psketch;

void InputBindings::setScalar(const std::string &Name, double Value,
                              ScalarKind Kind) {
  Map[Name] = InputValue{Type(Kind, /*IsArray=*/false), {Value}};
}

void InputBindings::setArray(const std::string &Name,
                             std::vector<double> Values, ScalarKind Kind) {
  Map[Name] = InputValue{Type(Kind, /*IsArray=*/true), std::move(Values)};
}

void InputBindings::setIntArray(const std::string &Name,
                                const std::vector<long> &Values) {
  std::vector<double> Doubles(Values.begin(), Values.end());
  setArray(Name, std::move(Doubles), ScalarKind::Int);
}

void InputBindings::setBoolArray(const std::string &Name,
                                 const std::vector<bool> &Values) {
  std::vector<double> Doubles;
  Doubles.reserve(Values.size());
  for (bool V : Values)
    Doubles.push_back(V ? 1.0 : 0.0);
  setArray(Name, std::move(Doubles), ScalarKind::Bool);
}

const InputValue *InputBindings::find(const std::string &Name) const {
  auto It = Map.find(Name);
  return It == Map.end() ? nullptr : &It->second;
}
