//===- sem/TypeCheck.h - Type checking for programs and completions ------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking of programs, sketches and hole completions.  Checking a
/// sketch additionally annotates each hole with its expected scalar type
/// and yields per-hole signatures (argument types + result type), which
/// is what the synthesizer's typed expression generator consumes.
///
/// Checking a *completion* validates an expression over hole formals
/// against a signature; the MCMC mutation loop uses this as the paper's
/// "quick syntactic check" that rejects nonsensical mutants
/// (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SEM_TYPECHECK_H
#define PSKETCH_SEM_TYPECHECK_H

#include "ast/Program.h"
#include "support/Diag.h"

#include <optional>
#include <vector>

namespace psketch {

/// The interface of one hole: result type and formal-parameter types.
struct HoleSignature {
  unsigned HoleId = 0;
  ScalarKind ResultKind = ScalarKind::Real;
  std::vector<ScalarKind> ArgKinds;
};

/// Type-checks \p P (which may contain holes).  Reports problems to
/// \p Diags, annotates holes with expected kinds, and returns the hole
/// signatures in hole-id order.  Returns std::nullopt on error.
std::optional<std::vector<HoleSignature>> typeCheck(Program &P,
                                                    DiagEngine &Diags);

/// Type-checks a hole completion \p E against \p Sig.  The completion
/// may reference hole formals `%i` (typed by the signature) but no
/// program variables; distribution arguments are restricted to
/// variables and constants, per Section 4.1 of the paper.  Returns true
/// when the completion is well typed.
bool checkCompletion(const Expr &E, const HoleSignature &Sig);

} // namespace psketch

#endif // PSKETCH_SEM_TYPECHECK_H
