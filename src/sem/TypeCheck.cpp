//===- sem/TypeCheck.cpp - Type checking ----------------------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "sem/TypeCheck.h"

#include "ast/ASTUtil.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <unordered_map>

using namespace psketch;

namespace {

/// Shared expression-typing logic for program checking and completion
/// checking.  In program mode, variables resolve through the scope; in
/// completion mode only hole formals are visible.
class Checker {
public:
  Checker(DiagEngine *Diags) : Diags(Diags) {}

  void error(SourceLoc Loc, const std::string &Msg) {
    Failed = true;
    if (Diags)
      Diags->error(Loc, Msg);
  }

  bool failed() const { return Failed; }

  // Scope management (program mode).
  void declare(const std::string &Name, Type Ty) { Scope[Name] = Ty; }
  const Type *lookup(const std::string &Name) const {
    auto It = Scope.find(Name);
    return It == Scope.end() ? nullptr : &It->second;
  }

  /// Names introduced as loop indices; reusing one as a sibling loop's
  /// index is allowed (common across the benchmarks).
  std::unordered_set<std::string> LoopVars;

  /// Types an expression; returns nullopt on failure.  \p Expected, when
  /// set, types holes encountered in this expression.
  std::optional<Type> typeOf(Expr &E, std::optional<ScalarKind> Expected);

  /// Per-hole signatures, by hole id.
  std::map<unsigned, HoleSignature> Holes;

  /// Completion mode: hole formal types ( non-null only when checking a
  /// completion against a signature).
  const HoleSignature *CompletionSig = nullptr;

private:
  std::optional<Type> typeOfSample(SampleExpr &S);

  std::unordered_map<std::string, Type> Scope;
  DiagEngine *Diags;
  bool Failed = false;
};

bool isDistParamShape(const Expr &E) {
  // Section 4.1: "parameters of distributions are only variables (and
  // not general expressions) while generating the programs".  We accept
  // variables, array elements, hole formals and constants.
  switch (E.getKind()) {
  case Expr::Kind::Var:
  case Expr::Kind::Index:
  case Expr::Kind::HoleArg:
  case Expr::Kind::Const:
    return true;
  default:
    return false;
  }
}

std::optional<Type> Checker::typeOfSample(SampleExpr &S) {
  if (S.getNumArgs() != distArity(S.getDist())) {
    error(S.getLoc(), std::string(distKindName(S.getDist())) +
                          " expects " + std::to_string(distArity(S.getDist())) +
                          " arguments");
    return std::nullopt;
  }
  for (ExprPtr &A : S.getArgs()) {
    auto Ty = typeOf(*A, ScalarKind::Real);
    if (!Ty)
      return std::nullopt;
    if (!Ty->isNumeric()) {
      error(A->getLoc(), "distribution parameter must be numeric");
      return std::nullopt;
    }
  }
  if (distReturnsBool(S.getDist()))
    return Type::boolean();
  if (S.getDist() == DistKind::Poisson)
    return Type::integer();
  return Type::real();
}

std::optional<Type> Checker::typeOf(Expr &E,
                                    std::optional<ScalarKind> Expected) {
  switch (E.getKind()) {
  case Expr::Kind::Const:
    return Type(cast<ConstExpr>(E).getScalarKind());
  case Expr::Kind::Var: {
    auto &V = cast<VarExpr>(E);
    const Type *Ty = lookup(V.getName());
    if (!Ty) {
      error(V.getLoc(), "use of undeclared variable '" + V.getName() + "'");
      return std::nullopt;
    }
    if (Ty->IsArray) {
      error(V.getLoc(),
            "array '" + V.getName() + "' used without an index");
      return std::nullopt;
    }
    return *Ty;
  }
  case Expr::Kind::Index: {
    auto &IX = cast<IndexExpr>(E);
    const Type *Ty = lookup(IX.getArrayName());
    if (!Ty) {
      error(IX.getLoc(),
            "use of undeclared array '" + IX.getArrayName() + "'");
      return std::nullopt;
    }
    if (!Ty->IsArray) {
      error(IX.getLoc(), "'" + IX.getArrayName() + "' is not an array");
      return std::nullopt;
    }
    auto IdxTy = typeOf(*cast<IndexExpr>(E).getIndexPtr(), ScalarKind::Int);
    if (!IdxTy)
      return std::nullopt;
    if (!IdxTy->isInt()) {
      error(IX.getLoc(), "array index must be an integer");
      return std::nullopt;
    }
    return Ty->element();
  }
  case Expr::Kind::HoleArg: {
    auto &A = cast<HoleArgExpr>(E);
    if (!CompletionSig) {
      error(A.getLoc(), "hole formal '%" + std::to_string(A.getArgIndex()) +
                            "' outside a hole completion");
      return std::nullopt;
    }
    if (A.getArgIndex() >= CompletionSig->ArgKinds.size()) {
      error(A.getLoc(), "hole formal index out of range");
      return std::nullopt;
    }
    return Type(CompletionSig->ArgKinds[A.getArgIndex()]);
  }
  case Expr::Kind::Unary: {
    auto &U = cast<UnaryExpr>(E);
    auto SubTy = typeOf(*U.getSubPtr(),
                        U.getOp() == UnaryOp::Not
                            ? std::optional<ScalarKind>(ScalarKind::Bool)
                            : std::optional<ScalarKind>(ScalarKind::Real));
    if (!SubTy)
      return std::nullopt;
    if (U.getOp() == UnaryOp::Not) {
      if (!SubTy->isBool()) {
        error(U.getLoc(), "operand of '!' must be boolean");
        return std::nullopt;
      }
      return Type::boolean();
    }
    if (!SubTy->isNumeric()) {
      error(U.getLoc(), "operand of unary '-' must be numeric");
      return std::nullopt;
    }
    return *SubTy;
  }
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(E);
    std::optional<ScalarKind> SubExpected;
    if (isLogicalOp(B.getOp()))
      SubExpected = ScalarKind::Bool;
    else if (isArithOp(B.getOp()) || isCompareOp(B.getOp()))
      SubExpected = ScalarKind::Real;
    auto LTy = typeOf(*B.getLHSPtr(), SubExpected);
    auto RTy = typeOf(*B.getRHSPtr(), SubExpected);
    if (!LTy || !RTy)
      return std::nullopt;
    if (isArithOp(B.getOp())) {
      if (!LTy->isNumeric() || !RTy->isNumeric()) {
        error(B.getLoc(), std::string("operands of '") +
                              binaryOpName(B.getOp()) + "' must be numeric");
        return std::nullopt;
      }
      return (LTy->isInt() && RTy->isInt()) ? Type::integer() : Type::real();
    }
    if (isLogicalOp(B.getOp())) {
      if (!LTy->isBool() || !RTy->isBool()) {
        error(B.getLoc(), std::string("operands of '") +
                              binaryOpName(B.getOp()) + "' must be boolean");
        return std::nullopt;
      }
      return Type::boolean();
    }
    if (isCompareOp(B.getOp())) {
      if (!LTy->isNumeric() || !RTy->isNumeric()) {
        error(B.getLoc(), std::string("operands of '") +
                              binaryOpName(B.getOp()) + "' must be numeric");
        return std::nullopt;
      }
      return Type::boolean();
    }
    // Equality: both boolean or both numeric.
    bool BothBool = LTy->isBool() && RTy->isBool();
    bool BothNum = LTy->isNumeric() && RTy->isNumeric();
    if (!BothBool && !BothNum) {
      error(B.getLoc(), "operands of '==' must both be boolean or both "
                        "numeric");
      return std::nullopt;
    }
    return Type::boolean();
  }
  case Expr::Kind::Ite: {
    auto &I = cast<IteExpr>(E);
    auto CTy = typeOf(*I.getCondPtr(), ScalarKind::Bool);
    if (!CTy)
      return std::nullopt;
    if (!CTy->isBool()) {
      error(I.getLoc(), "ite condition must be boolean");
      return std::nullopt;
    }
    auto TTy = typeOf(*I.getThenPtr(), Expected);
    auto ETy = typeOf(*I.getElsePtr(), Expected);
    if (!TTy || !ETy)
      return std::nullopt;
    if (TTy->isBool() && ETy->isBool())
      return Type::boolean();
    if (TTy->isNumeric() && ETy->isNumeric())
      return (TTy->isInt() && ETy->isInt()) ? Type::integer() : Type::real();
    error(I.getLoc(), "ite branches must both be boolean or both numeric");
    return std::nullopt;
  }
  case Expr::Kind::Sample:
    return typeOfSample(cast<SampleExpr>(E));
  case Expr::Kind::Hole: {
    auto &H = cast<HoleExpr>(E);
    ScalarKind Kind = Expected.value_or(ScalarKind::Real);
    H.setExpectedKind(Kind);
    HoleSignature &Sig = Holes[H.getHoleId()];
    Sig.HoleId = H.getHoleId();
    Sig.ResultKind = Kind;
    Sig.ArgKinds.clear();
    for (ExprPtr &A : H.getArgs()) {
      auto ATy = typeOf(*A, std::nullopt);
      if (!ATy)
        return std::nullopt;
      if (!ATy->isScalar()) {
        error(A->getLoc(), "hole arguments must be scalars");
        return std::nullopt;
      }
      Sig.ArgKinds.push_back(ATy->Kind);
    }
    return Type(Kind);
  }
  }
  return std::nullopt;
}

/// Statement-level checking (program mode only).
class StmtChecker {
public:
  StmtChecker(Checker &C) : C(C) {}

  void check(Stmt &S);

private:
  Checker &C;
};

void StmtChecker::check(Stmt &S) {
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Assign: {
    auto &A = cast<AssignStmt>(S);
    const Type *TargetTy = C.lookup(A.getTarget().Name);
    if (!TargetTy) {
      C.error(S.getLoc(), "assignment to undeclared variable '" +
                              A.getTarget().Name + "'");
      return;
    }
    Type SlotTy = *TargetTy;
    if (A.getTarget().isArrayElement()) {
      if (!TargetTy->IsArray) {
        C.error(S.getLoc(),
                "'" + A.getTarget().Name + "' is not an array");
        return;
      }
      auto IdxTy = C.typeOf(*A.getTarget().Index, ScalarKind::Int);
      if (IdxTy && !IdxTy->isInt())
        C.error(A.getTarget().Index->getLoc(),
                "array index must be an integer");
      SlotTy = TargetTy->element();
    } else if (TargetTy->IsArray) {
      C.error(S.getLoc(), "cannot assign to whole array '" +
                              A.getTarget().Name + "'");
      return;
    }
    auto ValTy = C.typeOf(*A.getValuePtr(), SlotTy.Kind);
    if (!ValTy)
      return;
    bool Compatible = (SlotTy.isBool() && ValTy->isBool()) ||
                      (SlotTy.isNumeric() && ValTy->isNumeric());
    if (!Compatible)
      C.error(S.getLoc(), "cannot assign " + ValTy->str() + " to '" +
                              A.getTarget().Name + "' of type " +
                              SlotTy.str());
    return;
  }
  case Stmt::Kind::Observe: {
    auto &O = cast<ObserveStmt>(S);
    auto Ty = C.typeOf(*O.getCondPtr(), ScalarKind::Bool);
    if (Ty && !Ty->isBool())
      C.error(S.getLoc(), "observe condition must be boolean");
    return;
  }
  case Stmt::Kind::Block:
    for (StmtPtr &Sub : cast<BlockStmt>(S).getStmts())
      check(*Sub);
    return;
  case Stmt::Kind::If: {
    auto &I = cast<IfStmt>(S);
    auto Ty = C.typeOf(*I.getCondPtr(), ScalarKind::Bool);
    if (Ty && !Ty->isBool())
      C.error(S.getLoc(), "if condition must be boolean");
    check(I.getThen());
    check(I.getElse());
    return;
  }
  case Stmt::Kind::For: {
    auto &F = cast<ForStmt>(S);
    auto LoTy = C.typeOf(*F.getLoPtr(), ScalarKind::Int);
    auto HiTy = C.typeOf(*F.getHiPtr(), ScalarKind::Int);
    if (LoTy && !LoTy->isInt())
      C.error(F.getLo().getLoc(), "loop bound must be an integer");
    if (HiTy && !HiTy->isInt())
      C.error(F.getHi().getLoc(), "loop bound must be an integer");
    // A loop variable may not shadow a parameter or declaration, but
    // sibling loops may reuse the same index name.
    if (C.lookup(F.getIndexVar()) && !C.LoopVars.count(F.getIndexVar()))
      C.error(S.getLoc(),
              "loop variable '" + F.getIndexVar() + "' shadows a variable");
    C.LoopVars.insert(F.getIndexVar());
    C.declare(F.getIndexVar(), Type::integer());
    check(F.getBody());
    // No undeclare: reuse of the same index name in sibling loops is
    // common in the benchmarks, so leave it visible as an int.
    return;
  }
  }
}

} // namespace

std::optional<std::vector<HoleSignature>>
psketch::typeCheck(Program &P, DiagEngine &Diags) {
  Checker C(&Diags);
  for (const Param &Pm : P.getParams()) {
    if (C.lookup(Pm.Name))
      C.error({}, "duplicate parameter '" + Pm.Name + "'");
    C.declare(Pm.Name, Pm.Ty);
  }
  for (const LocalDecl &D : P.getDecls()) {
    if (C.lookup(D.Name))
      C.error({}, "duplicate declaration of '" + D.Name + "'");
    if (D.isArray()) {
      auto SizeTy =
          C.typeOf(*const_cast<LocalDecl &>(D).ArraySize, ScalarKind::Int);
      if (SizeTy && !SizeTy->isInt())
        C.error(D.ArraySize->getLoc(), "array size must be an integer");
    }
    C.declare(D.Name, D.type());
  }
  StmtChecker SC(C);
  SC.check(P.getBody());
  for (const std::string &R : P.getReturns()) {
    if (!C.lookup(R))
      C.error({}, "returned variable '" + R + "' is not declared");
  }
  if (C.failed() || Diags.hasErrors())
    return std::nullopt;
  std::vector<HoleSignature> Result;
  Result.reserve(C.Holes.size());
  for (auto &[Id, Sig] : C.Holes)
    Result.push_back(std::move(Sig));
  return Result;
}

bool psketch::checkCompletion(const Expr &E, const HoleSignature &Sig) {
  Checker C(nullptr);
  C.CompletionSig = &Sig;
  auto Ty = C.typeOf(const_cast<Expr &>(E), Sig.ResultKind);
  if (!Ty || C.failed())
    return false;
  bool Compatible =
      (Sig.ResultKind == ScalarKind::Bool)
          ? Ty->isBool()
          : Ty->isNumeric();
  if (!Compatible)
    return false;
  // Enforce the distribution-parameter restriction on completions.
  bool Ok = true;
  forEachNode(E, [&](const Expr &N) {
    if (const auto *S = dyn_cast<SampleExpr>(&N))
      for (const ExprPtr &A : S->getArgs())
        if (!isDistParamShape(*A))
          Ok = false;
  });
  return Ok;
}
