//===- sem/Bindings.h - Concrete program inputs ---------------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete values for a program's parameters (e.g. TrueSkill's games
/// array and player count).  Bindings drive loop unrolling and constant
/// folding in the lowering pass, the forward sampler, and likelihood
/// compilation.  Booleans are stored as 0/1.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SEM_BINDINGS_H
#define PSKETCH_SEM_BINDINGS_H

#include "ast/Type.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace psketch {

/// A bound input value: one double for scalars, a vector for arrays.
struct InputValue {
  Type Ty;
  std::vector<double> Values;

  bool isArray() const { return Ty.IsArray; }
  double scalar() const { return Values.at(0); }
};

/// Maps parameter names to concrete values.
class InputBindings {
public:
  /// Binds a scalar parameter.
  void setScalar(const std::string &Name, double Value,
                 ScalarKind Kind = ScalarKind::Real);

  /// Binds an integer scalar parameter.
  void setInt(const std::string &Name, long Value) {
    setScalar(Name, double(Value), ScalarKind::Int);
  }

  /// Binds an array parameter.
  void setArray(const std::string &Name, std::vector<double> Values,
                ScalarKind Kind = ScalarKind::Real);

  /// Binds an integer array parameter.
  void setIntArray(const std::string &Name, const std::vector<long> &Values);

  /// Binds a boolean array parameter.
  void setBoolArray(const std::string &Name, const std::vector<bool> &Values);

  bool has(const std::string &Name) const { return Map.count(Name) != 0; }

  /// Returns the binding for \p Name, or null when absent.
  const InputValue *find(const std::string &Name) const;

  const std::unordered_map<std::string, InputValue> &all() const {
    return Map;
  }

private:
  std::unordered_map<std::string, InputValue> Map;
};

} // namespace psketch

#endif // PSKETCH_SEM_BINDINGS_H
