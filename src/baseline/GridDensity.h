//===- baseline/GridDensity.h - Numeric densities on uniform grids -------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numeric substrate of the integration-based likelihood baseline
/// (DESIGN.md §3): probability densities represented by samples on a
/// uniform grid, with operations implemented by numeric integration —
/// convolution for sums/differences, compounding integrals for
/// Gaussian-with-random-mean, and CDF integrals for comparisons.  This
/// reproduces the cost profile of the Bhat et al. [2] density-compiler
/// approach that the paper measures "without the approximation" in
/// Figure 8: exact (up to grid resolution) but orders of magnitude
/// slower than the symbolic MoG path.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_BASELINE_GRIDDENSITY_H
#define PSKETCH_BASELINE_GRIDDENSITY_H

#include <cstddef>
#include <vector>

namespace psketch {

/// Resolution of the numeric densities.
struct GridConfig {
  /// Sample points per density.  The baseline's role is an *exact*
  /// likelihood comparator, so the default favors accuracy; coarser
  /// grids make it faster but visibly wrong in the tails.
  unsigned Points = 1025;

  /// Support half-width in standard deviations for parametric
  /// densities.
  double PadSigmas = 8.0;

  /// Smoothing bandwidth for point masses (kept equal to the MoG
  /// algebra's bandwidth so the two likelihood paths are comparable).
  double Bandwidth = 0.1;
};

/// A density sampled at Points positions across [Lo, Hi].
class GridDensity {
public:
  GridDensity() = default;
  GridDensity(double Lo, double Hi, std::vector<double> Values);

  double lo() const { return LoBound; }
  double hi() const { return HiBound; }
  size_t points() const { return Values.size(); }
  double step() const;
  const std::vector<double> &values() const { return Values; }

  /// Grid position of sample \p I.
  double x(size_t I) const;

  /// Interpolated density at \p X (0 outside the support).
  double pdfAt(double X) const;

  /// Numeric integral over the support (should be ~1 after
  /// normalization).
  double totalMass() const;

  /// Rescales so the numeric integral is one; no-op on zero mass.
  void normalize();

  double mean() const;
  double stddev() const;

  // Parametric constructors.
  static GridDensity gaussian(double Mu, double Sigma, const GridConfig &G);
  static GridDensity beta(double A, double B, const GridConfig &G);
  static GridDensity gammaDist(double Shape, double Scale,
                               const GridConfig &G);
  static GridDensity pointMass(double V, double Bandwidth,
                               const GridConfig &G);

  // Numeric-integration operations (all O(Points^2) unless noted).
  static GridDensity convolveAdd(const GridDensity &A, const GridDensity &B,
                                 const GridConfig &G);
  static GridDensity convolveSub(const GridDensity &A, const GridDensity &B,
                                 const GridConfig &G);

  /// Density of k*X (O(Points)).
  static GridDensity scaled(const GridDensity &A, double K);

  /// Density of X + k (O(Points)).
  static GridDensity shifted(const GridDensity &A, double K);

  /// Mixture w*A + (1-w)*B on a common support.
  static GridDensity mixture(const GridDensity &A, double WA,
                             const GridDensity &B, const GridConfig &G);

  /// Pr(X > Y) by integrating the joint.
  static double probGreater(const GridDensity &A, const GridDensity &B);

  /// Density of Gaussian(m, Sigma) with m distributed as \p Mean — the
  /// compounding integral f(y) = Int N(y; m, Sigma) Mean(m) dm.
  static GridDensity compoundGaussian(const GridDensity &Mean, double Sigma,
                                      const GridConfig &G);

private:
  double LoBound = 0, HiBound = 1;
  std::vector<double> Values;
};

} // namespace psketch

#endif // PSKETCH_BASELINE_GRIDDENSITY_H
