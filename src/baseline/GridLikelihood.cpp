//===- baseline/GridLikelihood.cpp - Integration-based likelihood --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baseline/GridLikelihood.h"

#include "likelihood/Likelihood.h"
#include "support/Casting.h"
#include "support/Special.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace psketch;

struct GridLikelihoodEvaluator::Value {
  enum class Kind { Known, Density, Bern, Unit };
  Kind K = Kind::Unit;
  double Scalar = 0;
  GridDensity Dens;

  static Value known(double V) {
    Value X;
    X.K = Kind::Known;
    X.Scalar = V;
    return X;
  }
  static Value density(GridDensity D) {
    Value X;
    X.K = Kind::Density;
    X.Dens = std::move(D);
    return X;
  }
  static Value bern(double P) {
    Value X;
    X.K = Kind::Bern;
    X.Scalar = clampProb(P);
    return X;
  }
  static Value unit() { return Value(); }

  bool isKnown() const { return K == Kind::Known; }
  bool isDensity() const { return K == Kind::Density; }
  bool isBern() const { return K == Kind::Bern; }
};

namespace {

void updatedSlotNames(const std::vector<StmtPtr> &Stmts,
                      std::set<std::string> &Out) {
  for (const StmtPtr &S : Stmts) {
    if (const auto *A = dyn_cast<AssignStmt>(S.get()))
      Out.insert(A->getTarget().Name);
    else if (const auto *I = dyn_cast<IfStmt>(S.get())) {
      updatedSlotNames(I->getThen().getStmts(), Out);
      updatedSlotNames(I->getElse().getStmts(), Out);
    }
  }
}

/// One per-row numeric execution.
class RowEvaluator {
public:
  using Value = GridLikelihoodEvaluator::Value;

  RowEvaluator(const LoweredProgram &LP, const GridConfig &Config,
               const std::unordered_map<std::string, unsigned> &Observed,
               const std::vector<double> &Row)
      : LP(LP), Config(Config), Observed(Observed), Row(Row) {}

  std::optional<double> run();

private:
  using Env = std::vector<std::optional<Value>>;

  bool execStmts(const std::vector<StmtPtr> &Stmts, Env &E, double &Rho);
  Value evalExpr(const Expr &Ex, const Env &E);

  Value lift(const Value &V) const {
    if (V.isDensity())
      return V;
    if (V.isKnown())
      return Value::density(
          GridDensity::pointMass(V.Scalar, Config.Bandwidth, Config));
    return Value::unit();
  }

  double probabilityOf(const Value &V) const {
    if (V.isBern())
      return V.Scalar;
    if (V.isKnown())
      return std::fabs(V.Scalar) > 0.5 ? 1.0 : 0.0;
    return 1.0; // Unit fallback, as in the symbolic path.
  }

  double logDensityAt(const Value &V, double X) const {
    switch (V.K) {
    case Value::Kind::Known:
      return gaussianLogPdf(X, V.Scalar, Config.Bandwidth);
    case Value::Kind::Density:
      return std::log(std::max(V.Dens.pdfAt(X), TinyProb));
    case Value::Kind::Bern:
      return bernoulliLogPmf(X != 0.0, V.Scalar);
    case Value::Kind::Unit:
      // Match the symbolic path: an unmodeled observed output is
      // penalized, not scored as a free success.
      return std::log(TinyProb);
    }
    return std::log(TinyProb);
  }

  const LoweredProgram &LP;
  const GridConfig &Config;
  const std::unordered_map<std::string, unsigned> &Observed;
  const std::vector<double> &Row;
  bool Malformed = false;
};

RowEvaluator::Value RowEvaluator::evalExpr(const Expr &Ex, const Env &E) {
  switch (Ex.getKind()) {
  case Expr::Kind::Const: {
    const auto &C = cast<ConstExpr>(Ex);
    if (C.getScalarKind() == ScalarKind::Bool)
      return Value::bern(C.isTrue() ? 1.0 : 0.0);
    return Value::known(C.getValue());
  }
  case Expr::Kind::Var: {
    const std::string &Slot = cast<VarExpr>(Ex).getName();
    auto ObsIt = Observed.find(Slot);
    if (ObsIt != Observed.end()) {
      unsigned SlotId = LP.slotId(Slot);
      bool IsBool =
          SlotId != ~0u && LP.SlotKinds[SlotId] == ScalarKind::Bool;
      double V = Row[ObsIt->second];
      return IsBool ? Value::bern(V) : Value::known(V);
    }
    unsigned SlotId = LP.slotId(Slot);
    if (SlotId == ~0u || !E[SlotId].has_value()) {
      Malformed = true;
      return Value::unit();
    }
    return *E[SlotId];
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(Ex);
    Value Sub = evalExpr(U.getSub(), E);
    if (U.getOp() == UnaryOp::Not)
      return Sub.isBern() ? Value::bern(1.0 - Sub.Scalar) : Value::unit();
    if (Sub.isKnown())
      return Value::known(-Sub.Scalar);
    if (Sub.isDensity())
      return Value::density(GridDensity::scaled(Sub.Dens, -1.0));
    return Value::unit();
  }
  case Expr::Kind::Binary: {
    const auto &Bin = cast<BinaryExpr>(Ex);
    Value L = evalExpr(Bin.getLHS(), E);
    Value R = evalExpr(Bin.getRHS(), E);
    switch (Bin.getOp()) {
    case BinaryOp::Add:
      if (L.isKnown() && R.isKnown())
        return Value::known(L.Scalar + R.Scalar);
      if (L.isKnown() && R.isDensity())
        return Value::density(GridDensity::shifted(R.Dens, L.Scalar));
      if (L.isDensity() && R.isKnown())
        return Value::density(GridDensity::shifted(L.Dens, R.Scalar));
      if (L.isDensity() && R.isDensity())
        return Value::density(
            GridDensity::convolveAdd(L.Dens, R.Dens, Config));
      return Value::unit();
    case BinaryOp::Sub:
      if (L.isKnown() && R.isKnown())
        return Value::known(L.Scalar - R.Scalar);
      if (L.isDensity() && R.isKnown())
        return Value::density(GridDensity::shifted(L.Dens, -R.Scalar));
      if (L.isKnown() && R.isDensity())
        return Value::density(GridDensity::shifted(
            GridDensity::scaled(R.Dens, -1.0), L.Scalar));
      if (L.isDensity() && R.isDensity())
        return Value::density(
            GridDensity::convolveSub(L.Dens, R.Dens, Config));
      return Value::unit();
    case BinaryOp::Mul:
      if (L.isKnown() && R.isKnown())
        return Value::known(L.Scalar * R.Scalar);
      if (L.isKnown() && R.isDensity())
        return Value::density(GridDensity::scaled(R.Dens, L.Scalar));
      if (L.isDensity() && R.isKnown())
        return Value::density(GridDensity::scaled(L.Dens, R.Scalar));
      return Value::unit();
    case BinaryOp::And:
      if (L.isBern() && R.isBern())
        return Value::bern(L.Scalar * R.Scalar);
      return Value::unit();
    case BinaryOp::Or:
      if (L.isBern() && R.isBern())
        return Value::bern(1.0 - (1.0 - L.Scalar) * (1.0 - R.Scalar));
      return Value::unit();
    case BinaryOp::Gt:
    case BinaryOp::Lt: {
      if (Bin.getOp() == BinaryOp::Lt)
        std::swap(L, R);
      if (L.isKnown() && R.isKnown())
        return Value::bern(L.Scalar > R.Scalar ? 1.0 : 0.0);
      Value LD = lift(L), RD = lift(R);
      if (!LD.isDensity() || !RD.isDensity())
        return Value::unit();
      return Value::bern(GridDensity::probGreater(LD.Dens, RD.Dens));
    }
    case BinaryOp::Eq:
      if (L.isBern() && R.isBern())
        return Value::bern(L.Scalar * R.Scalar +
                           (1.0 - L.Scalar) * (1.0 - R.Scalar));
      if (L.isKnown() && R.isKnown())
        return Value::bern(L.Scalar == R.Scalar ? 1.0 : 0.0);
      return Value::unit();
    }
    return Value::unit();
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(Ex);
    Value C = evalExpr(I.getCond(), E);
    if (!C.isBern())
      return Value::unit();
    double P = C.Scalar;
    if (P >= 1.0 - 1e-12)
      return evalExpr(I.getThen(), E);
    if (P <= 1e-12)
      return evalExpr(I.getElse(), E);
    Value T = evalExpr(I.getThen(), E);
    Value F = evalExpr(I.getElse(), E);
    if (T.isBern() && F.isBern())
      return Value::bern(P * T.Scalar + (1.0 - P) * F.Scalar);
    Value TD = lift(T), FD = lift(F);
    if (!TD.isDensity() || !FD.isDensity())
      return Value::unit();
    return Value::density(GridDensity::mixture(TD.Dens, P, FD.Dens, Config));
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(Ex);
    std::vector<Value> Args;
    Args.reserve(S.getNumArgs());
    for (unsigned I = 0, N = S.getNumArgs(); I != N; ++I)
      Args.push_back(evalExpr(S.getArg(I), E));
    auto ScalarOf = [&](const Value &V, double &Out) {
      if (V.isKnown()) {
        Out = V.Scalar;
        return true;
      }
      if (V.isDensity()) {
        Out = V.Dens.mean();
        return true;
      }
      return false;
    };
    switch (S.getDist()) {
    case DistKind::Gaussian: {
      double Sigma;
      if (!ScalarOf(Args[1], Sigma))
        return Value::unit();
      Sigma = std::fabs(Sigma);
      if (Args[0].isKnown())
        return Value::density(
            GridDensity::gaussian(Args[0].Scalar, Sigma, Config));
      if (Args[0].isDensity())
        // The expensive compounding integral the paper's Section 1
        // motivates.
        return Value::density(
            GridDensity::compoundGaussian(Args[0].Dens, Sigma, Config));
      return Value::unit();
    }
    case DistKind::Bernoulli: {
      double P;
      if (!ScalarOf(Args[0], P))
        return Value::unit();
      return Value::bern(P);
    }
    case DistKind::Beta: {
      double A, B;
      if (!ScalarOf(Args[0], A) || !ScalarOf(Args[1], B) || A <= 0 ||
          B <= 0)
        return Value::unit();
      return Value::density(GridDensity::beta(A, B, Config));
    }
    case DistKind::Gamma: {
      double K, Theta;
      if (!ScalarOf(Args[0], K) || !ScalarOf(Args[1], Theta) || K <= 0 ||
          Theta <= 0)
        return Value::unit();
      return Value::density(GridDensity::gammaDist(K, Theta, Config));
    }
    case DistKind::Poisson: {
      double Lambda;
      if (!ScalarOf(Args[0], Lambda) || Lambda < 0)
        return Value::unit();
      double Mean, Sd;
      poissonMoments(std::max(Lambda, 1e-9), Mean, Sd);
      return Value::density(GridDensity::gaussian(Mean, Sd, Config));
    }
    }
    return Value::unit();
  }
  case Expr::Kind::Index:
  case Expr::Kind::HoleArg:
  case Expr::Kind::Hole:
    Malformed = true;
    return Value::unit();
  }
  return Value::unit();
}

bool RowEvaluator::execStmts(const std::vector<StmtPtr> &Stmts, Env &E,
                             double &Rho) {
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(*S);
      unsigned SlotId = LP.slotId(A.getTarget().Name);
      if (SlotId == ~0u)
        return false;
      E[SlotId] = evalExpr(A.getValue(), E);
      break;
    }
    case Stmt::Kind::Observe: {
      const auto &O = cast<ObserveStmt>(*S);
      if (const auto *Eq = dyn_cast<BinaryExpr>(&O.getCond());
          Eq && Eq->getOp() == BinaryOp::Eq) {
        Value L = evalExpr(Eq->getLHS(), E);
        Value R = evalExpr(Eq->getRHS(), E);
        if (L.isDensity() && R.isKnown()) {
          Rho *= std::max(L.Dens.pdfAt(R.Scalar), TinyProb);
          break;
        }
        if (R.isDensity() && L.isKnown()) {
          Rho *= std::max(R.Dens.pdfAt(L.Scalar), TinyProb);
          break;
        }
        Value Agreement = evalExpr(O.getCond(), E);
        Rho *= probabilityOf(Agreement);
        break;
      }
      Rho *= probabilityOf(evalExpr(O.getCond(), E));
      break;
    }
    case Stmt::Kind::If: {
      const auto &I = cast<IfStmt>(*S);
      Value C = evalExpr(I.getCond(), E);
      double P = C.isBern() ? C.Scalar : probabilityOf(C);
      Env ThenEnv = E, ElseEnv = E;
      double ThenRho = 1.0, ElseRho = 1.0;
      if (!execStmts(I.getThen().getStmts(), ThenEnv, ThenRho) ||
          !execStmts(I.getElse().getStmts(), ElseEnv, ElseRho))
        return false;
      Rho *= P * ThenRho + (1.0 - P) * ElseRho;
      std::set<std::string> Updated;
      updatedSlotNames(I.getThen().getStmts(), Updated);
      updatedSlotNames(I.getElse().getStmts(), Updated);
      for (const std::string &Slot : Updated) {
        unsigned SlotId = LP.slotId(Slot);
        if (SlotId == ~0u || !ThenEnv[SlotId].has_value() ||
            !ElseEnv[SlotId].has_value())
          return false;
        const Value &T = *ThenEnv[SlotId];
        const Value &F = *ElseEnv[SlotId];
        if (T.isBern() && F.isBern()) {
          E[SlotId] = Value::bern(P * T.Scalar + (1.0 - P) * F.Scalar);
          continue;
        }
        Value TD = lift(T), FD = lift(F);
        if (!TD.isDensity() || !FD.isDensity()) {
          E[SlotId] = Value::unit();
          continue;
        }
        E[SlotId] = Value::density(
            GridDensity::mixture(TD.Dens, P, FD.Dens, Config));
      }
      break;
    }
    case Stmt::Kind::Skip:
      break;
    case Stmt::Kind::Block:
    case Stmt::Kind::For:
      return false;
    }
    if (Malformed)
      return false;
  }
  return true;
}

std::optional<double> RowEvaluator::run() {
  Env E(LP.Slots.size());
  double Rho = 1.0;
  if (!execStmts(LP.Stmts, E, Rho) || Malformed)
    return std::nullopt;
  double LL = std::log(std::max(Rho, TinyProb));
  std::vector<std::pair<std::string, unsigned>> Ordered(Observed.begin(),
                                                        Observed.end());
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &X, const auto &Y) { return X.second < Y.second; });
  for (const auto &[Slot, Col] : Ordered) {
    unsigned SlotId = LP.slotId(Slot);
    if (SlotId == ~0u)
      continue;
    if (!E[SlotId].has_value()) {
      LL += std::log(TinyProb);
      continue;
    }
    LL += logDensityAt(*E[SlotId], Row[Col]);
  }
  return LL;
}

} // namespace

GridLikelihoodEvaluator::GridLikelihoodEvaluator(const LoweredProgram &LP,
                                                 const Dataset &Data,
                                                 GridConfig Config)
    : LP(LP), Data(Data), Config(Config),
      Observed(observedSlots(LP, Data)) {}

std::optional<double> GridLikelihoodEvaluator::logLikelihoodRow(
    const std::vector<double> &Row) const {
  RowEvaluator Eval(LP, Config, Observed, Row);
  return Eval.run();
}

std::optional<double> GridLikelihoodEvaluator::logLikelihood() const {
  double Total = 0;
  for (const std::vector<double> &Row : Data.rows()) {
    auto LL = logLikelihoodRow(Row);
    if (!LL)
      return std::nullopt;
    Total += *LL;
  }
  return Total;
}
