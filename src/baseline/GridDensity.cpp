//===- baseline/GridDensity.cpp - Numeric densities on uniform grids -----===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "baseline/GridDensity.h"

#include "support/Special.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace psketch;

GridDensity::GridDensity(double Lo, double Hi, std::vector<double> Vals)
    : LoBound(Lo), HiBound(Hi), Values(std::move(Vals)) {
  assert(Lo < Hi && "empty grid support");
  assert(Values.size() >= 2 && "grid needs at least two samples");
}

double GridDensity::step() const {
  return (HiBound - LoBound) / double(Values.size() - 1);
}

double GridDensity::x(size_t I) const {
  return LoBound + double(I) * step();
}

double GridDensity::pdfAt(double X) const {
  if (X < LoBound || X > HiBound || Values.empty())
    return 0.0;
  double T = (X - LoBound) / step();
  size_t I = size_t(T);
  if (I + 1 >= Values.size())
    return Values.back();
  double Frac = T - double(I);
  return Values[I] * (1.0 - Frac) + Values[I + 1] * Frac;
}

double GridDensity::totalMass() const {
  // Trapezoid rule.
  double Sum = 0;
  for (size_t I = 0; I + 1 < Values.size(); ++I)
    Sum += 0.5 * (Values[I] + Values[I + 1]);
  return Sum * step();
}

void GridDensity::normalize() {
  double Mass = totalMass();
  if (Mass <= 0)
    return;
  for (double &V : Values)
    V /= Mass;
}

double GridDensity::mean() const {
  double Sum = 0, Mass = 0;
  for (size_t I = 0; I + 1 < Values.size(); ++I) {
    double V = 0.5 * (Values[I] + Values[I + 1]);
    double X = 0.5 * (x(I) + x(I + 1));
    Sum += V * X;
    Mass += V;
  }
  return Mass > 0 ? Sum / Mass : 0.0;
}

double GridDensity::stddev() const {
  double M = mean();
  double Sum = 0, Mass = 0;
  for (size_t I = 0; I + 1 < Values.size(); ++I) {
    double V = 0.5 * (Values[I] + Values[I + 1]);
    double X = 0.5 * (x(I) + x(I + 1)) - M;
    Sum += V * X * X;
    Mass += V;
  }
  return Mass > 0 && Sum > 0 ? std::sqrt(Sum / Mass) : 0.0;
}

GridDensity GridDensity::gaussian(double Mu, double Sigma,
                                  const GridConfig &G) {
  double S = std::max(std::fabs(Sigma), 1e-6);
  double Lo = Mu - G.PadSigmas * S, Hi = Mu + G.PadSigmas * S;
  std::vector<double> Vals(G.Points);
  double Step = (Hi - Lo) / double(G.Points - 1);
  for (unsigned I = 0; I != G.Points; ++I)
    Vals[I] = gaussianPdf(Lo + Step * I, Mu, S);
  GridDensity D(Lo, Hi, std::move(Vals));
  D.normalize();
  return D;
}

GridDensity GridDensity::beta(double A, double B, const GridConfig &G) {
  assert(A > 0 && B > 0 && "Beta parameters must be positive");
  double LogNorm = std::lgamma(A + B) - std::lgamma(A) - std::lgamma(B);
  std::vector<double> Vals(G.Points);
  double Step = 1.0 / double(G.Points - 1);
  for (unsigned I = 0; I != G.Points; ++I) {
    double X = std::clamp(Step * I, 1e-9, 1.0 - 1e-9);
    Vals[I] = std::exp(LogNorm + (A - 1.0) * std::log(X) +
                       (B - 1.0) * std::log1p(-X));
  }
  GridDensity D(0.0, 1.0, std::move(Vals));
  D.normalize();
  return D;
}

GridDensity GridDensity::gammaDist(double Shape, double Scale,
                                   const GridConfig &G) {
  assert(Shape > 0 && Scale > 0 && "Gamma parameters must be positive");
  double Mean = Shape * Scale;
  double Sd = std::sqrt(Shape) * Scale;
  double Lo = 0.0, Hi = Mean + G.PadSigmas * Sd;
  double LogNorm = -std::lgamma(Shape) - Shape * std::log(Scale);
  std::vector<double> Vals(G.Points);
  double Step = (Hi - Lo) / double(G.Points - 1);
  for (unsigned I = 0; I != G.Points; ++I) {
    double X = std::max(Lo + Step * I, 1e-12);
    Vals[I] =
        std::exp(LogNorm + (Shape - 1.0) * std::log(X) - X / Scale);
  }
  GridDensity D(Lo, Hi, std::move(Vals));
  D.normalize();
  return D;
}

GridDensity GridDensity::pointMass(double V, double Bandwidth,
                                   const GridConfig &G) {
  return gaussian(V, std::max(Bandwidth, 1e-6), G);
}

GridDensity GridDensity::convolveAdd(const GridDensity &A,
                                     const GridDensity &B,
                                     const GridConfig &G) {
  double Lo = A.lo() + B.lo(), Hi = A.hi() + B.hi();
  std::vector<double> Vals(G.Points, 0.0);
  double Step = (Hi - Lo) / double(G.Points - 1);
  double SA = A.step();
  // f_{X+Y}(z) = Int f_X(x) f_Y(z - x) dx, rectangle rule over A's grid.
  for (unsigned I = 0; I != G.Points; ++I) {
    double Z = Lo + Step * I;
    double Sum = 0;
    for (size_t J = 0, E = A.points(); J != E; ++J)
      Sum += A.values()[J] * B.pdfAt(Z - A.x(J));
    Vals[I] = Sum * SA;
  }
  GridDensity D(Lo, Hi, std::move(Vals));
  D.normalize();
  return D;
}

GridDensity GridDensity::convolveSub(const GridDensity &A,
                                     const GridDensity &B,
                                     const GridConfig &G) {
  return convolveAdd(A, scaled(B, -1.0), G);
}

GridDensity GridDensity::scaled(const GridDensity &A, double K) {
  if (K == 0.0) {
    // Degenerate: a spike at zero, represented with a tight Gaussian.
    GridConfig G;
    G.Points = unsigned(A.points());
    return pointMass(0.0, 1e-3, G);
  }
  double Lo = A.lo() * K, Hi = A.hi() * K;
  if (Lo > Hi)
    std::swap(Lo, Hi);
  std::vector<double> Vals(A.points());
  double Step = (Hi - Lo) / double(A.points() - 1);
  double AbsK = std::fabs(K);
  for (size_t I = 0, E = A.points(); I != E; ++I)
    Vals[I] = A.pdfAt((Lo + Step * I) / K) / AbsK;
  GridDensity D(Lo, Hi, std::move(Vals));
  D.normalize();
  return D;
}

GridDensity GridDensity::shifted(const GridDensity &A, double K) {
  return GridDensity(A.lo() + K, A.hi() + K, A.values());
}

GridDensity GridDensity::mixture(const GridDensity &A, double WA,
                                 const GridDensity &B,
                                 const GridConfig &G) {
  WA = std::clamp(WA, 0.0, 1.0);
  double Lo = std::min(A.lo(), B.lo()), Hi = std::max(A.hi(), B.hi());
  std::vector<double> Vals(G.Points);
  double Step = (Hi - Lo) / double(G.Points - 1);
  for (unsigned I = 0; I != G.Points; ++I) {
    double X = Lo + Step * I;
    Vals[I] = WA * A.pdfAt(X) + (1.0 - WA) * B.pdfAt(X);
  }
  GridDensity D(Lo, Hi, std::move(Vals));
  D.normalize();
  return D;
}

double GridDensity::probGreater(const GridDensity &A, const GridDensity &B) {
  // Pr(X > Y) = Int f_X(x) F_Y(x) dx; build F_Y by cumulative
  // integration, then integrate against f_X.
  std::vector<double> CdfB(B.points(), 0.0);
  double SB = B.step();
  for (size_t I = 1, E = B.points(); I != E; ++I)
    CdfB[I] = CdfB[I - 1] +
              0.5 * (B.values()[I - 1] + B.values()[I]) * SB;
  auto CdfAt = [&](double X) {
    if (X <= B.lo())
      return 0.0;
    if (X >= B.hi())
      return CdfB.back();
    double T = (X - B.lo()) / SB;
    size_t I = size_t(T);
    if (I + 1 >= CdfB.size())
      return CdfB.back();
    double Frac = T - double(I);
    return CdfB[I] * (1.0 - Frac) + CdfB[I + 1] * Frac;
  };
  double P = 0;
  double SA = A.step();
  for (size_t I = 0, E = A.points(); I != E; ++I)
    P += A.values()[I] * CdfAt(A.x(I)) * SA;
  return std::clamp(P, 0.0, 1.0);
}

GridDensity GridDensity::compoundGaussian(const GridDensity &Mean,
                                          double Sigma,
                                          const GridConfig &G) {
  double S = std::max(std::fabs(Sigma), 1e-6);
  double Lo = Mean.lo() - G.PadSigmas * S, Hi = Mean.hi() + G.PadSigmas * S;
  std::vector<double> Vals(G.Points, 0.0);
  double Step = (Hi - Lo) / double(G.Points - 1);
  double SM = Mean.step();
  for (unsigned I = 0; I != G.Points; ++I) {
    double Y = Lo + Step * I;
    double Sum = 0;
    for (size_t J = 0, E = Mean.points(); J != E; ++J)
      Sum += Mean.values()[J] * gaussianPdf(Y, Mean.x(J), S);
    Vals[I] = Sum * SM;
  }
  GridDensity D(Lo, Hi, std::move(Vals));
  D.normalize();
  return D;
}
