//===- baseline/GridLikelihood.h - Integration-based likelihood ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "without approximation" likelihood of Figure 8: evaluates
/// Pr(D | P[H]) by numeric integration over grid densities, one full
/// symbolic-free execution per data row (observed values enter as
/// numbers, so nothing can be compiled once and reused — which is
/// precisely why this path is orders of magnitude slower than the
/// compiled MoG tape).  Also used by tests as an accuracy oracle for
/// the MoG approximation.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_BASELINE_GRIDLIKELIHOOD_H
#define PSKETCH_BASELINE_GRIDLIKELIHOOD_H

#include "baseline/GridDensity.h"
#include "likelihood/Dataset.h"
#include "sem/Lower.h"

#include <optional>

namespace psketch {

/// Evaluates the likelihood of a lowered program by numeric
/// integration.
class GridLikelihoodEvaluator {
public:
  GridLikelihoodEvaluator(const LoweredProgram &LP, const Dataset &Data,
                          GridConfig Config = {});

  /// log Pr(row | P) for one data row; nullopt when the candidate is
  /// malformed.
  std::optional<double> logLikelihoodRow(const std::vector<double> &Row) const;

  /// Sum over all rows of the dataset.
  std::optional<double> logLikelihood() const;

  /// The numeric value lattice (Known / Density / Bern / Unit);
  /// defined in the implementation file, public so the per-row
  /// evaluator can use it.
  struct Value;

private:

  const LoweredProgram &LP;
  const Dataset &Data;
  GridConfig Config;
  std::unordered_map<std::string, unsigned> Observed;
};

} // namespace psketch

#endif // PSKETCH_BASELINE_GRIDLIKELIHOOD_H
