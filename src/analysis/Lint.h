//===- analysis/Lint.h - Rule-based sketch and program linter ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `psketch lint` rule set, built on the abstract interpreter's fact
/// base.  Rules (diagnostics go through the DiagEngine with source
/// locations):
///
///   unbound-variable        error    a variable is read at a point no
///                                    assignment definitely dominates
///   unused-variable         warning  a local is never read (and not
///                                    returned)
///   constant-observe        warning  an observe condition is statically
///                                    true (vacuous) or false (rejects
///                                    every run)
///   invalid-param-interval  error    a draw parameter is outside its
///                                    distribution's domain for every
///                                    completion
///   uncompletable-hole      error    a hole expects an `int` completion,
///                                    which the completion grammar cannot
///                                    produce (holes in array-index /
///                                    loop-bound / array-size position)
///   observe-disconnected-   warning  in a sketch with holes, an observe
///   from-holes                       condition no hole can flow into —
///                                    synthesis can never change whether
///                                    it holds (dependence analysis,
///                                    DependenceGraph.h)
///   unreachable-statement   warning  an assigned value is read but
///                                    provably flows into no observe and
///                                    no returned output (backward
///                                    relevance slice, Slicer.h)
///
/// The caller must have run typeCheck() on the program first (lint
/// relies on hole expected-kind annotations).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_ANALYSIS_LINT_H
#define PSKETCH_ANALYSIS_LINT_H

#include "analysis/ProgramAnalysis.h"
#include "support/Diag.h"

namespace psketch {

struct LintResult {
  unsigned Errors = 0;
  unsigned Warnings = 0;
};

/// Runs every lint rule over \p P, reporting through \p Diags.
/// \p Inputs may be null; binding the program's inputs tightens the
/// draw-parameter intervals the invalid-param rule sees.
LintResult lintProgram(const Program &P, DiagEngine &Diags,
                       const InputBindings *Inputs = nullptr);

} // namespace psketch

#endif // PSKETCH_ANALYSIS_LINT_H
