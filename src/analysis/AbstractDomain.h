//===- analysis/AbstractDomain.h - Interval x sign x NaN domain ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract value domain for the candidate analyzer and sketch linter:
/// a reduced product of a closed floating-point interval, a sign lattice,
/// and a definitely-NaN-free bit (DESIGN.md §10).
///
/// Every transfer function over-approximates the concrete IEEE-754
/// semantics of the evaluators (interp and the likelihood executor):
/// if a concrete run can produce value v at an expression, the abstract
/// value computed for that expression contains v.  Interval endpoints of
/// inexact arithmetic are widened outward by one ulp so the guarantee
/// holds under any rounding mode the concrete evaluator uses.  NaN is
/// tracked separately from the interval: `NaNFree == false` means the
/// value may additionally be NaN.
///
/// Booleans are embedded as the interval {0, 1}: definitely-true is
/// [1, 1], definitely-false is [0, 0].
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_ANALYSIS_ABSTRACTDOMAIN_H
#define PSKETCH_ANALYSIS_ABSTRACTDOMAIN_H

#include "ast/Ops.h"

#include <cmath>
#include <limits>
#include <string>

namespace psketch {

/// Sign lattice: Bottom < {Neg, Zero, Pos} < {NonPos, NonZero, NonNeg} < Top.
/// The sign component can carry strictness the closed interval cannot
/// (e.g. "positive" when the interval is [0, 5] but 0 is excluded).
enum class Sign : uint8_t {
  Bottom,  ///< no value
  Neg,     ///< < 0
  Zero,    ///< == 0
  Pos,     ///< > 0
  NonPos,  ///< <= 0
  NonZero, ///< != 0
  NonNeg,  ///< >= 0
  Top,     ///< any value
};

Sign joinSign(Sign A, Sign B);
Sign meetSign(Sign A, Sign B);
/// Does sign \p S admit the concrete value \p V (V must not be NaN)?
bool signContains(Sign S, double V);
const char *signName(Sign S);

/// An abstract scalar: all concrete values lie in [Lo, Hi] (closed; the
/// endpoints may be +-infinity), additionally constrained by Si, and the
/// value may be NaN only when NaNFree is false.  Bottom (unreachable /
/// no value) is represented by an empty interval with NaNFree set.
struct AbstractValue {
  double Lo = -std::numeric_limits<double>::infinity();
  double Hi = std::numeric_limits<double>::infinity();
  Sign Si = Sign::Top;
  bool NaNFree = false;

  //===--- Constructors ---------------------------------------------------===//

  /// The unconstrained real value (may be NaN).
  static AbstractValue topReal();
  /// The unconstrained boolean: {0, 1}, never NaN.
  static AbstractValue topBool();
  /// The unreachable value.
  static AbstractValue bottom();
  /// The single concrete value \p V (NaN yields the maybe-NaN empty range).
  static AbstractValue constant(double V);
  /// All values in [\p Lo, \p Hi], never NaN.  Requires Lo <= Hi.
  static AbstractValue range(double Lo, double Hi);
  /// The abstract boolean covering \p CanBeFalse / \p CanBeTrue.
  static AbstractValue boolValue(bool CanBeFalse, bool CanBeTrue);

  //===--- Predicates -----------------------------------------------------===//

  bool isBottom() const { return Lo > Hi && NaNFree; }
  bool mayBeNaN() const { return !NaNFree; }
  /// Interval part is empty (value is NaN-only or bottom).
  bool emptyRange() const { return Lo > Hi; }
  bool isSingleton() const { return NaNFree && Lo == Hi; }
  /// Does the abstract value admit concrete \p V (NaN allowed)?
  bool contains(double V) const;

  /// Boolean-view predicates (for values known to be 0/1 embeddings).
  bool definitelyTrue() const { return NaNFree && Lo == 1 && Hi == 1; }
  bool definitelyFalse() const { return NaNFree && Lo == 0 && Hi == 0; }

  /// Every admitted value is <= / < / >= / > \p Bound (false if the value
  /// may be NaN: NaN satisfies no ordering).
  bool definitelyLE(double Bound) const {
    return NaNFree && !isBottom() && Hi <= Bound;
  }
  bool definitelyLT(double Bound) const {
    return NaNFree && !isBottom() && Hi < Bound;
  }
  bool definitelyGE(double Bound) const {
    return NaNFree && !isBottom() && Lo >= Bound;
  }
  bool definitelyGT(double Bound) const {
    return NaNFree && !isBottom() && Lo > Bound;
  }

  bool operator==(const AbstractValue &O) const {
    // Compare bitwise on endpoints so bottom representations unify via
    // canonicalization in reduce(), not here.
    return Lo == O.Lo && Hi == O.Hi && Si == O.Si && NaNFree == O.NaNFree &&
           isBottom() == O.isBottom();
  }
  bool operator!=(const AbstractValue &O) const { return !(*this == O); }

  /// "[lo, hi] sign nan?" rendering for diagnostics and tests.
  std::string str() const;

  /// Re-establish the reduced-product invariants: intersect the interval
  /// with the sign constraint and recompute the sign from the interval.
  AbstractValue reduce() const;
};

//===--- Lattice operations ------------------------------------------------===//

AbstractValue join(const AbstractValue &A, const AbstractValue &B);
/// Widening for loop fixpoints: unstable bounds jump to +-infinity.
AbstractValue widen(const AbstractValue &Prev, const AbstractValue &Next);

//===--- Transfer functions ------------------------------------------------===//

AbstractValue absNeg(const AbstractValue &A);
AbstractValue absNot(const AbstractValue &A);
AbstractValue absAdd(const AbstractValue &A, const AbstractValue &B);
AbstractValue absSub(const AbstractValue &A, const AbstractValue &B);
AbstractValue absMul(const AbstractValue &A, const AbstractValue &B);
AbstractValue absAnd(const AbstractValue &A, const AbstractValue &B);
AbstractValue absOr(const AbstractValue &A, const AbstractValue &B);
/// Comparisons mirror IEEE semantics: any comparison with NaN is false.
AbstractValue absGt(const AbstractValue &A, const AbstractValue &B);
AbstractValue absLt(const AbstractValue &A, const AbstractValue &B);
AbstractValue absEq(const AbstractValue &A, const AbstractValue &B);

AbstractValue applyUnary(UnaryOp Op, const AbstractValue &A);
AbstractValue applyBinary(BinaryOp Op, const AbstractValue &A,
                          const AbstractValue &B);

/// Over-approximation of a draw's result given the runtime's
/// parameter-clamping semantics (Gaussian results are any NaN-free real;
/// Bernoulli is {0,1}; Beta is [0,1]; Gamma and Poisson are [0, inf)).
AbstractValue distResultRange(DistKind D);

/// Is parameter \p ArgIdx of distribution \p D *definitely* outside the
/// distribution's valid domain for every concrete value \p V admits?
/// This is the STATIC-REJECT rule: it holds only when V is NaN-free
/// (the runtime clamps NaN parameters to valid defaults, so a may-be-NaN
/// parameter can still score finite) and non-bottom.
bool definitelyInvalidParam(DistKind D, unsigned ArgIdx,
                            const AbstractValue &V);

/// Human-readable name of parameter \p ArgIdx of \p D ("sigma", ...).
const char *distParamName(DistKind D, unsigned ArgIdx);

} // namespace psketch

#endif // PSKETCH_ANALYSIS_ABSTRACTDOMAIN_H
