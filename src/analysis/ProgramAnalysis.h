//===- analysis/ProgramAnalysis.h - Abstract interpreter over programs ---===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract interpretation of Figure-3 programs over the interval x sign
/// x NaN-free domain (AbstractDomain.h).  The interpreter flows through
/// every statement — including the distribution-parameter expressions of
/// every draw site — with branch joins, weak array updates (arrays are
/// summarized by a single cell), and widened loop fixpoints (loops are
/// never unrolled, so analysis cost is independent of trip counts).
///
/// Two consumers sit on top:
///  * CandidateAnalyzer asks for an early-out verdict on a hole
///    completion tuple (the synthesizer's STATIC-REJECT pre-filter);
///  * the sketch linter asks for the full fact base (draw-parameter
///    ranges, observe-condition constancy, read-before-assign and
///    unused-variable facts, hole sites).
///
/// Soundness invariant: for every concrete execution of the program
/// under inputs admitted by the bindings, every value the execution
/// computes at an expression is contained in the abstract value the
/// interpreter computes there (see DESIGN.md §10 for the argument and
/// tests/analysis for the differential fuzz).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_ANALYSIS_PROGRAMANALYSIS_H
#define PSKETCH_ANALYSIS_PROGRAMANALYSIS_H

#include "analysis/AbstractDomain.h"
#include "ast/Program.h"
#include "sem/Bindings.h"

#include <map>
#include <string>
#include <vector>

namespace psketch {

/// Joined abstract parameter values of one textual draw site (occurrences
/// inside loops and branches are joined).
struct DrawSiteFacts {
  const SampleExpr *Site = nullptr;
  DistKind Dist = DistKind::Gaussian;
  /// True when the draw lives inside a hole completion rather than the
  /// sketch text itself.
  bool InCompletion = false;
  std::vector<AbstractValue> Params;
};

/// Joined abstract condition value of one observe statement.
struct ObserveFacts {
  const ObserveStmt *Site = nullptr;
  AbstractValue Cond;
};

/// One hole site of the sketch (for the linter's completability rule).
struct HoleFacts {
  const HoleExpr *Site = nullptr;
  ScalarKind ExpectedKind = ScalarKind::Real;
};

/// Per-local-variable lint facts.
struct VarFacts {
  std::string Name;
  ScalarKind Kind = ScalarKind::Real;
  bool IsArray = false;
  bool EverRead = false;
  bool EverAssigned = false;
  /// A read was seen at a point where no assignment definitely dominates
  /// it; FirstBadRead is the earliest such read's location.
  bool ReadMaybeUnassigned = false;
  SourceLoc FirstBadRead;
};

/// Result of one abstract run.
struct AnalysisResult {
  /// STATIC-REJECT verdict: some reachable draw parameter is definitely
  /// outside its distribution's domain for every admitted value.
  bool Rejected = false;
  const SampleExpr *RejectSite = nullptr;
  DistKind RejectDist = DistKind::Gaussian;
  unsigned RejectArg = 0;
  AbstractValue RejectValue;

  /// Fact base (populated only in full mode).
  std::vector<DrawSiteFacts> Draws;
  std::vector<ObserveFacts> Observes;
  std::vector<HoleFacts> Holes;
  std::vector<VarFacts> Vars; ///< locals, in declaration order
  /// Final abstract value of every scalar local (for tests/diagnostics).
  std::map<std::string, AbstractValue> FinalEnv;

  /// One-line description of the reject ("Gaussian sigma in [-3, -1] ...").
  std::string rejectReason() const;
};

/// The abstract interpreter.  Holds only references: the program and the
/// bindings must outlive it.  Analysis runs are const and carry no
/// mutable state, so one instance may be shared across threads.
class ProgramAnalysis {
public:
  /// \p Inputs may be null (all parameters unconstrained).  Bound scalar
  /// parameters become singletons and bound arrays become their exact
  /// [min, max] ranges, which is what makes sketch-level draw-parameter
  /// intervals tight enough to act on.
  explicit ProgramAnalysis(const Program &P,
                           const InputBindings *Inputs = nullptr);

  /// Early-out candidate verdict: stops at the first definitely-invalid
  /// reachable draw parameter; collects no facts.  \p Completions is
  /// indexed by hole id.
  AnalysisResult analyzeCandidate(const std::vector<ExprPtr> &Completions) const;

  /// Full fact collection for the linter; \p Completions may be null
  /// (hole results are then the top value of their expected kind).
  AnalysisResult analyzeFull(const std::vector<ExprPtr> *Completions) const;

private:
  AnalysisResult run(const std::vector<ExprPtr> *Completions, bool Collect,
                     bool StopOnReject) const;

  const Program &Prog;
  const InputBindings *Inputs;
};

/// The top abstract value of a scalar kind: reals may be anything
/// including NaN; ints are any (finite or infinite) non-NaN value;
/// booleans are {0, 1}.
AbstractValue topOfKind(ScalarKind K);

/// Abstract evaluation of a hole completion expression (an expression
/// over hole formals `%i`) under abstract formal values.  Exposed for
/// the interval-soundness property tests.
AbstractValue evalCompletionAbstract(const Expr &E,
                                     const std::vector<AbstractValue> &Formals);

} // namespace psketch

#endif // PSKETCH_ANALYSIS_PROGRAMANALYSIS_H
