//===- analysis/Lint.cpp - Rule-based sketch and program linter ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"

#include "analysis/CandidateAnalyzer.h"
#include "analysis/Slicer.h"

#include <sstream>

using namespace psketch;

LintResult psketch::lintProgram(const Program &P, DiagEngine &Diags,
                                const InputBindings *Inputs) {
  LintResult R;
  auto Error = [&](SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, Msg);
    ++R.Errors;
  };
  auto Warning = [&](SourceLoc Loc, const std::string &Msg) {
    Diags.warning(Loc, Msg);
    ++R.Warnings;
  };

  ProgramAnalysis PA(P, Inputs);
  AnalysisResult Facts = PA.analyzeFull(/*Completions=*/nullptr);

  // unbound-variable / unused-variable.
  for (const VarFacts &V : Facts.Vars) {
    if (V.ReadMaybeUnassigned) {
      std::ostringstream OS;
      OS << "variable '" << V.Name << "' is read before "
         << (V.EverAssigned ? "it is assigned on every path"
                            : "any assignment")
         << " (unbound)";
      Error(V.FirstBadRead, OS.str());
    }
    if (!V.EverRead)
      Warning(SourceLoc(), "variable '" + V.Name + "' is never used");
  }

  // constant-observe.
  for (const ObserveFacts &O : Facts.Observes) {
    SourceLoc Loc = O.Site->getLoc().isValid() ? O.Site->getLoc()
                                               : O.Site->getCond().getLoc();
    if (O.Cond.definitelyTrue())
      Warning(Loc, "observe condition is statically true; the observation "
                   "never constrains a run");
    else if (O.Cond.definitelyFalse())
      Warning(Loc, "observe condition is statically false; every run is "
                   "rejected");
  }

  // invalid-param-interval: the parameter is outside the distribution's
  // domain no matter how the holes are completed (holes analyze as the
  // top value of their kind here).
  for (const DrawSiteFacts &D : Facts.Draws) {
    for (unsigned I = 0; I != D.Params.size(); ++I) {
      if (!definitelyInvalidParam(D.Dist, I, D.Params[I]))
        continue;
      std::ostringstream OS;
      OS << distKindName(D.Dist) << " " << distParamName(D.Dist, I)
         << " lies in " << D.Params[I].str() << " but must be "
         << distParamRequirement(D.Dist, I)
         << "; this draw is invalid for every completion";
      Error(D.Site->getLoc(), OS.str());
    }
  }

  // Dependence-based rules (Slicer.h).
  Slicer Slice(P);

  // observe-disconnected-from-holes: only meaningful in a sketch —
  // with no holes there is nothing synthesis could connect.  Saturated
  // analyses report all-ones masks, so they stay silent rather than
  // guessing.
  if (Slice.graph().numHoles() > 0) {
    for (const ObserveDependence &O : Slice.graph().observes()) {
      if (O.Mask != 0)
        continue;
      SourceLoc Loc = O.Site->getLoc().isValid()
                          ? O.Site->getLoc()
                          : O.Site->getCond().getLoc();
      Warning(Loc, "observe condition depends on no hole; no completion "
                   "can change whether it holds");
    }
  }

  // unreachable-statement: the assigned value is read somewhere, yet
  // provably flows into no observe and no returned output.  (Never-read
  // targets are the unused-variable rule's, above.)
  for (const AssignStmt *A : Slice.unreachableAssignments())
    Warning(A->getLoc(), "value assigned to '" + A->getTarget().Name +
                             "' cannot reach any observe or returned "
                             "output; the statement has no effect on the "
                             "program's distribution");

  // uncompletable-hole: the completion grammar generates real- and
  // bool-kinded expressions only; a hole typed `int` (array index, loop
  // bound, array size, int-variable assignment) can never be filled.
  for (const HoleFacts &H : Facts.Holes) {
    if (H.ExpectedKind != ScalarKind::Int)
      continue;
    std::ostringstream OS;
    OS << "hole expects an int completion, which the completion grammar "
       << "cannot produce; this hole is uncompletable";
    Error(H.Site->getLoc(), OS.str());
  }

  return R;
}
