//===- analysis/Slicer.cpp - Hole/observe slices and renderings -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Slicer.h"

#include "support/Casting.h"

#include <algorithm>
#include <sstream>

using namespace psketch;

namespace {

/// Variable names read by an expression (array reads by base name,
/// hole arguments included — a completion may read any of them).
void readVars(const Expr &Ex, std::set<std::string> &Out) {
  switch (Ex.getKind()) {
  case Expr::Kind::Const:
  case Expr::Kind::HoleArg:
    return;
  case Expr::Kind::Var:
    Out.insert(cast<VarExpr>(Ex).getName());
    return;
  case Expr::Kind::Index: {
    const auto &Ix = cast<IndexExpr>(Ex);
    Out.insert(Ix.getArrayName());
    readVars(Ix.getIndex(), Out);
    return;
  }
  case Expr::Kind::Unary:
    readVars(cast<UnaryExpr>(Ex).getSub(), Out);
    return;
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(Ex);
    readVars(B.getLHS(), Out);
    readVars(B.getRHS(), Out);
    return;
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(Ex);
    readVars(I.getCond(), Out);
    readVars(I.getThen(), Out);
    readVars(I.getElse(), Out);
    return;
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(Ex);
    for (const ExprPtr &A : S.getArgs())
      readVars(*A, Out);
    return;
  }
  case Expr::Kind::Hole: {
    const auto &H = cast<HoleExpr>(Ex);
    for (const ExprPtr &A : H.getArgs())
      readVars(*A, Out);
    return;
  }
  }
}

/// One assignment, flattened with the variables its execution reads —
/// RHS, array index, and every enclosing branch condition / loop bound
/// (which decide whether and how often it runs).
struct FlatAssign {
  const AssignStmt *S = nullptr;
  std::string Target;
  std::set<std::string> Reads;
};

struct RelevanceCollector {
  std::vector<FlatAssign> Assigns;
  std::set<std::string> Sinks;    ///< Vars read by observe conditions.
  std::set<std::string> EverRead; ///< Vars read anywhere.

  void walk(const std::vector<StmtPtr> &Stmts,
            const std::set<std::string> &Ctrl) {
    for (const StmtPtr &SP : Stmts) {
      const Stmt &S = *SP;
      switch (S.getKind()) {
      case Stmt::Kind::Assign: {
        const auto &A = cast<AssignStmt>(S);
        FlatAssign F;
        F.S = &A;
        F.Target = A.getTarget().Name;
        F.Reads = Ctrl;
        readVars(A.getValue(), F.Reads);
        if (A.getTarget().Index)
          readVars(*A.getTarget().Index, F.Reads);
        EverRead.insert(F.Reads.begin(), F.Reads.end());
        Assigns.push_back(std::move(F));
        break;
      }
      case Stmt::Kind::Observe: {
        std::set<std::string> R = Ctrl;
        readVars(cast<ObserveStmt>(S).getCond(), R);
        EverRead.insert(R.begin(), R.end());
        Sinks.insert(R.begin(), R.end());
        break;
      }
      case Stmt::Kind::Block:
        walk(cast<BlockStmt>(S).getStmts(), Ctrl);
        break;
      case Stmt::Kind::If: {
        const auto &I = cast<IfStmt>(S);
        std::set<std::string> Inner = Ctrl;
        readVars(I.getCond(), Inner);
        EverRead.insert(Inner.begin(), Inner.end());
        walk(I.getThen().getStmts(), Inner);
        walk(I.getElse().getStmts(), Inner);
        break;
      }
      case Stmt::Kind::For: {
        const auto &F = cast<ForStmt>(S);
        std::set<std::string> Inner = Ctrl;
        readVars(F.getLo(), Inner);
        readVars(F.getHi(), Inner);
        EverRead.insert(Inner.begin(), Inner.end());
        walk(F.getBody().getStmts(), Inner);
        break;
      }
      case Stmt::Kind::Skip:
        break;
      }
    }
  }
};

std::string holeLabel(unsigned H) {
  std::ostringstream OS;
  OS << "??" << H;
  return OS.str();
}

std::string observeLabel(const ObserveStmt &O) {
  std::ostringstream OS;
  OS << "observe@" << O.getLoc().Line << ":" << O.getLoc().Col;
  return OS.str();
}

} // namespace

Slicer::Slicer(const Program &Prog,
               const std::set<std::string> *ObservedColumns)
    : P(Prog), DG(DependenceGraph::build(Prog, ObservedColumns)) {
  RelevanceCollector C;
  C.walk(P.getBody().getStmts(), {});
  // Backward relevance: observe-condition vars and returned outputs
  // seed the set; any assignment into it pulls in what it reads.
  Relevant = C.Sinks;
  Relevant.insert(P.getReturns().begin(), P.getReturns().end());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const FlatAssign &F : C.Assigns) {
      if (!Relevant.count(F.Target))
        continue;
      for (const std::string &R : F.Reads)
        Changed |= Relevant.insert(R).second;
    }
  }
  for (const FlatAssign &F : C.Assigns)
    if (!Relevant.count(F.Target) && C.EverRead.count(F.Target))
      Unreachable.push_back(F.S);
}

std::vector<unsigned> Slicer::deadHoles() const {
  std::vector<unsigned> Dead;
  HoleMask M = DG.deadMask();
  for (unsigned H = 0; H != DG.numHoles() && H < 64; ++H)
    if (M >> H & 1)
      Dead.push_back(H);
  return Dead;
}

std::string Slicer::matrixReport() const {
  std::ostringstream OS;
  OS << "program " << P.getName() << ": " << DG.numHoles() << " hole(s), "
     << DG.observes().size() << " observe(s), " << DG.outputs().size()
     << " output(s)\n";
  if (DG.saturated())
    OS << "note: >= 64 holes; dependence saturated (every hole assumed "
          "live)\n";
  // Sink labels first so the sink column can be width-padded.
  std::vector<std::pair<std::string, HoleMask>> Rows;
  Rows.emplace_back("rho (branch weights)", DG.rhoMask());
  for (const ObserveDependence &O : DG.observes())
    Rows.emplace_back(observeLabel(*O.Site), O.Mask);
  for (const OutputDependence &O : DG.outputs())
    Rows.emplace_back("output " + O.Slot, O.Mask);
  size_t Width = std::string("sink").size();
  for (const auto &[Label, Mask] : Rows)
    Width = std::max(Width, Label.size());
  auto Pad = [&](const std::string &S) {
    std::string Out = S;
    Out.resize(Width, ' ');
    return Out;
  };
  OS << Pad("sink") << " |";
  for (unsigned H = 0; H != DG.numHoles(); ++H)
    OS << " " << holeLabel(H);
  OS << "\n";
  for (const auto &[Label, Mask] : Rows) {
    OS << Pad(Label) << " |";
    for (unsigned H = 0; H != DG.numHoles(); ++H) {
      // Center the mark under the ??N header.
      std::string Mark((Mask & DG.holeBit(H)) != 0 ? "X" : ".");
      std::string Cell = holeLabel(H);
      std::fill(Cell.begin(), Cell.end(), ' ');
      Cell[Cell.size() / 2] = Mark[0];
      OS << " " << Cell;
    }
    OS << "\n";
  }
  std::vector<unsigned> Dead = deadHoles();
  OS << "dead holes:";
  if (Dead.empty())
    OS << " none";
  else
    for (unsigned H : Dead)
      OS << " " << holeLabel(H);
  OS << "\n";
  return OS.str();
}

std::string Slicer::dot() const {
  std::ostringstream OS;
  OS << "digraph hole_observe_dependence {\n";
  OS << "  rankdir=LR;\n";
  for (unsigned H = 0; H != DG.numHoles(); ++H)
    OS << "  h" << H << " [label=\"" << holeLabel(H)
       << "\" shape=circle];\n";
  OS << "  rho [label=\"rho (branch weights)\" shape=diamond];\n";
  for (size_t I = 0; I != DG.observes().size(); ++I)
    OS << "  o" << I << " [label=\""
       << observeLabel(*DG.observes()[I].Site) << "\" shape=box];\n";
  for (size_t I = 0; I != DG.outputs().size(); ++I)
    OS << "  r" << I << " [label=\"output " << DG.outputs()[I].Slot
       << "\" shape=box];\n";
  for (unsigned H = 0; H != DG.numHoles(); ++H) {
    HoleMask Bit = DG.holeBit(H);
    if (DG.rhoMask() & Bit)
      OS << "  h" << H << " -> rho;\n";
    for (size_t I = 0; I != DG.observes().size(); ++I)
      if (DG.observes()[I].Mask & Bit)
        OS << "  h" << H << " -> o" << I << ";\n";
    for (size_t I = 0; I != DG.outputs().size(); ++I)
      if (DG.outputs()[I].Mask & Bit)
        OS << "  h" << H << " -> r" << I << ";\n";
  }
  OS << "}\n";
  return OS.str();
}
