//===- analysis/CandidateAnalyzer.h - STATIC-REJECT candidate verdicts ---===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesizer-facing face of the abstract interpreter: given a
/// sketch, concrete input bindings and a hole-completion tuple, decide
/// in microseconds whether the candidate is doomed — some reachable draw
/// parameter is definitely outside its distribution's domain for every
/// concrete execution — before the lower / LL(.) / simplify /
/// tape-compile pipeline spends orders of magnitude more on it.
///
/// The verdict is the *definition* of domain validity for the
/// synthesizer: with `--no-static-analysis` the same verdict is applied
/// after scoring instead of before, so the accepted-candidate set, every
/// trace event and every cached entry are bit-identical either way.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_ANALYSIS_CANDIDATEANALYZER_H
#define PSKETCH_ANALYSIS_CANDIDATEANALYZER_H

#include "analysis/ProgramAnalysis.h"

namespace psketch {

/// A STATIC-REJECT decision for one completion tuple.
struct CandidateVerdict {
  bool Rejected = false;
  DistKind Dist = DistKind::Gaussian;
  unsigned ArgIndex = 0;
  SourceLoc Loc;
  AbstractValue Value;

  /// "Gaussian sigma in [-3, -1] (must be > 0)" — for logs and tests.
  std::string str() const;
};

/// Shared, thread-safe analyzer bound to one sketch + input bindings
/// (both must outlive it).  analyze() carries no mutable state, so a
/// single instance serves all chains of a synthesis run.
class CandidateAnalyzer {
public:
  CandidateAnalyzer(const Program &Sketch, const InputBindings &Inputs)
      : PA(Sketch, &Inputs) {}

  /// Verdict for \p Completions (indexed by hole id).  Early-outs on the
  /// first definitely-invalid reachable draw parameter.
  CandidateVerdict analyze(const std::vector<ExprPtr> &Completions) const;

  /// The underlying interpreter (for the linter and the fuzz tests).
  const ProgramAnalysis &programAnalysis() const { return PA; }

private:
  ProgramAnalysis PA;
};

/// The textual domain requirement of a distribution parameter, e.g.
/// "> 0" for a Gaussian sigma or "in [0, 1]" for a Bernoulli p.
const char *distParamRequirement(DistKind D, unsigned ArgIdx);

} // namespace psketch

#endif // PSKETCH_ANALYSIS_CANDIDATEANALYZER_H
