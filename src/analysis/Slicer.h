//===- analysis/Slicer.h - Hole/observe slices and renderings -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client-facing views of the dependence analysis (DependenceGraph.h):
/// the `psketch analyze` matrix and DOT renderings, the dead-hole
/// query behind `synth.slice_skip`, and the backward relevance pass
/// behind the `unreachable-statement` lint — which variables (and so
/// which assignments) can flow into any observe condition or returned
/// output.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_ANALYSIS_SLICER_H
#define PSKETCH_ANALYSIS_SLICER_H

#include "analysis/DependenceGraph.h"

#include <set>
#include <string>
#include <vector>

namespace psketch {

/// Slice views over one raw program.  Construction runs the dependence
/// analysis plus a backward variable-relevance fixpoint; the program
/// must outlive the slicer.
class Slicer {
public:
  /// \p ObservedColumns: dataset column names, when known (`psketch
  /// analyze --data`); reads of those variables carry no hole
  /// dependence, matching the compiled likelihood.
  explicit Slicer(const Program &P,
                  const std::set<std::string> *ObservedColumns = nullptr);

  const DependenceGraph &graph() const { return DG; }

  /// The hole→sink dependence matrix, plain text: one row per sink
  /// (the rho branch-weight product, each observe, each output), one
  /// column per hole.  Stable formatting — CI goldens this.
  std::string matrixReport() const;

  /// GraphViz rendering of the hole→sink edges.
  std::string dot() const;

  /// Hole ids that provably influence no observe, no output and no
  /// branch weight — mutating them cannot change any score.
  std::vector<unsigned> deadHoles() const;

  /// Variables whose value can flow into an observe condition or a
  /// returned output (transitively, branch conditions included).
  const std::set<std::string> &relevantVars() const { return Relevant; }

  /// Assignments (source order) whose target is read somewhere but
  /// provably flows into no observe and no output — the
  /// `unreachable-statement` lint's subjects.  Never-read targets are
  /// excluded: those are the unused-variable lint's business.
  const std::vector<const AssignStmt *> &unreachableAssignments() const {
    return Unreachable;
  }

private:
  const Program &P;
  DependenceGraph DG;
  std::set<std::string> Relevant;
  std::vector<const AssignStmt *> Unreachable;
};

} // namespace psketch

#endif // PSKETCH_ANALYSIS_SLICER_H
