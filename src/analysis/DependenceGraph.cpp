//===- analysis/DependenceGraph.cpp - Hole→observe dependence -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"

#include "support/Casting.h"

#include <algorithm>

using namespace psketch;

namespace {

/// Rounds of the loop mask fixpoint before giving up.  The join makes
/// the environment strictly monotone, so convergence needs at most
/// 64 × |vars| rounds; the cap is a defensive bound — on hitting it,
/// every variable the loop body assigns saturates to all-ones.
constexpr unsigned MaxMaskFixpointRounds = 256;

/// Largest hole id seen in an expression tree (~0u when hole-free).
void maxHoleId(const Expr &Ex, unsigned &Max, bool &Any) {
  switch (Ex.getKind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
  case Expr::Kind::HoleArg:
    return;
  case Expr::Kind::Index:
    maxHoleId(cast<IndexExpr>(Ex).getIndex(), Max, Any);
    return;
  case Expr::Kind::Unary:
    maxHoleId(cast<UnaryExpr>(Ex).getSub(), Max, Any);
    return;
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(Ex);
    maxHoleId(B.getLHS(), Max, Any);
    maxHoleId(B.getRHS(), Max, Any);
    return;
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(Ex);
    maxHoleId(I.getCond(), Max, Any);
    maxHoleId(I.getThen(), Max, Any);
    maxHoleId(I.getElse(), Max, Any);
    return;
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(Ex);
    for (const ExprPtr &A : S.getArgs())
      maxHoleId(*A, Max, Any);
    return;
  }
  case Expr::Kind::Hole: {
    const auto &H = cast<HoleExpr>(Ex);
    Any = true;
    Max = std::max(Max, H.getHoleId());
    for (const ExprPtr &A : H.getArgs())
      maxHoleId(*A, Max, Any);
    return;
  }
  }
}

void maxHoleId(const std::vector<StmtPtr> &Stmts, unsigned &Max, bool &Any) {
  for (const StmtPtr &SP : Stmts) {
    const Stmt &S = *SP;
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(S);
      if (A.getTarget().Index)
        maxHoleId(*A.getTarget().Index, Max, Any);
      maxHoleId(A.getValue(), Max, Any);
      break;
    }
    case Stmt::Kind::Observe:
      maxHoleId(cast<ObserveStmt>(S).getCond(), Max, Any);
      break;
    case Stmt::Kind::Block:
      maxHoleId(cast<BlockStmt>(S).getStmts(), Max, Any);
      break;
    case Stmt::Kind::If: {
      const auto &I = cast<IfStmt>(S);
      maxHoleId(I.getCond(), Max, Any);
      maxHoleId(I.getThen().getStmts(), Max, Any);
      maxHoleId(I.getElse().getStmts(), Max, Any);
      break;
    }
    case Stmt::Kind::For: {
      const auto &F = cast<ForStmt>(S);
      maxHoleId(F.getLo(), Max, Any);
      maxHoleId(F.getHi(), Max, Any);
      maxHoleId(F.getBody().getStmts(), Max, Any);
      break;
    }
    case Stmt::Kind::Skip:
      break;
    }
  }
}

/// The walker: one forward pass (loops to fixpoint) propagating hole
/// masks through an environment keyed by variable name — array
/// elements share their base name's summary cell (weak updates).
struct MaskWalker {
  /// Variable names whose *reads* are data references (observed
  /// columns): either the raw-build column set or the lowered-build
  /// observed map.  The cells themselves still accumulate masks — the
  /// density term of an observed slot depends on its accumulated
  /// value, only reads of it are cut.
  const std::set<std::string> *CutSet = nullptr;
  const std::unordered_map<std::string, unsigned> *CutMap = nullptr;
  bool SaturateAll = false;

  std::unordered_map<std::string, HoleMask> Env;
  HoleMask Rho = 0;
  std::vector<const ObserveStmt *> ObserveOrder;
  std::unordered_map<const ObserveStmt *, HoleMask> ObserveMask;

  bool isCutRead(const std::string &Name) const {
    if (CutSet)
      return CutSet->count(Name) != 0;
    if (CutMap)
      return CutMap->count(Name) != 0;
    return false;
  }

  HoleMask bit(unsigned H) const {
    return (SaturateAll || H >= 64) ? ~HoleMask(0) : HoleMask(1) << H;
  }

  HoleMask envMask(const std::string &Name) const {
    auto It = Env.find(Name);
    return It == Env.end() ? 0 : It->second;
  }

  /// Mask of an array-element read: joins the base-name summary with
  /// every per-element cell (lowered programs scalarize `a[i]` into
  /// slots named `a[0]`, `a[1]`, ...), skipping cut element names.
  HoleMask arrayReadMask(const std::string &Base) const {
    HoleMask M = isCutRead(Base) ? 0 : envMask(Base);
    const std::string Prefix = Base + "[";
    for (const auto &[Name, Mask] : Env)
      if (Name.compare(0, Prefix.size(), Prefix) == 0 && !isCutRead(Name))
        M |= Mask;
    return M;
  }

  HoleMask exprMask(const Expr &Ex) const {
    switch (Ex.getKind()) {
    case Expr::Kind::Const:
      return 0;
    case Expr::Kind::Var: {
      const std::string &Name = cast<VarExpr>(Ex).getName();
      return isCutRead(Name) ? 0 : envMask(Name);
    }
    case Expr::Kind::Index: {
      const auto &Ix = cast<IndexExpr>(Ex);
      // Which element is read depends on the index, so its mask joins
      // the element masks.
      return arrayReadMask(Ix.getArrayName()) | exprMask(Ix.getIndex());
    }
    case Expr::Kind::HoleArg:
      // Only legal inside completions, which this walker never enters:
      // a hole's own bit covers whatever its completion reads.
      return 0;
    case Expr::Kind::Unary:
      return exprMask(cast<UnaryExpr>(Ex).getSub());
    case Expr::Kind::Binary: {
      const auto &B = cast<BinaryExpr>(Ex);
      return exprMask(B.getLHS()) | exprMask(B.getRHS());
    }
    case Expr::Kind::Ite: {
      const auto &I = cast<IteExpr>(Ex);
      return exprMask(I.getCond()) | exprMask(I.getThen()) |
             exprMask(I.getElse());
    }
    case Expr::Kind::Sample: {
      const auto &S = cast<SampleExpr>(Ex);
      HoleMask M = 0;
      for (const ExprPtr &A : S.getArgs())
        M |= exprMask(*A);
      return M;
    }
    case Expr::Kind::Hole: {
      const auto &H = cast<HoleExpr>(Ex);
      HoleMask M = bit(H.getHoleId());
      for (const ExprPtr &A : H.getArgs())
        M |= exprMask(*A);
      return M;
    }
    }
    return ~HoleMask(0);
  }

  void recordObserve(const ObserveStmt &O, HoleMask M) {
    auto [It, Inserted] = ObserveMask.emplace(&O, M);
    if (Inserted)
      ObserveOrder.push_back(&O);
    else
      It->second |= M; // Loop revisits join monotonically.
    Rho |= M;
  }

  /// Names the statements can assign (loop saturation fallback).
  static void assignedNames(const std::vector<StmtPtr> &Stmts,
                            std::set<std::string> &Names) {
    for (const StmtPtr &SP : Stmts) {
      const Stmt &S = *SP;
      switch (S.getKind()) {
      case Stmt::Kind::Assign:
        Names.insert(cast<AssignStmt>(S).getTarget().Name);
        break;
      case Stmt::Kind::Block:
        assignedNames(cast<BlockStmt>(S).getStmts(), Names);
        break;
      case Stmt::Kind::If: {
        const auto &I = cast<IfStmt>(S);
        assignedNames(I.getThen().getStmts(), Names);
        assignedNames(I.getElse().getStmts(), Names);
        break;
      }
      case Stmt::Kind::For:
        assignedNames(cast<ForStmt>(S).getBody().getStmts(), Names);
        break;
      case Stmt::Kind::Observe:
      case Stmt::Kind::Skip:
        break;
      }
    }
  }

  /// \p Control is the mask of every enclosing branch condition and
  /// loop bound: it taints assignments (which value survives depends
  /// on the path taken) and observes (their factor is weighted by the
  /// enclosing branch probabilities).
  void walkStmts(const std::vector<StmtPtr> &Stmts, HoleMask Control) {
    for (const StmtPtr &SP : Stmts) {
      const Stmt &S = *SP;
      switch (S.getKind()) {
      case Stmt::Kind::Assign: {
        const auto &A = cast<AssignStmt>(S);
        HoleMask M = exprMask(A.getValue()) | Control;
        if (A.getTarget().isArrayElement()) {
          // Weak update on the base-name summary cell: any element may
          // hold this value afterwards, none loses its old one.
          M |= exprMask(*A.getTarget().Index);
          Env[A.getTarget().Name] |= M;
        } else {
          Env[A.getTarget().Name] = M;
        }
        break;
      }
      case Stmt::Kind::Observe: {
        const auto &O = cast<ObserveStmt>(S);
        recordObserve(O, exprMask(O.getCond()) | Control);
        break;
      }
      case Stmt::Kind::Block:
        walkStmts(cast<BlockStmt>(S).getStmts(), Control);
        break;
      case Stmt::Kind::If: {
        const auto &I = cast<IfStmt>(S);
        HoleMask CondM = exprMask(I.getCond());
        // rho ← rho · (p·rho1 + (1−p)·rho2) always multiplies a
        // p-dependent factor in, observes or not: p + (1−p) ≠ 1 in
        // floating point, so the product depends on the condition.
        Rho |= CondM | Control;
        std::unordered_map<std::string, HoleMask> Pre = Env;
        walkStmts(I.getThen().getStmts(), Control | CondM);
        std::unordered_map<std::string, HoleMask> ThenEnv = std::move(Env);
        Env = Pre;
        walkStmts(I.getElse().getStmts(), Control | CondM);
        // envmerge: a slot either branch touched becomes
        // ite(cond, then, else) — join both branch masks plus the
        // condition's.  Untouched slots keep their pre-branch mask.
        // The walk never erases keys, so ThenEnv and Env (now the else
        // state) are both supersets of Pre.
        for (const auto &[Name, ThenM] : ThenEnv) {
          auto ElseIt = Env.find(Name);
          HoleMask ElseM = ElseIt == Env.end() ? 0 : ElseIt->second;
          auto PreIt = Pre.find(Name);
          bool InPre = PreIt != Pre.end();
          HoleMask PreM = InPre ? PreIt->second : 0;
          bool Touched = !InPre || ThenM != PreM || ElseM != PreM;
          HoleMask Merged = Touched ? (ThenM | ElseM | CondM) : PreM;
          Env[Name] = Merged;
        }
        for (auto &[Name, ElseM] : Env) {
          if (ThenEnv.count(Name))
            continue; // Merged above.
          // Else-only addition (absent from Pre too, since the walk
          // only adds keys).
          ElseM |= CondM;
        }
        break;
      }
      case Stmt::Kind::For: {
        const auto &F = cast<ForStmt>(S);
        HoleMask BoundM = exprMask(F.getLo()) | exprMask(F.getHi());
        HoleMask Inner = Control | BoundM;
        // The index variable is concrete at every unrolled iteration;
        // only hole-dependent bounds taint it.
        Env[F.getIndexVar()] = BoundM;
        // Monotone fixpoint: each round re-walks the body, then joins
        // with the round's entry state so the result covers executing
        // zero, one, or many more iterations.
        unsigned Round = 0;
        for (; Round != MaxMaskFixpointRounds; ++Round) {
          std::unordered_map<std::string, HoleMask> Start = Env;
          HoleMask StartRho = Rho;
          auto StartObs = ObserveMask;
          walkStmts(F.getBody().getStmts(), Inner);
          for (const auto &[Name, M] : Start)
            Env[Name] |= M;
          if (Env == Start && Rho == StartRho && ObserveMask == StartObs)
            break;
        }
        if (Round == MaxMaskFixpointRounds) {
          // Defensive saturation: everything the body can assign — and
          // rho — is assumed to depend on every hole.
          std::set<std::string> Names;
          assignedNames(F.getBody().getStmts(), Names);
          for (const std::string &Name : Names)
            Env[Name] = ~HoleMask(0);
          Rho = ~HoleMask(0);
          for (auto &[Site, M] : ObserveMask)
            M = ~HoleMask(0);
        }
        break;
      }
      case Stmt::Kind::Skip:
        break;
      }
    }
  }
};

} // namespace

DependenceGraph
DependenceGraph::build(const Program &P,
                       const std::set<std::string> *ObservedColumns) {
  DependenceGraph G;
  unsigned Max = 0;
  bool Any = false;
  maxHoleId(P.getBody().getStmts(), Max, Any);
  G.NumHoles = Any ? Max + 1 : 0;
  G.Saturated = Any && Max >= 64;

  MaskWalker W;
  W.CutSet = ObservedColumns;
  W.SaturateAll = G.Saturated;
  W.walkStmts(P.getBody().getStmts(), 0);

  G.Rho = W.Rho;
  for (const ObserveStmt *O : W.ObserveOrder)
    G.Observes.push_back({O, W.ObserveMask[O]});
  // Sinks: every observed column the program models (these are the
  // likelihood's density terms — name-ascending, the std::set order),
  // then any returned variable not already among them.
  std::set<std::string> Emitted;
  if (ObservedColumns) {
    for (const std::string &Name : *ObservedColumns) {
      if (!W.Env.count(Name))
        continue;
      G.Outputs.push_back({Name, W.envMask(Name)});
      Emitted.insert(Name);
    }
  }
  for (const std::string &Name : P.getReturns())
    if (Emitted.insert(Name).second)
      G.Outputs.push_back({Name, W.envMask(Name)});
  G.FinalEnv = std::move(W.Env);
  return G;
}

DependenceGraph
DependenceGraph::build(const LoweredProgram &LP,
                       const std::unordered_map<std::string, unsigned>
                           &Observed) {
  DependenceGraph G;
  unsigned Max = 0;
  bool Any = false;
  maxHoleId(LP.Stmts, Max, Any);
  G.NumHoles = Any ? Max + 1 : 0;
  G.Saturated = Any && Max >= 64;

  MaskWalker W;
  W.CutMap = &Observed;
  W.SaturateAll = G.Saturated;
  W.walkStmts(LP.Stmts, 0);

  G.Rho = W.Rho;
  for (const ObserveStmt *O : W.ObserveOrder)
    G.Observes.push_back({O, W.ObserveMask[O]});
  // Outputs = the modeled observed slots, column-ascending — the term
  // order of LLExecutor::runTerms.
  std::vector<std::pair<unsigned, std::string>> Ordered;
  for (const auto &[Name, Col] : Observed)
    if (LP.slotId(Name) != ~0u)
      Ordered.emplace_back(Col, Name);
  std::sort(Ordered.begin(), Ordered.end());
  for (const auto &[Col, Name] : Ordered)
    G.Outputs.push_back({Name, W.envMask(Name)});
  G.FinalEnv = std::move(W.Env);
  return G;
}
