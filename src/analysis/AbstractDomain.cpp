//===- analysis/AbstractDomain.cpp - Interval x sign x NaN domain --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/AbstractDomain.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace psketch;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Round an interval endpoint outward by one ulp.  The concrete
/// evaluators use round-to-nearest double arithmetic, under which +, -
/// and * are monotone, so corner-point endpoint arithmetic is already
/// sound; the extra ulp keeps the guarantee under FMA contraction
/// (--ffast-tape) and any future reassociation in the simplifier.
double ulpDown(double X) { return X == -Inf ? X : std::nextafter(X, -Inf); }
double ulpUp(double X) { return X == Inf ? X : std::nextafter(X, Inf); }

/// Sign values as subsets of {negative, zero, positive}.
constexpr unsigned MaskNeg = 1, MaskZero = 2, MaskPos = 4;

unsigned signMask(Sign S) {
  switch (S) {
  case Sign::Bottom:
    return 0;
  case Sign::Neg:
    return MaskNeg;
  case Sign::Zero:
    return MaskZero;
  case Sign::Pos:
    return MaskPos;
  case Sign::NonPos:
    return MaskNeg | MaskZero;
  case Sign::NonZero:
    return MaskNeg | MaskPos;
  case Sign::NonNeg:
    return MaskZero | MaskPos;
  case Sign::Top:
    return MaskNeg | MaskZero | MaskPos;
  }
  return MaskNeg | MaskZero | MaskPos;
}

Sign maskSign(unsigned M) {
  static constexpr Sign Table[8] = {Sign::Bottom, Sign::Neg,    Sign::Zero,
                                    Sign::NonPos, Sign::Pos,    Sign::NonZero,
                                    Sign::NonNeg, Sign::Top};
  return Table[M & 7u];
}

unsigned intervalMask(double Lo, double Hi) {
  if (Lo > Hi)
    return 0;
  unsigned M = 0;
  if (Lo < 0)
    M |= MaskNeg;
  if (Lo <= 0 && Hi >= 0)
    M |= MaskZero;
  if (Hi > 0)
    M |= MaskPos;
  return M;
}

bool mayBeInfinite(const AbstractValue &A) {
  return !A.emptyRange() && (A.Lo == -Inf || A.Hi == Inf);
}

bool mayBeZero(const AbstractValue &A) {
  return !A.emptyRange() && A.Lo <= 0 && A.Hi >= 0 &&
         (signMask(A.Si) & MaskZero);
}

/// Endpoint addition that never manufactures NaN: an (-inf) + (+inf)
/// endpoint pair means "unbounded on this side", so the result endpoint
/// is the requested infinity.
double safeAdd(double X, double Y, double IfIndeterminate) {
  if (std::isinf(X) && std::isinf(Y) && X != Y)
    return IfIndeterminate;
  return X + Y;
}

/// Truth-view of an abstract value used as a condition.  The language
/// types conditions as Bool (values are exactly 0 or 1), but the view is
/// kept sound for any numeric value: nonzero and NaN both act as true
/// under the concrete evaluators' `!= 0` tests.
void truthiness(const AbstractValue &A, bool &CanBeFalse, bool &CanBeTrue) {
  if (A.isBottom()) {
    CanBeFalse = CanBeTrue = false;
    return;
  }
  CanBeFalse = mayBeZero(A);
  CanBeTrue = A.mayBeNaN() || (!A.emptyRange() && (A.Lo < 0 || A.Hi > 0));
}

} // namespace

//===--- Sign lattice ------------------------------------------------------===//

Sign psketch::joinSign(Sign A, Sign B) {
  return maskSign(signMask(A) | signMask(B));
}

Sign psketch::meetSign(Sign A, Sign B) {
  return maskSign(signMask(A) & signMask(B));
}

bool psketch::signContains(Sign S, double V) {
  assert(!std::isnan(V) && "sign lattice only constrains non-NaN values");
  unsigned M = signMask(S);
  if (V < 0)
    return M & MaskNeg;
  if (V > 0)
    return M & MaskPos;
  return M & MaskZero;
}

const char *psketch::signName(Sign S) {
  switch (S) {
  case Sign::Bottom:
    return "bottom";
  case Sign::Neg:
    return "neg";
  case Sign::Zero:
    return "zero";
  case Sign::Pos:
    return "pos";
  case Sign::NonPos:
    return "nonpos";
  case Sign::NonZero:
    return "nonzero";
  case Sign::NonNeg:
    return "nonneg";
  case Sign::Top:
    return "top";
  }
  return "top";
}

//===--- AbstractValue -----------------------------------------------------===//

AbstractValue AbstractValue::topReal() { return {-Inf, Inf, Sign::Top, false}; }

AbstractValue AbstractValue::topBool() { return {0, 1, Sign::NonNeg, true}; }

AbstractValue AbstractValue::bottom() { return {Inf, -Inf, Sign::Bottom, true}; }

AbstractValue AbstractValue::constant(double V) {
  if (std::isnan(V))
    return {Inf, -Inf, Sign::Bottom, false}; // NaN-only: empty range, may-NaN
  AbstractValue A{V, V, Sign::Top, true};
  return A.reduce();
}

AbstractValue AbstractValue::range(double Lo, double Hi) {
  assert(Lo <= Hi && "range endpoints out of order");
  AbstractValue A{Lo, Hi, Sign::Top, true};
  return A.reduce();
}

AbstractValue AbstractValue::boolValue(bool CanBeFalse, bool CanBeTrue) {
  if (!CanBeFalse && !CanBeTrue)
    return bottom();
  double Lo = CanBeFalse ? 0 : 1, Hi = CanBeTrue ? 1 : 0;
  AbstractValue A{Lo, Hi, Sign::Top, true};
  return A.reduce();
}

bool AbstractValue::contains(double V) const {
  if (std::isnan(V))
    return mayBeNaN();
  return !emptyRange() && V >= Lo && V <= Hi && signContains(Si, V);
}

std::string AbstractValue::str() const {
  if (isBottom())
    return "bottom";
  std::ostringstream OS;
  if (emptyRange())
    OS << "{}";
  else
    OS << "[" << Lo << ", " << Hi << "]";
  if (Si != maskSign(intervalMask(Lo, Hi)))
    OS << " " << signName(Si);
  if (mayBeNaN())
    OS << " nan?";
  return OS.str();
}

AbstractValue AbstractValue::reduce() const {
  AbstractValue R = *this;
  unsigned M = signMask(R.Si) & intervalMask(R.Lo, R.Hi);
  if (M == 0) {
    // Empty interval: either bottom or a NaN-only value.
    R.Lo = Inf;
    R.Hi = -Inf;
    R.Si = Sign::Bottom;
    return R;
  }
  // Tighten the interval with the sign constraint.  The endpoints stay
  // exact: when zero is excluded the closed double interval can step to
  // the adjacent subnormal.
  constexpr double Tiny = std::numeric_limits<double>::denorm_min();
  if (!(M & MaskNeg) && R.Lo < 0)
    R.Lo = (M & MaskZero) ? 0.0 : Tiny;
  if (!(M & MaskPos) && R.Hi > 0)
    R.Hi = (M & MaskZero) ? 0.0 : -Tiny;
  if (!(M & MaskZero)) {
    if (R.Lo == 0)
      R.Lo = Tiny;
    if (R.Hi == 0)
      R.Hi = -Tiny;
  }
  if (R.Lo > R.Hi) { // sign and interval were jointly unsatisfiable
    R.Lo = Inf;
    R.Hi = -Inf;
    R.Si = Sign::Bottom;
    return R;
  }
  R.Si = maskSign(M & intervalMask(R.Lo, R.Hi));
  return R;
}

//===--- Lattice operations ------------------------------------------------===//

AbstractValue psketch::join(const AbstractValue &A, const AbstractValue &B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  AbstractValue R;
  R.NaNFree = A.NaNFree && B.NaNFree;
  if (A.emptyRange()) {
    R.Lo = B.Lo;
    R.Hi = B.Hi;
    R.Si = B.Si;
  } else if (B.emptyRange()) {
    R.Lo = A.Lo;
    R.Hi = A.Hi;
    R.Si = A.Si;
  } else {
    R.Lo = std::min(A.Lo, B.Lo);
    R.Hi = std::max(A.Hi, B.Hi);
    R.Si = joinSign(A.Si, B.Si);
  }
  return R.reduce();
}

AbstractValue psketch::widen(const AbstractValue &Prev,
                             const AbstractValue &Next) {
  if (Prev.isBottom())
    return Next;
  AbstractValue J = join(Prev, Next);
  if (J.emptyRange())
    return J;
  AbstractValue R = J;
  if (!Prev.emptyRange()) {
    if (J.Lo < Prev.Lo)
      R.Lo = -Inf;
    if (J.Hi > Prev.Hi)
      R.Hi = Inf;
  } else {
    R.Lo = -Inf;
    R.Hi = Inf;
  }
  return R.reduce();
}

//===--- Transfer functions ------------------------------------------------===//

AbstractValue psketch::absNeg(const AbstractValue &A) {
  if (A.isBottom())
    return A;
  AbstractValue R;
  R.NaNFree = A.NaNFree;
  if (A.emptyRange()) {
    R.Lo = Inf;
    R.Hi = -Inf;
    R.Si = Sign::Bottom;
    return R;
  }
  R.Lo = -A.Hi; // exact: negation does not round
  R.Hi = -A.Lo;
  unsigned M = signMask(A.Si);
  unsigned Flipped = (M & MaskZero);
  if (M & MaskNeg)
    Flipped |= MaskPos;
  if (M & MaskPos)
    Flipped |= MaskNeg;
  R.Si = maskSign(Flipped);
  return R.reduce();
}

AbstractValue psketch::absNot(const AbstractValue &A) {
  bool CanBeFalse, CanBeTrue;
  truthiness(A, CanBeFalse, CanBeTrue);
  return AbstractValue::boolValue(/*CanBeFalse=*/CanBeTrue,
                                  /*CanBeTrue=*/CanBeFalse);
}

AbstractValue psketch::absAdd(const AbstractValue &A, const AbstractValue &B) {
  if (A.isBottom() || B.isBottom())
    return AbstractValue::bottom();
  AbstractValue R;
  R.NaNFree = A.NaNFree && B.NaNFree;
  if (A.emptyRange() || B.emptyRange()) { // NaN-only operand
    R.Lo = Inf;
    R.Hi = -Inf;
    R.Si = Sign::Bottom;
    return R;
  }
  // (+inf) + (-inf) is the one way addition manufactures NaN.
  if ((A.Hi == Inf && B.Lo == -Inf) || (A.Lo == -Inf && B.Hi == Inf))
    R.NaNFree = false;
  R.Lo = ulpDown(safeAdd(A.Lo, B.Lo, -Inf));
  R.Hi = ulpUp(safeAdd(A.Hi, B.Hi, Inf));
  // Sign algebra: x > 0, y >= 0 implies fl(x + y) > 0 (no cancellation,
  // rounding is monotone and sign-preserving for same-sign addends).
  unsigned MA = signMask(A.Si), MB = signMask(B.Si), M = 0;
  for (unsigned CA = 1; CA <= 4; CA <<= 1) {
    if (!(MA & CA))
      continue;
    for (unsigned CB = 1; CB <= 4; CB <<= 1) {
      if (!(MB & CB))
        continue;
      if (CA == MaskZero)
        M |= CB;
      else if (CB == MaskZero || CB == CA)
        M |= CA;
      else // opposite signs: anything can happen
        M |= MaskNeg | MaskZero | MaskPos;
    }
  }
  R.Si = maskSign(M);
  return R.reduce();
}

AbstractValue psketch::absSub(const AbstractValue &A, const AbstractValue &B) {
  return absAdd(A, absNeg(B));
}

AbstractValue psketch::absMul(const AbstractValue &A, const AbstractValue &B) {
  if (A.isBottom() || B.isBottom())
    return AbstractValue::bottom();
  AbstractValue R;
  R.NaNFree = A.NaNFree && B.NaNFree;
  if (A.emptyRange() || B.emptyRange()) { // NaN-only operand
    R.Lo = Inf;
    R.Hi = -Inf;
    R.Si = Sign::Bottom;
    return R;
  }
  // 0 * inf is the one way multiplication manufactures NaN; when the
  // corner products are indeterminate the interval collapses to top.
  if ((mayBeZero(A) && mayBeInfinite(B)) || (mayBeZero(B) && mayBeInfinite(A)))
    R.NaNFree = false;
  double C[4] = {A.Lo * B.Lo, A.Lo * B.Hi, A.Hi * B.Lo, A.Hi * B.Hi};
  double Lo = Inf, Hi = -Inf;
  bool Indeterminate = false;
  for (double P : C) {
    if (std::isnan(P)) {
      Indeterminate = true;
      continue;
    }
    Lo = std::min(Lo, P);
    Hi = std::max(Hi, P);
  }
  if (Indeterminate) {
    Lo = -Inf;
    Hi = Inf;
  }
  R.Lo = ulpDown(Lo);
  R.Hi = ulpUp(Hi);
  // Sign products; underflow can flush a product of nonzeros to zero, so
  // zero joins whenever both factors may be nonzero.
  unsigned MA = signMask(A.Si), MB = signMask(B.Si), M = 0;
  if ((MA & MaskZero) || (MB & MaskZero))
    M |= MaskZero;
  if ((MA & (MaskNeg | MaskPos)) && (MB & (MaskNeg | MaskPos)))
    M |= MaskZero; // underflow
  if (((MA & MaskPos) && (MB & MaskPos)) || ((MA & MaskNeg) && (MB & MaskNeg)))
    M |= MaskPos;
  if (((MA & MaskPos) && (MB & MaskNeg)) || ((MA & MaskNeg) && (MB & MaskPos)))
    M |= MaskNeg;
  R.Si = maskSign(M);
  return R.reduce();
}

AbstractValue psketch::absAnd(const AbstractValue &A, const AbstractValue &B) {
  if (A.isBottom() || B.isBottom())
    return AbstractValue::bottom();
  bool AF, AT, BF, BT;
  truthiness(A, AF, AT);
  truthiness(B, BF, BT);
  return AbstractValue::boolValue(AF || BF, AT && BT);
}

AbstractValue psketch::absOr(const AbstractValue &A, const AbstractValue &B) {
  if (A.isBottom() || B.isBottom())
    return AbstractValue::bottom();
  bool AF, AT, BF, BT;
  truthiness(A, AF, AT);
  truthiness(B, BF, BT);
  return AbstractValue::boolValue(AF && BF, AT || BT);
}

namespace {

/// Shared comparison shape: NaN operands make every comparison false.
AbstractValue compareResult(const AbstractValue &A, const AbstractValue &B,
                            bool CanBeTrue, bool CanBeFalse) {
  if (A.isBottom() || B.isBottom())
    return AbstractValue::bottom();
  if (A.mayBeNaN() || B.mayBeNaN())
    CanBeFalse = true;
  if (A.emptyRange() || B.emptyRange()) // NaN-only operand: always false
    CanBeTrue = false;
  return AbstractValue::boolValue(CanBeFalse, CanBeTrue);
}

} // namespace

AbstractValue psketch::absGt(const AbstractValue &A, const AbstractValue &B) {
  bool CanBeTrue = !A.emptyRange() && !B.emptyRange() && A.Hi > B.Lo;
  bool CanBeFalse = !A.emptyRange() && !B.emptyRange() && A.Lo <= B.Hi;
  return compareResult(A, B, CanBeTrue, CanBeFalse);
}

AbstractValue psketch::absLt(const AbstractValue &A, const AbstractValue &B) {
  return absGt(B, A);
}

AbstractValue psketch::absEq(const AbstractValue &A, const AbstractValue &B) {
  bool Overlap = !A.emptyRange() && !B.emptyRange() &&
                 std::max(A.Lo, B.Lo) <= std::min(A.Hi, B.Hi) &&
                 meetSign(A.Si, B.Si) != Sign::Bottom;
  bool BothSameSingleton = A.isSingleton() && B.isSingleton() && A.Lo == B.Lo;
  return compareResult(A, B, /*CanBeTrue=*/Overlap,
                       /*CanBeFalse=*/!BothSameSingleton);
}

AbstractValue psketch::applyUnary(UnaryOp Op, const AbstractValue &A) {
  switch (Op) {
  case UnaryOp::Not:
    return absNot(A);
  case UnaryOp::Neg:
    return absNeg(A);
  }
  return AbstractValue::topReal();
}

AbstractValue psketch::applyBinary(BinaryOp Op, const AbstractValue &A,
                                   const AbstractValue &B) {
  switch (Op) {
  case BinaryOp::Add:
    return absAdd(A, B);
  case BinaryOp::Sub:
    return absSub(A, B);
  case BinaryOp::Mul:
    return absMul(A, B);
  case BinaryOp::And:
    return absAnd(A, B);
  case BinaryOp::Or:
    return absOr(A, B);
  case BinaryOp::Gt:
    return absGt(A, B);
  case BinaryOp::Lt:
    return absLt(A, B);
  case BinaryOp::Eq:
    return absEq(A, B);
  }
  return AbstractValue::topReal();
}

AbstractValue psketch::distResultRange(DistKind D) {
  switch (D) {
  case DistKind::Gaussian:
    return AbstractValue::range(-Inf, Inf);
  case DistKind::Bernoulli:
    return AbstractValue::topBool();
  case DistKind::Beta:
    return AbstractValue::range(0, 1);
  case DistKind::Gamma:
  case DistKind::Poisson:
    return AbstractValue::range(0, Inf);
  }
  return AbstractValue::topReal();
}

bool psketch::definitelyInvalidParam(DistKind D, unsigned ArgIdx,
                                     const AbstractValue &V) {
  // A may-be-NaN parameter is never definitely invalid: the runtime
  // clamps NaN parameters into the valid domain, so the draw can still
  // execute and score finite.
  if (!V.NaNFree || V.isBottom())
    return false;
  switch (D) {
  case DistKind::Gaussian:
    return ArgIdx == 1 && V.definitelyLE(0); // sigma > 0
  case DistKind::Bernoulli:
    return V.definitelyLT(0) || V.definitelyGT(1); // p in [0, 1]
  case DistKind::Beta:
    return V.definitelyLE(0); // alpha, beta > 0
  case DistKind::Gamma:
    return V.definitelyLE(0); // shape, scale > 0
  case DistKind::Poisson:
    return V.definitelyLE(0); // rate > 0
  }
  return false;
}

const char *psketch::distParamName(DistKind D, unsigned ArgIdx) {
  switch (D) {
  case DistKind::Gaussian:
    return ArgIdx == 0 ? "mean" : "sigma";
  case DistKind::Bernoulli:
    return "probability";
  case DistKind::Beta:
    return ArgIdx == 0 ? "alpha" : "beta";
  case DistKind::Gamma:
    return ArgIdx == 0 ? "shape" : "scale";
  case DistKind::Poisson:
    return "rate";
  }
  return "parameter";
}
