//===- analysis/ProgramAnalysis.cpp - Abstract interpreter over programs -===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProgramAnalysis.h"

#include "support/Casting.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

using namespace psketch;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Rounds of a loop fixpoint before giving up (widening makes the
/// iteration converge long before this; the cap is a defensive bound).
constexpr unsigned MaxFixpointRounds = 16;

/// One environment cell: a scalar variable, or the single summary cell
/// of an array (weak updates, element reads join all written values).
struct Cell {
  AbstractValue Val = AbstractValue::bottom();
  ScalarKind Kind = ScalarKind::Real;
  bool IsArray = false;
  bool IsLocal = false;
  /// No assignment definitely dominates the current point.
  bool MaybeUnassigned = true;
  bool EverAssigned = false;
  bool EverRead = false;
  bool ReadMaybeUnassigned = false;
  SourceLoc FirstBadRead;
};

using Env = std::unordered_map<std::string, Cell>;

/// The per-run walker.  All state is local to one analysis call, so a
/// shared ProgramAnalysis can run concurrently from many chains.
struct Walker {
  const Program &P;
  const InputBindings *Inputs;
  const std::vector<ExprPtr> *Completions;
  bool Collect;
  bool StopOnReject;

  AnalysisResult Res;
  Env E;
  /// Formal values of the completion currently being evaluated (null
  /// outside hole sites).
  const std::vector<AbstractValue> *Formals = nullptr;
  bool InCompletion = false;
  /// A definitely-false observe was passed: no concrete run reaches the
  /// current point, so draw-validity checks no longer apply.
  bool Unreachable = false;
  /// StopOnReject fired; unwinding.
  bool Done = false;

  std::unordered_map<const SampleExpr *, size_t> DrawIndex;
  std::unordered_map<const ObserveStmt *, size_t> ObserveIndex;
  std::unordered_map<const HoleExpr *, size_t> HoleIndex;

  Walker(const Program &P, const InputBindings *Inputs,
         const std::vector<ExprPtr> *Completions, bool Collect,
         bool StopOnReject)
      : P(P), Inputs(Inputs), Completions(Completions), Collect(Collect),
        StopOnReject(StopOnReject) {}

  //===--- Environment ----------------------------------------------------===//

  AbstractValue inputValue(const Param &Pm) const {
    const InputValue *IV = Inputs ? Inputs->find(Pm.Name) : nullptr;
    if (!IV)
      return topOfKind(Pm.Ty.Kind);
    if (!IV->isArray())
      return AbstractValue::constant(IV->scalar());
    if (IV->Values.empty())
      return topOfKind(Pm.Ty.Kind);
    double Lo = Inf, Hi = -Inf;
    bool SawNaN = false;
    for (double V : IV->Values) {
      if (std::isnan(V)) {
        SawNaN = true;
        continue;
      }
      Lo = std::min(Lo, V);
      Hi = std::max(Hi, V);
    }
    AbstractValue A = Lo <= Hi ? AbstractValue::range(Lo, Hi)
                               : AbstractValue::bottom();
    A.NaNFree = !SawNaN;
    return A;
  }

  void seedEnv() {
    for (const Param &Pm : P.getParams()) {
      Cell C;
      C.Kind = Pm.Ty.Kind;
      C.IsArray = Pm.Ty.IsArray;
      C.MaybeUnassigned = false;
      C.EverAssigned = true;
      C.Val = inputValue(Pm);
      E.emplace(Pm.Name, std::move(C));
    }
    for (const LocalDecl &D : P.getDecls()) {
      if (D.ArraySize)
        evalExpr(*D.ArraySize); // reads of size parameters
      Cell C;
      C.Kind = D.Kind;
      C.IsArray = D.isArray();
      C.IsLocal = true;
      E.emplace(D.Name, std::move(C));
    }
  }

  Cell &lookup(const std::string &Name) {
    auto It = E.find(Name);
    if (It == E.end()) {
      // TypeCheck rejects undeclared names; be defensive anyway.
      Cell C;
      C.MaybeUnassigned = false;
      C.EverAssigned = true;
      C.Val = AbstractValue::topReal();
      It = E.emplace(Name, std::move(C)).first;
    }
    return It->second;
  }

  AbstractValue readVar(const std::string &Name, SourceLoc Loc) {
    Cell &C = lookup(Name);
    C.EverRead = true;
    if (C.MaybeUnassigned && !C.ReadMaybeUnassigned) {
      C.ReadMaybeUnassigned = true;
      C.FirstBadRead = Loc;
    }
    // A read with no dominating assignment aborts the concrete run
    // (interp marks it invalid; the symbolic executor reports the
    // program malformed), so over-approximating with the kind's top
    // value stays sound for whatever follows.
    if (!C.EverAssigned)
      return topOfKind(C.Kind);
    if (C.MaybeUnassigned)
      return join(C.Val, topOfKind(C.Kind));
    return C.Val;
  }

  //===--- Fact recording --------------------------------------------------===//

  void recordDraw(const SampleExpr &S, const std::vector<AbstractValue> &Args) {
    if (Collect) {
      auto [It, Fresh] = DrawIndex.try_emplace(&S, Res.Draws.size());
      if (Fresh) {
        DrawSiteFacts F;
        F.Site = &S;
        F.Dist = S.getDist();
        F.InCompletion = InCompletion;
        F.Params = Args;
        Res.Draws.push_back(std::move(F));
      } else {
        auto &Params = Res.Draws[It->second].Params;
        for (size_t I = 0; I != Args.size() && I != Params.size(); ++I)
          Params[I] = join(Params[I], Args[I]);
      }
    }
    if (Unreachable || (Res.Rejected && StopOnReject))
      return;
    for (unsigned I = 0; I != Args.size(); ++I) {
      if (!definitelyInvalidParam(S.getDist(), I, Args[I]))
        continue;
      if (!Res.Rejected) {
        Res.Rejected = true;
        Res.RejectSite = &S;
        Res.RejectDist = S.getDist();
        Res.RejectArg = I;
        Res.RejectValue = Args[I];
      }
      if (StopOnReject)
        Done = true;
      return;
    }
  }

  void recordObserve(const ObserveStmt &S, const AbstractValue &Cond) {
    if (!Collect)
      return;
    auto [It, Fresh] = ObserveIndex.try_emplace(&S, Res.Observes.size());
    if (Fresh)
      Res.Observes.push_back({&S, Cond});
    else
      Res.Observes[It->second].Cond = join(Res.Observes[It->second].Cond, Cond);
  }

  void recordHole(const HoleExpr &H) {
    if (!Collect)
      return;
    auto [It, Fresh] = HoleIndex.try_emplace(&H, Res.Holes.size());
    (void)It;
    if (Fresh)
      Res.Holes.push_back({&H, H.getExpectedKind()});
  }

  //===--- Expressions -----------------------------------------------------===//

  AbstractValue evalExpr(const Expr &Ex) {
    if (Done)
      return AbstractValue::topReal();
    switch (Ex.getKind()) {
    case Expr::Kind::Const: {
      const auto &C = cast<ConstExpr>(Ex);
      return AbstractValue::constant(C.getValue());
    }
    case Expr::Kind::Var: {
      const auto &V = cast<VarExpr>(Ex);
      return readVar(V.getName(), V.getLoc());
    }
    case Expr::Kind::Index: {
      const auto &Ix = cast<IndexExpr>(Ex);
      evalExpr(Ix.getIndex());
      return readVar(Ix.getArrayName(), Ix.getLoc());
    }
    case Expr::Kind::HoleArg: {
      const auto &HA = cast<HoleArgExpr>(Ex);
      if (Formals && HA.getArgIndex() < Formals->size())
        return (*Formals)[HA.getArgIndex()];
      return topOfKind(HA.getScalarKind());
    }
    case Expr::Kind::Unary: {
      const auto &U = cast<UnaryExpr>(Ex);
      return applyUnary(U.getOp(), evalExpr(U.getSub()));
    }
    case Expr::Kind::Binary: {
      const auto &B = cast<BinaryExpr>(Ex);
      // Both operands are evaluated even where the concrete interpreter
      // short-circuits: skipped concrete evaluations contribute no
      // values, so evaluating more abstractly only widens the fact base.
      AbstractValue L = evalExpr(B.getLHS());
      AbstractValue R = evalExpr(B.getRHS());
      return applyBinary(B.getOp(), L, R);
    }
    case Expr::Kind::Ite: {
      const auto &I = cast<IteExpr>(Ex);
      AbstractValue C = evalExpr(I.getCond());
      if (C.definitelyTrue())
        return evalExpr(I.getThen());
      if (C.definitelyFalse())
        return evalExpr(I.getElse());
      return join(evalExpr(I.getThen()), evalExpr(I.getElse()));
    }
    case Expr::Kind::Sample: {
      const auto &S = cast<SampleExpr>(Ex);
      std::vector<AbstractValue> Args;
      Args.reserve(S.getNumArgs());
      for (unsigned I = 0, N = S.getNumArgs(); I != N; ++I)
        Args.push_back(evalExpr(S.getArg(I)));
      recordDraw(S, Args);
      return drawResult(S.getDist(), Args);
    }
    case Expr::Kind::Hole: {
      const auto &H = cast<HoleExpr>(Ex);
      recordHole(H);
      std::vector<AbstractValue> Args;
      Args.reserve(H.getNumArgs());
      for (unsigned I = 0, N = H.getNumArgs(); I != N; ++I)
        Args.push_back(evalExpr(H.getArg(I)));
      const Expr *Completion = nullptr;
      if (Completions && H.getHoleId() < Completions->size())
        Completion = (*Completions)[H.getHoleId()].get();
      if (!Completion || InCompletion)
        return topOfKind(H.getExpectedKind());
      const std::vector<AbstractValue> *SavedFormals = Formals;
      bool SavedIn = InCompletion;
      Formals = &Args;
      InCompletion = true;
      AbstractValue V = evalExpr(*Completion);
      Formals = SavedFormals;
      InCompletion = SavedIn;
      return V;
    }
    }
    return AbstractValue::topReal();
  }

  /// Result range of a draw, refined by the abstract parameter values:
  /// a Gaussian with definitely-finite, NaN-free parameters cannot
  /// produce NaN; NaN or infinite parameters may.
  static AbstractValue drawResult(DistKind D,
                                  const std::vector<AbstractValue> &Args) {
    bool CleanParams = true, FiniteParams = true;
    for (const AbstractValue &A : Args) {
      if (A.mayBeNaN())
        CleanParams = false;
      if (A.emptyRange() || A.Lo == -Inf || A.Hi == Inf)
        FiniteParams = false;
    }
    AbstractValue R = distResultRange(D);
    switch (D) {
    case DistKind::Bernoulli:
      return R; // always exactly {0, 1}
    case DistKind::Beta:
      R.NaNFree = CleanParams;
      return R;
    case DistKind::Gaussian:
    case DistKind::Gamma:
    case DistKind::Poisson:
      R.NaNFree = CleanParams && FiniteParams;
      return R;
    }
    return R;
  }

  //===--- Statements ------------------------------------------------------===//

  void flowStmt(const Stmt &S) {
    if (Done)
      return;
    switch (S.getKind()) {
    case Stmt::Kind::Skip:
      return;
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(S);
      AbstractValue V = evalExpr(A.getValue());
      const LValue &T = A.getTarget();
      if (T.Index)
        evalExpr(*T.Index);
      Cell &C = lookup(T.Name);
      if (C.IsArray || T.Index) {
        // Weak update: the summary cell joins every written value.
        C.Val = C.EverAssigned ? join(C.Val, V) : V;
        C.EverAssigned = true;
        // Element coverage is unknown, so reads stay maybe-unassigned.
      } else {
        C.Val = V;
        C.EverAssigned = true;
        C.MaybeUnassigned = false;
      }
      return;
    }
    case Stmt::Kind::Observe: {
      const auto &O = cast<ObserveStmt>(S);
      AbstractValue C = evalExpr(O.getCond());
      recordObserve(O, C);
      if (C.definitelyFalse())
        Unreachable = true; // no concrete run survives this observe
      return;
    }
    case Stmt::Kind::Block: {
      for (const StmtPtr &Sub : cast<BlockStmt>(S).getStmts())
        flowStmt(*Sub);
      return;
    }
    case Stmt::Kind::If: {
      const auto &I = cast<IfStmt>(S);
      AbstractValue C = evalExpr(I.getCond());
      if (C.definitelyTrue())
        return flowStmt(I.getThen());
      if (C.definitelyFalse())
        return flowStmt(I.getElse());
      Env Saved = E;
      bool SavedUnreach = Unreachable;
      flowStmt(I.getThen());
      Env ThenEnv = std::move(E);
      bool ThenUnreach = Unreachable;
      E = std::move(Saved);
      Unreachable = SavedUnreach;
      flowStmt(I.getElse());
      joinInto(E, ThenEnv);
      Unreachable = Unreachable && ThenUnreach;
      return;
    }
    case Stmt::Kind::For: {
      flowFor(cast<ForStmt>(S));
      return;
    }
    }
  }

  void flowFor(const ForStmt &F) {
    AbstractValue Lo = evalExpr(F.getLo());
    AbstractValue Hi = evalExpr(F.getHi());
    // Definitely zero-trip: every admitted lo is >= every admitted hi.
    if (!Lo.emptyRange() && !Hi.emptyRange() && Lo.NaNFree && Hi.NaNFree &&
        Lo.Lo >= Hi.Hi)
      return;
    double IdxLo = Lo.emptyRange() ? -Inf : Lo.Lo;
    double IdxHi = Hi.emptyRange() ? Inf : (Hi.Hi == Inf ? Inf : Hi.Hi - 1);
    if (IdxLo > IdxHi)
      return;
    AbstractValue IdxVal = AbstractValue::range(IdxLo, IdxHi);

    // The loop invariant is the least fixpoint of
    //   E -> Entry  join  flow(body, E with index bound),
    // reached by iteration with widening; the post-state is the
    // invariant itself (it covers zero or more iterations).
    bool HadOuterIdx = E.count(F.getIndexVar()) != 0;
    Cell OuterIdx;
    if (HadOuterIdx)
      OuterIdx = E[F.getIndexVar()];

    bool EntryUnreach = Unreachable;
    for (unsigned Round = 0; Round != MaxFixpointRounds && !Done; ++Round) {
      Env Invariant = E;
      bool InvariantUnreach = Unreachable;
      Cell IdxCell;
      IdxCell.Kind = ScalarKind::Int;
      IdxCell.MaybeUnassigned = false;
      IdxCell.EverAssigned = true;
      IdxCell.Val = IdxVal;
      E[F.getIndexVar()] = IdxCell;
      flowStmt(F.getBody());
      E.erase(F.getIndexVar());
      joinInto(E, Invariant);
      Unreachable = Unreachable && InvariantUnreach;
      if (Round >= 2)
        widenInto(E, Invariant);
      if (envEqual(E, Invariant) && Unreachable == InvariantUnreach)
        break;
    }
    Unreachable = Unreachable && EntryUnreach;
    if (HadOuterIdx)
      E[F.getIndexVar()] = OuterIdx;
    else
      E.erase(F.getIndexVar());
  }

  //===--- Env lattice helpers ---------------------------------------------===//

  static void joinCell(Cell &Dst, const Cell &Src) {
    if (!Src.EverAssigned) {
      // nothing written on the other path
    } else if (!Dst.EverAssigned) {
      Dst.Val = Src.Val;
    } else {
      Dst.Val = join(Dst.Val, Src.Val);
    }
    Dst.EverAssigned = Dst.EverAssigned || Src.EverAssigned;
    Dst.MaybeUnassigned = Dst.MaybeUnassigned || Src.MaybeUnassigned;
    Dst.EverRead = Dst.EverRead || Src.EverRead;
    if (Src.ReadMaybeUnassigned && !Dst.ReadMaybeUnassigned) {
      Dst.ReadMaybeUnassigned = true;
      Dst.FirstBadRead = Src.FirstBadRead;
    }
  }

  static void joinInto(Env &Dst, const Env &Src) {
    for (const auto &[Name, C] : Src) {
      auto It = Dst.find(Name);
      if (It == Dst.end())
        Dst.emplace(Name, C);
      else
        joinCell(It->second, C);
    }
  }

  static void widenInto(Env &Dst, const Env &Prev) {
    for (auto &[Name, C] : Dst) {
      auto It = Prev.find(Name);
      if (It != Prev.end())
        C.Val = widen(It->second.Val, C.Val);
    }
  }

  static bool envEqual(const Env &A, const Env &B) {
    if (A.size() != B.size())
      return false;
    for (const auto &[Name, C] : A) {
      auto It = B.find(Name);
      if (It == B.end())
        return false;
      const Cell &D = It->second;
      if (C.Val != D.Val || C.MaybeUnassigned != D.MaybeUnassigned ||
          C.EverAssigned != D.EverAssigned)
        return false;
    }
    return true;
  }

  //===--- Entry -----------------------------------------------------------===//

  void runAll() {
    seedEnv();
    for (const StmtPtr &S : P.getBody().getStmts()) {
      flowStmt(*S);
      if (Done)
        break;
    }
    for (const std::string &Ret : P.getReturns()) {
      // Returning a variable reads it: a maybe-unassigned return slot
      // is an unbound read like any other (the interpreter aborts the
      // run), unless no run reaches the program end at all.
      Cell &C = lookup(Ret);
      C.EverRead = true;
      if (!Done && !Unreachable && C.MaybeUnassigned &&
          !C.ReadMaybeUnassigned) {
        C.ReadMaybeUnassigned = true;
        C.FirstBadRead = SourceLoc();
      }
    }
    if (!Collect)
      return;
    for (const LocalDecl &D : P.getDecls()) {
      auto It = E.find(D.Name);
      if (It == E.end())
        continue;
      const Cell &C = It->second;
      VarFacts F;
      F.Name = D.Name;
      F.Kind = D.Kind;
      F.IsArray = C.IsArray;
      F.EverRead = C.EverRead;
      F.EverAssigned = C.EverAssigned;
      F.ReadMaybeUnassigned = C.ReadMaybeUnassigned;
      F.FirstBadRead = C.FirstBadRead;
      Res.Vars.push_back(std::move(F));
      if (!C.IsArray)
        Res.FinalEnv.emplace(D.Name, C.Val);
    }
  }
};

} // namespace

std::string AnalysisResult::rejectReason() const {
  if (!Rejected)
    return "";
  std::ostringstream OS;
  OS << distKindName(RejectDist) << " " << distParamName(RejectDist, RejectArg)
     << " in " << RejectValue.str();
  return OS.str();
}

ProgramAnalysis::ProgramAnalysis(const Program &P, const InputBindings *Inputs)
    : Prog(P), Inputs(Inputs) {}

AnalysisResult
ProgramAnalysis::analyzeCandidate(const std::vector<ExprPtr> &Completions) const {
  return run(&Completions, /*Collect=*/false, /*StopOnReject=*/true);
}

AnalysisResult
ProgramAnalysis::analyzeFull(const std::vector<ExprPtr> *Completions) const {
  return run(Completions, /*Collect=*/true, /*StopOnReject=*/false);
}

AnalysisResult ProgramAnalysis::run(const std::vector<ExprPtr> *Completions,
                                    bool Collect, bool StopOnReject) const {
  Walker W(Prog, Inputs, Completions, Collect, StopOnReject);
  W.runAll();
  return std::move(W.Res);
}

AbstractValue psketch::topOfKind(ScalarKind K) {
  switch (K) {
  case ScalarKind::Real:
    return AbstractValue::topReal();
  case ScalarKind::Bool:
    return AbstractValue::topBool();
  case ScalarKind::Int: {
    AbstractValue A = AbstractValue::range(-Inf, Inf);
    return A;
  }
  }
  return AbstractValue::topReal();
}

AbstractValue
psketch::evalCompletionAbstract(const Expr &Ex,
                                const std::vector<AbstractValue> &Formals) {
  switch (Ex.getKind()) {
  case Expr::Kind::Const:
    return AbstractValue::constant(cast<ConstExpr>(Ex).getValue());
  case Expr::Kind::HoleArg: {
    const auto &HA = cast<HoleArgExpr>(Ex);
    if (HA.getArgIndex() < Formals.size())
      return Formals[HA.getArgIndex()];
    return topOfKind(HA.getScalarKind());
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(Ex);
    return applyUnary(U.getOp(), evalCompletionAbstract(U.getSub(), Formals));
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(Ex);
    return applyBinary(B.getOp(), evalCompletionAbstract(B.getLHS(), Formals),
                       evalCompletionAbstract(B.getRHS(), Formals));
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(Ex);
    AbstractValue C = evalCompletionAbstract(I.getCond(), Formals);
    if (C.definitelyTrue())
      return evalCompletionAbstract(I.getThen(), Formals);
    if (C.definitelyFalse())
      return evalCompletionAbstract(I.getElse(), Formals);
    return join(evalCompletionAbstract(I.getThen(), Formals),
                evalCompletionAbstract(I.getElse(), Formals));
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(Ex);
    std::vector<AbstractValue> Args;
    Args.reserve(S.getNumArgs());
    for (unsigned I = 0, N = S.getNumArgs(); I != N; ++I)
      Args.push_back(evalCompletionAbstract(S.getArg(I), Formals));
    return Walker::drawResult(S.getDist(), Args);
  }
  case Expr::Kind::Var:
  case Expr::Kind::Index:
  case Expr::Kind::Hole:
    break; // not legal inside completions
  }
  return AbstractValue::topReal();
}
