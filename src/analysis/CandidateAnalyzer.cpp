//===- analysis/CandidateAnalyzer.cpp - STATIC-REJECT candidate verdicts -===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "analysis/CandidateAnalyzer.h"

#include <sstream>

using namespace psketch;

std::string CandidateVerdict::str() const {
  if (!Rejected)
    return "accepted";
  std::ostringstream OS;
  OS << distKindName(Dist) << " " << distParamName(Dist, ArgIndex) << " in "
     << Value.str() << " (must be " << distParamRequirement(Dist, ArgIndex)
     << ")";
  return OS.str();
}

CandidateVerdict
CandidateAnalyzer::analyze(const std::vector<ExprPtr> &Completions) const {
  AnalysisResult R = PA.analyzeCandidate(Completions);
  CandidateVerdict V;
  if (!R.Rejected)
    return V;
  V.Rejected = true;
  V.Dist = R.RejectDist;
  V.ArgIndex = R.RejectArg;
  V.Loc = R.RejectSite ? R.RejectSite->getLoc() : SourceLoc();
  V.Value = R.RejectValue;
  return V;
}

const char *psketch::distParamRequirement(DistKind D, unsigned ArgIdx) {
  switch (D) {
  case DistKind::Gaussian:
    return ArgIdx == 0 ? "any real" : "> 0";
  case DistKind::Bernoulli:
    return "in [0, 1]";
  case DistKind::Beta:
  case DistKind::Gamma:
  case DistKind::Poisson:
    return "> 0";
  }
  return "valid";
}
