//===- analysis/DependenceGraph.h - Hole→observe dependence ---------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement-level def-use/dependence analysis over programs: for every
/// hole, which observe statements, returned outputs and branch weights
/// its completion can transitively influence — through assignments,
/// probabilistic assignments, branch conditions and weak array
/// summaries (DESIGN.md §14; in the spirit of slicing for probabilistic
/// programs, Hur et al. PLDI 2014).
///
/// Dependence is tracked as a per-variable bitmask of hole ids
/// (HoleMask).  Reads of *observed* slots (dataset columns) carry no
/// dependence — the LL(.) executor turns them into DataRef nodes — but
/// an observed slot's own accumulated value does, which is exactly what
/// its log-density term depends on.  Every `if` condition is part of
/// the constraint product's mask: LL multiplies rho by
/// p·rho1 + (1−p)·rho2, and p + (1−p) is not exactly 1 in floating
/// point, so rho numerically depends on every branch condition whether
/// or not the branches observe anything.
///
/// The analysis is deliberately conservative (may over-approximate a
/// hole's reach, never under-approximate): clients use it to *skip*
/// work — factored-likelihood group caching and dead-proposal pruning
/// in synth, disconnected-observe/unreachable-statement lints — so
/// soundness means extra masks are harmless and missing masks are not.
/// Programs with 64 or more holes saturate every mask to all-ones,
/// degrading cleanly to "everything depends on everything".
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_ANALYSIS_DEPENDENCEGRAPH_H
#define PSKETCH_ANALYSIS_DEPENDENCEGRAPH_H

#include "ast/Program.h"
#include "sem/Lower.h"

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace psketch {

/// Bitmask over hole ids 0..63.  Saturated (all-ones) when the program
/// has a hole id >= 64.
using HoleMask = std::uint64_t;

/// The dependence mask of one observe statement: holes whose value can
/// reach its condition (including the conditions of enclosing
/// branches).
struct ObserveDependence {
  const ObserveStmt *Site = nullptr;
  HoleMask Mask = 0;
};

/// The dependence mask of one program output: for a raw-program build,
/// a returned variable; for a lowered build, a modeled observed column
/// (whose log-density term depends on exactly this mask).
struct OutputDependence {
  std::string Slot;
  HoleMask Mask = 0;
};

/// The hole→sink dependence summary of one program.  Build once per
/// sketch; queries are O(1) or O(sinks).
class DependenceGraph {
public:
  /// Analyzes a raw (unlowered) program: loops run to a monotone mask
  /// fixpoint (weak array summaries by base name), outputs are the
  /// returned variables in declaration order.  \p ObservedColumns,
  /// when non-null, names the dataset columns — reads of those
  /// variables carry no dependence, matching the lowered semantics.
  static DependenceGraph build(const Program &P,
                               const std::set<std::string> *ObservedColumns =
                                   nullptr);

  /// Analyzes a lowered program against the observed-slot map of a
  /// dataset (see observedSlots in likelihood/Likelihood.h): outputs
  /// are the modeled observed slots in column-ascending order — the
  /// exact term order of the factored likelihood.
  static DependenceGraph
  build(const LoweredProgram &LP,
        const std::unordered_map<std::string, unsigned> &Observed);

  /// Bit of hole \p H under this graph's saturation state.
  HoleMask holeBit(unsigned H) const {
    return (Saturated || H >= 64) ? ~HoleMask(0) : HoleMask(1) << H;
  }

  /// Number of holes (max hole id + 1; 0 for a hole-free program).
  unsigned numHoles() const { return NumHoles; }

  /// True when a hole id >= 64 forced every mask to all-ones.
  bool saturated() const { return Saturated; }

  /// Mask with one bit per hole of the program.
  HoleMask allHolesMask() const {
    if (NumHoles == 0)
      return 0;
    if (Saturated || NumHoles >= 64)
      return ~HoleMask(0);
    return (HoleMask(1) << NumHoles) - 1;
  }

  /// Holes reaching the constraint product rho: every observe condition
  /// and every branch condition (see file comment).
  HoleMask rhoMask() const { return Rho; }

  /// Observe statements in first-encounter order.
  const std::vector<ObserveDependence> &observes() const { return Observes; }

  /// Program outputs (flavor-dependent; see the build overloads).
  const std::vector<OutputDependence> &outputs() const { return Outputs; }

  /// Final dependence mask of variable/slot \p Name (its accumulated
  /// value at program end); 0 when never assigned.  Not cut for
  /// observed slots — this is the mask their density term carries.
  HoleMask slotMask(const std::string &Name) const {
    auto It = FinalEnv.find(Name);
    return It == FinalEnv.end() ? 0 : It->second;
  }

  /// Holes that can influence rho, an observe, or an output.
  HoleMask liveMask() const {
    HoleMask M = Rho;
    for (const ObserveDependence &O : Observes)
      M |= O.Mask;
    for (const OutputDependence &O : Outputs)
      M |= O.Mask;
    return M & allHolesMask();
  }

  /// Holes that provably influence nothing the score depends on:
  /// mutating only these cannot change any candidate's likelihood.
  HoleMask deadMask() const { return allHolesMask() & ~liveMask(); }

private:
  unsigned NumHoles = 0;
  bool Saturated = false;
  HoleMask Rho = 0;
  std::vector<ObserveDependence> Observes;
  std::vector<OutputDependence> Outputs;
  std::unordered_map<std::string, HoleMask> FinalEnv;
};

} // namespace psketch

#endif // PSKETCH_ANALYSIS_DEPENDENCEGRAPH_H
