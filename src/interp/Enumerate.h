//===- interp/Enumerate.h - Exact enumeration for finite programs ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact inference for programs whose only randomness is Bernoulli
/// draws (Pearl-style Boolean networks such as Burglary, or the
/// examination chains of the Clickthrough models): enumerates every
/// outcome of every draw, weighting paths by their probabilities and
/// zeroing paths that violate observe statements.  Yields
///
///  * the exact posterior over slot valuations (normalized),
///  * exact marginals Pr(slot = true | observes), and
///  * the exact log-likelihood of a data row over the returned slots,
///
/// which the tests use as ground truth for the MoG likelihood and the
/// rejection sampler on Boolean benchmarks.  Programs with continuous
/// draws are rejected (nullopt) — that is what the MoG machinery is
/// for.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_INTERP_ENUMERATE_H
#define PSKETCH_INTERP_ENUMERATE_H

#include "likelihood/Dataset.h"
#include "sem/Lower.h"

#include <map>
#include <optional>
#include <vector>

namespace psketch {

/// The exact joint distribution over final slot valuations of a
/// finite probabilistic program, conditioned on its observes.
class ExactDistribution {
public:
  /// One valuation and its (normalized posterior) probability.
  struct Outcome {
    std::vector<double> Slots;
    double Probability = 0;
  };

  /// Enumerates \p LP exactly.  Returns nullopt when the program draws
  /// from a continuous distribution, the enumeration exceeds
  /// \p MaxPaths paths, or every path violates the observes.
  static std::optional<ExactDistribution>
  enumerate(const LoweredProgram &LP, size_t MaxPaths = 1 << 20);

  const std::vector<Outcome> &outcomes() const { return Outcomes; }

  /// Probability that every observe holds (the model evidence before
  /// normalization).
  double evidence() const { return Evidence; }

  /// Exact posterior marginal Pr(slot != 0).
  double marginalTrue(const std::string &Slot) const;

  /// Exact posterior expectation of a slot.
  double mean(const std::string &Slot) const;

  /// Exact log probability of observing \p Row for the given columns
  /// (a dataset row over a subset of slots).
  double logProbabilityOfRow(const std::vector<std::string> &Columns,
                             const std::vector<double> &Row) const;

  /// Exact log-likelihood of a whole dataset whose columns are slots.
  double logLikelihood(const Dataset &Data) const;

private:
  explicit ExactDistribution(const LoweredProgram &LP) : LP(LP) {}

  const LoweredProgram &LP;
  std::vector<Outcome> Outcomes;
  double Evidence = 0;
};

} // namespace psketch

#endif // PSKETCH_INTERP_ENUMERATE_H
