//===- interp/Enumerate.cpp - Exact enumeration for finite programs -------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Enumerate.h"

#include "support/Casting.h"
#include "support/Special.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace psketch;

namespace {

/// The distribution of one expression's value given a fixed
/// environment: value -> probability.  Exact because every SampleExpr
/// occurrence is an independent draw.
using ValueDist = std::map<double, double>;

class Enumerator {
public:
  Enumerator(const LoweredProgram &LP, size_t MaxPaths)
      : LP(LP), MaxPaths(MaxPaths) {}

  bool run(std::map<std::vector<double>, double> &OutcomeWeights) {
    std::vector<double> Env(LP.Slots.size(), 0.0);
    exec(LP.Stmts, 0, Env, 1.0, OutcomeWeights);
    return !Failed;
  }

private:
  /// Weighted values of \p E under \p Env; empty on failure.
  ValueDist evalExpr(const Expr &E, const std::vector<double> &Env) {
    ValueDist Out;
    if (Failed)
      return Out;
    switch (E.getKind()) {
    case Expr::Kind::Const:
      Out[cast<ConstExpr>(E).getValue()] = 1.0;
      return Out;
    case Expr::Kind::Var: {
      unsigned Id = LP.slotId(cast<VarExpr>(E).getName());
      if (Id == ~0u) {
        Failed = true;
        return Out;
      }
      Out[Env[Id]] = 1.0;
      return Out;
    }
    case Expr::Kind::Unary: {
      const auto &U = cast<UnaryExpr>(E);
      for (auto [V, P] : evalExpr(U.getSub(), Env)) {
        double R = U.getOp() == UnaryOp::Not ? (V != 0.0 ? 0.0 : 1.0) : -V;
        Out[R] += P;
      }
      return Out;
    }
    case Expr::Kind::Binary: {
      const auto &B = cast<BinaryExpr>(E);
      ValueDist L = evalExpr(B.getLHS(), Env);
      for (auto [LV, LP2] : L) {
        // Short-circuit semantics match the forward sampler.
        if (B.getOp() == BinaryOp::And && LV == 0.0) {
          Out[0.0] += LP2;
          continue;
        }
        if (B.getOp() == BinaryOp::Or && LV != 0.0) {
          Out[1.0] += LP2;
          continue;
        }
        for (auto [RV, RP] : evalExpr(B.getRHS(), Env)) {
          double R = 0;
          switch (B.getOp()) {
          case BinaryOp::Add:
            R = LV + RV;
            break;
          case BinaryOp::Sub:
            R = LV - RV;
            break;
          case BinaryOp::Mul:
            R = LV * RV;
            break;
          case BinaryOp::And:
            R = (LV != 0.0 && RV != 0.0) ? 1.0 : 0.0;
            break;
          case BinaryOp::Or:
            R = (LV != 0.0 || RV != 0.0) ? 1.0 : 0.0;
            break;
          case BinaryOp::Gt:
            R = LV > RV ? 1.0 : 0.0;
            break;
          case BinaryOp::Lt:
            R = LV < RV ? 1.0 : 0.0;
            break;
          case BinaryOp::Eq:
            R = LV == RV ? 1.0 : 0.0;
            break;
          }
          Out[R] += LP2 * RP;
        }
      }
      return Out;
    }
    case Expr::Kind::Ite: {
      const auto &I = cast<IteExpr>(E);
      for (auto [CV, CP] : evalExpr(I.getCond(), Env)) {
        const Expr &Branch = CV != 0.0 ? I.getThen() : I.getElse();
        for (auto [BV, BP] : evalExpr(Branch, Env))
          Out[BV] += CP * BP;
      }
      return Out;
    }
    case Expr::Kind::Sample: {
      const auto &S = cast<SampleExpr>(E);
      if (S.getDist() != DistKind::Bernoulli) {
        Failed = true; // Continuous draw: not enumerable.
        return Out;
      }
      for (auto [PV, PP] : evalExpr(S.getArg(0), Env)) {
        double P = std::clamp(PV, 0.0, 1.0);
        Out[1.0] += PP * P;
        Out[0.0] += PP * (1.0 - P);
      }
      return Out;
    }
    case Expr::Kind::Index:
    case Expr::Kind::HoleArg:
    case Expr::Kind::Hole:
      Failed = true;
      return Out;
    }
    return Out;
  }

  void exec(const std::vector<StmtPtr> &Stmts, size_t Index,
            std::vector<double> Env, double Weight,
            std::map<std::vector<double>, double> &OutcomeWeights) {
    if (Failed || Weight == 0.0)
      return;
    if (Index == Stmts.size()) {
      if (++Paths > MaxPaths) {
        Failed = true;
        return;
      }
      OutcomeWeights[Env] += Weight;
      return;
    }
    const Stmt &S = *Stmts[Index];
    switch (S.getKind()) {
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(S);
      unsigned Id = LP.slotId(A.getTarget().Name);
      if (Id == ~0u) {
        Failed = true;
        return;
      }
      for (auto [V, P] : evalExpr(A.getValue(), Env)) {
        std::vector<double> Next = Env;
        Next[Id] = V;
        exec(Stmts, Index + 1, std::move(Next), Weight * P,
             OutcomeWeights);
      }
      return;
    }
    case Stmt::Kind::Observe: {
      const auto &O = cast<ObserveStmt>(S);
      double TrueMass = 0;
      for (auto [V, P] : evalExpr(O.getCond(), Env))
        if (V != 0.0)
          TrueMass += P;
      exec(Stmts, Index + 1, std::move(Env), Weight * TrueMass,
           OutcomeWeights);
      return;
    }
    case Stmt::Kind::If: {
      const auto &I = cast<IfStmt>(S);
      for (auto [CV, CP] : evalExpr(I.getCond(), Env)) {
        const BlockStmt &Branch = CV != 0.0 ? I.getThen() : I.getElse();
        // Run the branch, then continue with the tail; splice the
        // branch statements virtually by chaining executions.
        execBranchThenTail(Branch.getStmts(), Stmts, Index + 1, Env,
                           Weight * CP, OutcomeWeights);
      }
      return;
    }
    case Stmt::Kind::Skip:
      exec(Stmts, Index + 1, std::move(Env), Weight, OutcomeWeights);
      return;
    case Stmt::Kind::Block:
    case Stmt::Kind::For:
      Failed = true; // Not present in lowered programs.
      return;
    }
  }

  /// Executes \p Branch to completion, then resumes \p Tail at
  /// \p TailIndex for every branch-final state.
  void execBranchThenTail(const std::vector<StmtPtr> &Branch,
                          const std::vector<StmtPtr> &Tail,
                          size_t TailIndex, const std::vector<double> &Env,
                          double Weight,
                          std::map<std::vector<double>, double> &Out) {
    std::map<std::vector<double>, double> BranchOutcomes;
    exec(Branch, 0, Env, Weight, BranchOutcomes);
    if (Failed)
      return;
    for (auto &[BranchEnv, BranchWeight] : BranchOutcomes)
      exec(Tail, TailIndex, BranchEnv, BranchWeight, Out);
  }

  const LoweredProgram &LP;
  size_t MaxPaths;
  size_t Paths = 0;
  bool Failed = false;
};

} // namespace

std::optional<ExactDistribution>
ExactDistribution::enumerate(const LoweredProgram &LP, size_t MaxPaths) {
  Enumerator E(LP, MaxPaths);
  std::map<std::vector<double>, double> OutcomeWeights;
  if (!E.run(OutcomeWeights))
    return std::nullopt;
  ExactDistribution D(LP);
  for (auto &[Env, Weight] : OutcomeWeights)
    D.Evidence += Weight;
  if (D.Evidence <= 0)
    return std::nullopt; // Every path violates the observes.
  for (auto &[Env, Weight] : OutcomeWeights)
    D.Outcomes.push_back({Env, Weight / D.Evidence});
  return D;
}

double ExactDistribution::marginalTrue(const std::string &Slot) const {
  unsigned Id = LP.slotId(Slot);
  if (Id == ~0u)
    return 0;
  double P = 0;
  for (const Outcome &O : Outcomes)
    if (O.Slots[Id] != 0.0)
      P += O.Probability;
  return P;
}

double ExactDistribution::mean(const std::string &Slot) const {
  unsigned Id = LP.slotId(Slot);
  if (Id == ~0u)
    return 0;
  double M = 0;
  for (const Outcome &O : Outcomes)
    M += O.Slots[Id] * O.Probability;
  return M;
}

double ExactDistribution::logProbabilityOfRow(
    const std::vector<std::string> &Columns,
    const std::vector<double> &Row) const {
  std::vector<unsigned> Ids;
  Ids.reserve(Columns.size());
  for (const std::string &Col : Columns)
    Ids.push_back(LP.slotId(Col));
  double P = 0;
  for (const Outcome &O : Outcomes) {
    bool Match = true;
    for (size_t I = 0; I != Ids.size() && Match; ++I)
      Match = Ids[I] != ~0u && O.Slots[Ids[I]] == Row[I];
    if (Match)
      P += O.Probability;
  }
  return std::log(std::max(P, TinyProb));
}

double ExactDistribution::logLikelihood(const Dataset &Data) const {
  double Total = 0;
  for (const std::vector<double> &Row : Data.rows())
    Total += logProbabilityOfRow(Data.columns(), Row);
  return Total;
}
