//===- interp/Interp.cpp - Concrete execution of probabilistic programs --===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "support/Casting.h"

#include <cmath>

using namespace psketch;

std::optional<double>
ForwardSampler::evalExpr(const Expr &E, const std::vector<double> &Slots,
                         const std::vector<bool> &Defined, Rng &R) const {
  switch (E.getKind()) {
  case Expr::Kind::Const:
    return cast<ConstExpr>(E).getValue();
  case Expr::Kind::Var: {
    unsigned Id = LP.slotId(cast<VarExpr>(E).getName());
    if (Id == ~0u || !Defined[Id])
      return std::nullopt;
    return Slots[Id];
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    auto Sub = evalExpr(U.getSub(), Slots, Defined, R);
    if (!Sub)
      return std::nullopt;
    return U.getOp() == UnaryOp::Not ? (*Sub != 0.0 ? 0.0 : 1.0) : -*Sub;
  }
  case Expr::Kind::Binary: {
    const auto &Bin = cast<BinaryExpr>(E);
    auto L = evalExpr(Bin.getLHS(), Slots, Defined, R);
    if (!L)
      return std::nullopt;
    // Short-circuit keeps draw counts deterministic per path.
    if (Bin.getOp() == BinaryOp::And && *L == 0.0)
      return 0.0;
    if (Bin.getOp() == BinaryOp::Or && *L != 0.0)
      return 1.0;
    auto Rhs = evalExpr(Bin.getRHS(), Slots, Defined, R);
    if (!Rhs)
      return std::nullopt;
    switch (Bin.getOp()) {
    case BinaryOp::Add:
      return *L + *Rhs;
    case BinaryOp::Sub:
      return *L - *Rhs;
    case BinaryOp::Mul:
      return *L * *Rhs;
    case BinaryOp::And:
      return (*L != 0.0 && *Rhs != 0.0) ? 1.0 : 0.0;
    case BinaryOp::Or:
      return (*L != 0.0 || *Rhs != 0.0) ? 1.0 : 0.0;
    case BinaryOp::Gt:
      return *L > *Rhs ? 1.0 : 0.0;
    case BinaryOp::Lt:
      return *L < *Rhs ? 1.0 : 0.0;
    case BinaryOp::Eq:
      return *L == *Rhs ? 1.0 : 0.0;
    }
    return std::nullopt;
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(E);
    auto C = evalExpr(I.getCond(), Slots, Defined, R);
    if (!C)
      return std::nullopt;
    return evalExpr(*C != 0.0 ? I.getThen() : I.getElse(), Slots, Defined,
                    R);
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(E);
    std::vector<double> Args;
    Args.reserve(S.getNumArgs());
    for (unsigned I = 0, N = S.getNumArgs(); I != N; ++I) {
      auto A = evalExpr(S.getArg(I), Slots, Defined, R);
      if (!A)
        return std::nullopt;
      Args.push_back(*A);
    }
    switch (S.getDist()) {
    case DistKind::Gaussian:
      return R.gaussian(Args[0], std::fabs(Args[1]));
    case DistKind::Bernoulli:
      return R.bernoulli(Args[0]) ? 1.0 : 0.0;
    case DistKind::Beta:
      if (!(Args[0] > 0) || !(Args[1] > 0))
        return std::nullopt;
      return R.beta(Args[0], Args[1]);
    case DistKind::Gamma:
      if (!(Args[0] > 0) || !(Args[1] > 0))
        return std::nullopt;
      return R.gamma(Args[0], Args[1]);
    case DistKind::Poisson:
      if (Args[0] < 0)
        return std::nullopt;
      return double(R.poisson(Args[0]));
    }
    return std::nullopt;
  }
  case Expr::Kind::Index:
  case Expr::Kind::HoleArg:
  case Expr::Kind::Hole:
    return std::nullopt;
  }
  return std::nullopt;
}

bool ForwardSampler::execStmts(const std::vector<StmtPtr> &Stmts,
                               std::vector<double> &Slots,
                               std::vector<bool> &Defined, Rng &R) const {
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(*S);
      unsigned Id = LP.slotId(A.getTarget().Name);
      if (Id == ~0u)
        return false;
      auto V = evalExpr(A.getValue(), Slots, Defined, R);
      if (!V)
        return false;
      Slots[Id] = *V;
      Defined[Id] = true;
      break;
    }
    case Stmt::Kind::Observe: {
      auto C = evalExpr(cast<ObserveStmt>(*S).getCond(), Slots, Defined, R);
      if (!C || *C == 0.0)
        return false; // Invalid run.
      break;
    }
    case Stmt::Kind::If: {
      const auto &I = cast<IfStmt>(*S);
      auto C = evalExpr(I.getCond(), Slots, Defined, R);
      if (!C)
        return false;
      const BlockStmt &Branch = *C != 0.0 ? I.getThen() : I.getElse();
      if (!execStmts(Branch.getStmts(), Slots, Defined, R))
        return false;
      break;
    }
    case Stmt::Kind::Skip:
      break;
    case Stmt::Kind::Block:
    case Stmt::Kind::For:
      return false; // Not present in lowered programs.
    }
  }
  return true;
}

std::optional<std::vector<double>> ForwardSampler::runOnce(Rng &R) const {
  std::vector<double> Slots(LP.Slots.size(), 0.0);
  std::vector<bool> Defined(LP.Slots.size(), false);
  if (!execStmts(LP.Stmts, Slots, Defined, R))
    return std::nullopt;
  return Slots;
}

double ForwardSampler::acceptanceRate(Rng &R, size_t Attempts) const {
  if (Attempts == 0)
    return 0.0;
  size_t Accepted = 0;
  for (size_t I = 0; I != Attempts; ++I)
    if (runOnce(R))
      ++Accepted;
  return double(Accepted) / double(Attempts);
}

Dataset psketch::generateDataset(const LoweredProgram &LP, size_t NumRows,
                                 Rng &R, size_t MaxAttempts) {
  ForwardSampler Sampler(LP);
  Dataset Data(LP.ReturnSlots);
  std::vector<unsigned> ReturnIds;
  ReturnIds.reserve(LP.ReturnSlots.size());
  for (const std::string &Slot : LP.ReturnSlots)
    ReturnIds.push_back(LP.slotId(Slot));
  for (size_t Attempt = 0; Attempt < MaxAttempts && Data.numRows() < NumRows;
       ++Attempt) {
    auto Slots = Sampler.runOnce(R);
    if (!Slots)
      continue;
    std::vector<double> Row;
    Row.reserve(ReturnIds.size());
    for (unsigned Id : ReturnIds)
      Row.push_back((*Slots)[Id]);
    Data.addRow(std::move(Row));
  }
  return Data;
}

std::vector<double> psketch::posteriorSamples(const LoweredProgram &LP,
                                              const std::string &Slot,
                                              size_t Count, Rng &R,
                                              size_t MaxAttempts) {
  ForwardSampler Sampler(LP);
  unsigned Id = LP.slotId(Slot);
  std::vector<double> Samples;
  if (Id == ~0u)
    return Samples;
  for (size_t Attempt = 0; Attempt < MaxAttempts && Samples.size() < Count;
       ++Attempt) {
    auto Slots = Sampler.runOnce(R);
    if (Slots)
      Samples.push_back((*Slots)[Id]);
  }
  return Samples;
}
