//===- interp/Interp.h - Concrete execution of probabilistic programs ----===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete (sampling) semantics of lowered programs: a forward sampler
/// that draws probabilistic assignments from an Rng and classifies runs
/// as valid/invalid by their observe statements (Section 2's semantics).
/// On top of it:
///
///  * dataset generation — "we generated data sets by running the
///    program multiple times and collecting the outputs" (Section 5);
///  * rejection-sampling posterior estimation for the Figure 7
///    marginal-distribution comparison; and
///  * empirical mean/stddev summaries used by tests to validate the
///    MoG approximation against ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_INTERP_INTERP_H
#define PSKETCH_INTERP_INTERP_H

#include "likelihood/Dataset.h"
#include "sem/Lower.h"
#include "support/Rng.h"

#include <optional>
#include <vector>

namespace psketch {

/// Executes lowered programs concretely.
class ForwardSampler {
public:
  explicit ForwardSampler(const LoweredProgram &LP) : LP(LP) {}

  /// Runs the program once with draws from \p R.  Returns the final
  /// value of every slot for a valid run, or nullopt when an observe
  /// failed (invalid run) or a slot was read before assignment.
  std::optional<std::vector<double>> runOnce(Rng &R) const;

  /// Valid-run acceptance rate over \p Attempts runs (diagnostics).
  double acceptanceRate(Rng &R, size_t Attempts) const;

private:
  bool execStmts(const std::vector<StmtPtr> &Stmts,
                 std::vector<double> &Slots, std::vector<bool> &Defined,
                 Rng &R) const;
  std::optional<double> evalExpr(const Expr &E,
                                 const std::vector<double> &Slots,
                                 const std::vector<bool> &Defined,
                                 Rng &R) const;

  const LoweredProgram &LP;
};

/// Collects \p NumRows valid runs of \p LP and tabulates the returned
/// slots — the paper's dataset-generation procedure.  Gives up (and
/// returns a short dataset) after \p MaxAttempts runs.
Dataset generateDataset(const LoweredProgram &LP, size_t NumRows, Rng &R,
                        size_t MaxAttempts = 1000000);

/// Posterior samples of one slot from valid runs (rejection sampling).
std::vector<double> posteriorSamples(const LoweredProgram &LP,
                                     const std::string &Slot, size_t Count,
                                     Rng &R, size_t MaxAttempts = 10000000);

} // namespace psketch

#endif // PSKETCH_INTERP_INTERP_H
