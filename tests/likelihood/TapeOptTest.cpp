//===- tests/likelihood/TapeOptTest.cpp - Tape optimization tests ---------===//
//
// Differential tests of the likelihood-pipeline optimizations
// (DESIGN.md §9): the simplified + fused tape and the column-cache
// incremental evaluator must produce results bit-identical to the
// unoptimized per-row interpreter, across rows containing NaN, ±Inf
// and ±0.  Also unit tests of ColumnCache (LRU, budget, counters) and
// of structural SubtreeKey builder-independence.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Tape.h"

#include "likelihood/ColumnCache.h"
#include "likelihood/ColumnarDataset.h"
#include "likelihood/Dataset.h"
#include "support/Rng.h"
#include "symbolic/Simplify.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>

using namespace psketch;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();
const double NaN = std::numeric_limits<double>::quiet_NaN();

uint64_t bits(double X) {
  uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  return B;
}

/// Bitwise equality with the documented NaN tolerance (non-NaN results
/// exact including zero signs; NaN results may differ in sign/payload).
::testing::AssertionResult sameValue(double X, double Y) {
  if (std::isnan(X) && std::isnan(Y))
    return ::testing::AssertionSuccess();
  if (bits(X) == bits(Y))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << X << " (0x" << std::hex << bits(X) << ") vs " << Y << " (0x"
         << bits(Y) << ")";
}

/// A two-column dataset mixing ordinary magnitudes with IEEE special
/// values, deterministic per \p Seed.
ColumnarDataset specialDataset(size_t Rows, uint64_t Seed) {
  const double Specials[] = {0.0,  -0.0, 1.0, -1.0, 0.5,  -2.5,
                             3.25, Inf,  -Inf, NaN, 1e300, 1e-300};
  Rng R(Seed);
  Dataset D({"x", "y"});
  for (size_t I = 0; I < Rows; ++I)
    D.addRow({Specials[R.index(12)], Specials[R.index(12)]});
  return ColumnarDataset(D);
}

/// A random unfolded DAG over slots 0 and 1, built with rawNode so the
/// smart factories cannot pre-simplify the patterns under test.
NumId randomDag(NumExprBuilder &B, Rng &R, int Nodes) {
  std::vector<NumId> Pool = {B.dataRef(0),      B.dataRef(1),
                             B.constant(1.0),   B.constant(0.0),
                             B.constant(-0.0),  B.constant(2.5),
                             B.constant(-0.75), B.constant(3.0)};
  for (int I = 0; I < Nodes; ++I) {
    NumId A = Pool[R.index(Pool.size())];
    NumId C = Pool[R.index(Pool.size())];
    NumOp Op = NumOp(2 + R.index(14)); // Add .. Eq.
    Pool.push_back(numOpIsBinary(Op) ? B.rawNode(Op, 0, A, C)
                                     : B.rawNode(Op, 0, A, 0));
  }
  return Pool.back();
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential fuzz: optimized pipeline vs unoptimized reference.
//===----------------------------------------------------------------------===//

TEST(TapeOptTest, SimplifiedFusedTapeMatchesUnoptimizedBitwise) {
  Rng R(77);
  ColumnarDataset Cols = specialDataset(64, 99);
  std::vector<double> RefScratch, EvalScratch, BatchScratch;
  for (int Trial = 0; Trial < 100; ++Trial) {
    NumExprBuilder B;
    NumId Root = randomDag(B, R, 30);
    NumId Simp = simplifyNumExpr(B, Root);

    TapeOptions Plain;
    Plain.Fuse = false;
    Tape Ref(B, Root, Plain);     // Unsimplified, unfused.
    Tape Opt(B, Simp, {});        // Simplified + fused (defaults).
    EXPECT_LE(Opt.size(), Ref.size());

    std::vector<double> Batch(Cols.numRows());
    Opt.evalBatch(Cols, 0, Cols.numRows(), Batch.data(), BatchScratch);
    for (size_t Row = 0; Row < Cols.numRows(); ++Row) {
      std::vector<double> RowVals = {Cols.at(Row, 0), Cols.at(Row, 1)};
      const double Want = Ref.eval(RowVals, RefScratch);
      EXPECT_TRUE(sameValue(Opt.eval(RowVals, EvalScratch), Want))
          << "trial " << Trial << " row " << Row << ": " << B.str(Root);
      EXPECT_TRUE(sameValue(Batch[Row], Want))
          << "trial " << Trial << " batch row " << Row << ": "
          << B.str(Root);
    }
  }
}

TEST(TapeOptTest, IncrementalEvalIsBitIdenticalColdAndHot) {
  Rng R(31);
  ColumnarDataset Cols = specialDataset(128, 5);
  std::vector<double> BatchScratch;
  IncrementalScratch Inc;
  ColumnCache Cache(size_t(8) << 20);
  for (int Trial = 0; Trial < 50; ++Trial) {
    NumExprBuilder B;
    NumId Root = randomDag(B, R, 25);
    Tape T(B, simplifyNumExpr(B, Root), {});

    std::vector<double> Want(Cols.numRows()), Got(Cols.numRows());
    T.evalBatch(Cols, 0, Cols.numRows(), Want.data(), BatchScratch);

    // Cold pass (records admission fingerprints), warm pass (second
    // touch: inserts), hot pass (served from cache): all must be
    // bitwise equal to the batch evaluator, NaN payloads included.
    for (int Pass = 0; Pass < 3; ++Pass) {
      T.evalIncremental(Cols, 0, Cols.numRows(), Got.data(), Cache, Inc);
      EXPECT_EQ(std::memcmp(Got.data(), Want.data(),
                            Want.size() * sizeof(double)),
                0)
          << "trial " << Trial << " pass " << Pass;
    }
  }
  EXPECT_GT(Cache.hits(), 0u);
  EXPECT_GT(Cache.inserts(), 0u);
}

TEST(TapeOptTest, IncrementalReusesSubtreesAcrossCandidates) {
  // Two candidates differing in one hole parameter, as hole-local MH
  // proposals produce: the shared Gaussian term's columns must be
  // served from cache, and results must still match evalBatch exactly.
  Dataset D({"x", "y"});
  Rng R(12);
  for (int I = 0; I < 300; ++I)
    D.addRow({R.gaussian(1.0, 2.0), R.gaussian(-0.5, 1.0)});
  ColumnarDataset Cols(D);

  auto Build = [](NumExprBuilder &B, double Mu2) {
    NumId Shared = B.gaussianLogPdf(B.dataRef(0), B.constant(1.0),
                                    B.constant(2.0));
    NumId Varies = B.gaussianLogPdf(B.dataRef(1), B.constant(Mu2),
                                    B.constant(1.0));
    return B.add(Shared, Varies);
  };

  ColumnCache Cache(size_t(8) << 20);
  IncrementalScratch Inc;
  std::vector<double> BatchScratch;
  double LastHitRate = 0;
  for (double Mu2 : {-0.5, -0.4, -0.3}) {
    NumExprBuilder B;
    NumId Root = Build(B, Mu2);
    Tape T(B, simplifyNumExpr(B, Root), {});
    std::vector<double> Want(Cols.numRows()), Got(Cols.numRows());
    T.evalBatch(Cols, 0, Cols.numRows(), Want.data(), BatchScratch);
    T.evalIncremental(Cols, 0, Cols.numRows(), Got.data(), Cache, Inc);
    EXPECT_EQ(std::memcmp(Got.data(), Want.data(),
                          Want.size() * sizeof(double)),
              0)
        << "Mu2 = " << Mu2;
    LastHitRate = Cache.hitRate();
  }
  // The second and third candidates share the slot-0 Gaussian with the
  // first, so the cache must have served real hits.
  EXPECT_GT(Cache.hits(), 0u);
  EXPECT_GT(LastHitRate, 0.0);
}

//===----------------------------------------------------------------------===//
// Structural keys.
//===----------------------------------------------------------------------===//

TEST(TapeOptTest, SubtreeKeysAreBuilderIndependent) {
  // The same expression built in two builders — one polluted with junk
  // nodes so every NumId differs — must produce identical root keys.
  NumExprBuilder B1;
  NumId R1 = B1.gaussianLogPdf(B1.dataRef(0), B1.constant(0.5),
                               B1.constant(1.5));
  NumExprBuilder B2;
  for (int I = 0; I < 10; ++I)
    B2.rawNode(NumOp::Add, 0, B2.constant(double(I)), B2.dataRef(3));
  NumId R2 = B2.gaussianLogPdf(B2.dataRef(0), B2.constant(0.5),
                               B2.constant(1.5));

  Tape T1(B1, R1, {}), T2(B2, R2, {});
  ASSERT_EQ(T1.size(), T2.size());
  EXPECT_TRUE(T1.key(T1.size() - 1) == T2.key(T2.size() - 1));
}

TEST(TapeOptTest, SubtreeKeysDistinguishOperandOrderAndConstants) {
  NumExprBuilder B;
  NumId X = B.dataRef(0), Y = B.dataRef(1);
  Tape Txy(B, B.rawNode(NumOp::Sub, 0, X, Y), {});
  Tape Tyx(B, B.rawNode(NumOp::Sub, 0, Y, X), {});
  EXPECT_FALSE(Txy.key(Txy.size() - 1) == Tyx.key(Tyx.size() - 1));

  Tape Ta(B, B.rawNode(NumOp::Add, 0, X, B.constant(1.0)), {});
  Tape Tb(B, B.rawNode(NumOp::Add, 0, X, B.constant(2.0)), {});
  EXPECT_FALSE(Ta.key(Ta.size() - 1) == Tb.key(Tb.size() - 1));
}

TEST(TapeOptTest, FusedInstructionKeepsConsumersKey) {
  // Fusion must not change an instruction's structural identity, or the
  // column cache would miss (or worse, mismatch) across fusion choices.
  NumExprBuilder B;
  NumId Root = B.rawNode(
      NumOp::Add, 0,
      B.rawNode(NumOp::Mul, 0, B.dataRef(0), B.dataRef(1)),
      B.dataRef(0));
  TapeOptions NoFuse;
  NoFuse.Fuse = false;
  Tape Plain(B, Root, NoFuse);
  Tape Fused(B, Root, {});
  ASSERT_GT(Fused.numFused(), 0u);
  EXPECT_LT(Fused.size(), Plain.size());
  EXPECT_TRUE(Fused.key(Fused.size() - 1) == Plain.key(Plain.size() - 1));
}

//===----------------------------------------------------------------------===//
// Fusion patterns.
//===----------------------------------------------------------------------===//

TEST(TapeOptTest, GaussianLogPdfTapeFusesResidualChain) {
  NumExprBuilder B;
  NumId Root =
      B.gaussianLogPdf(B.dataRef(0), B.dataRef(1), B.constant(2.0));
  TapeOptions NoFuse;
  NoFuse.Fuse = false;
  Tape Plain(B, Root, NoFuse);
  Tape Fused(B, Root, {});
  EXPECT_GT(Fused.numFused(), 0u);
  EXPECT_EQ(Fused.size(), Plain.size() - Fused.numFused());

  bool SawFused = false;
  for (size_t I = 0; I < Fused.size(); ++I)
    SawFused |= Fused.instruction(I).Op >= TapeOp::MulAdd;
  EXPECT_TRUE(SawFused);

  // And fusion stays bit-exact on real data.
  Dataset D({"x", "mu"});
  Rng R(8);
  for (int I = 0; I < 100; ++I)
    D.addRow({R.gaussian(0, 3), R.gaussian(0, 1)});
  ColumnarDataset Cols(D);
  std::vector<double> A(Cols.numRows()), C(Cols.numRows()), S1, S2;
  Plain.evalBatch(Cols, 0, Cols.numRows(), A.data(), S1);
  Fused.evalBatch(Cols, 0, Cols.numRows(), C.data(), S2);
  EXPECT_EQ(std::memcmp(A.data(), C.data(), A.size() * sizeof(double)), 0);
}

TEST(TapeOptTest, MultiUseProducerIsNotFused) {
  // mul(x, y) feeding two consumers must stay a separate instruction:
  // fusing it into either would duplicate the multiply.
  NumExprBuilder B;
  NumId M = B.rawNode(NumOp::Mul, 0, B.dataRef(0), B.dataRef(1));
  NumId Root = B.rawNode(NumOp::Add, 0,
                         B.rawNode(NumOp::Add, 0, M, B.dataRef(0)), M);
  Tape T(B, Root, {});
  size_t Muls = 0;
  for (size_t I = 0; I < T.size(); ++I)
    Muls += T.instruction(I).Op == TapeOp::Mul;
  EXPECT_EQ(Muls, 1u);
}

//===----------------------------------------------------------------------===//
// ColumnCache unit tests.
//===----------------------------------------------------------------------===//

namespace {
ColumnCache::ColumnPtr makeColumn(size_t N, double Fill) {
  return std::make_shared<std::vector<double>>(N, Fill);
}
} // namespace

TEST(ColumnCacheTest, LruEvictionUnderByteBudget) {
  // Budget fits exactly two 256-row columns.
  ColumnCache Cache(2 * 256 * sizeof(double));
  SubtreeKey K1 = SubtreeKey::leaf(1, 0), K2 = SubtreeKey::leaf(2, 0),
             K3 = SubtreeKey::leaf(3, 0);
  Cache.insert(K1, 0, makeColumn(256, 1.0));
  Cache.insert(K2, 0, makeColumn(256, 2.0));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 0u);

  // Touch K1 so K2 becomes the LRU victim.
  EXPECT_NE(Cache.lookup(K1, 0), nullptr);
  Cache.insert(K3, 0, makeColumn(256, 3.0));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_NE(Cache.lookup(K1, 0), nullptr);
  EXPECT_EQ(Cache.lookup(K2, 0), nullptr);
  EXPECT_NE(Cache.lookup(K3, 0), nullptr);
  EXPECT_LE(Cache.bytes(), Cache.byteBudget());
}

TEST(ColumnCacheTest, BlockIndexIsPartOfTheKey) {
  ColumnCache Cache(size_t(1) << 20);
  SubtreeKey K = SubtreeKey::leaf(7, 7);
  Cache.insert(K, 0, makeColumn(16, 1.0));
  Cache.insert(K, 256, makeColumn(16, 2.0));
  auto B0 = Cache.lookup(K, 0);
  auto B1 = Cache.lookup(K, 256);
  ASSERT_NE(B0, nullptr);
  ASSERT_NE(B1, nullptr);
  EXPECT_DOUBLE_EQ((*B0)[0], 1.0);
  EXPECT_DOUBLE_EQ((*B1)[0], 2.0);
  EXPECT_EQ(Cache.lookup(K, 512), nullptr);
}

TEST(ColumnCacheTest, ZeroBudgetDisablesCaching) {
  ColumnCache Cache(0);
  SubtreeKey K = SubtreeKey::leaf(1, 1);
  Cache.insert(K, 0, makeColumn(8, 1.0));
  EXPECT_EQ(Cache.lookup(K, 0), nullptr);
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(ColumnCacheTest, EvictedColumnSurvivesWhilePinned) {
  // An in-flight evaluation holding a ColumnPtr must keep its data
  // valid even after the entry is evicted.
  ColumnCache Cache(256 * sizeof(double));
  SubtreeKey K1 = SubtreeKey::leaf(1, 0), K2 = SubtreeKey::leaf(2, 0);
  Cache.insert(K1, 0, makeColumn(256, 42.0));
  ColumnCache::ColumnPtr Pinned = Cache.lookup(K1, 0);
  ASSERT_NE(Pinned, nullptr);
  Cache.insert(K2, 0, makeColumn(256, 7.0)); // Evicts K1.
  EXPECT_EQ(Cache.lookup(K1, 0), nullptr);
  EXPECT_DOUBLE_EQ((*Pinned)[0], 42.0);
}

TEST(ColumnCacheTest, CountersTrackProbesAndHitRate) {
  ColumnCache Cache(size_t(1) << 20);
  SubtreeKey K = SubtreeKey::leaf(9, 9);
  EXPECT_EQ(Cache.lookup(K, 0), nullptr); // Miss.
  Cache.insert(K, 0, makeColumn(8, 1.0));
  EXPECT_NE(Cache.lookup(K, 0), nullptr); // Hit.
  EXPECT_NE(Cache.lookup(K, 0), nullptr); // Hit.
  EXPECT_EQ(Cache.hits(), 2u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.inserts(), 1u);
  EXPECT_NEAR(Cache.hitRate(), 2.0 / 3.0, 1e-12);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.hits(), 2u); // Counters survive clear().
}

TEST(ColumnCacheTest, AdmitsOnlyOnSecondTouch) {
  ColumnCache Cache(size_t(1) << 20);
  SubtreeKey K1 = SubtreeKey::leaf(1, 1);
  SubtreeKey K2 = SubtreeKey::leaf(2, 2);
  EXPECT_FALSE(Cache.admit(K1, 0)); // First encounter: record, reject.
  EXPECT_TRUE(Cache.admit(K1, 0));  // Second encounter: admit.
  EXPECT_TRUE(Cache.admit(K1, 0));  // Stays admitted.
  EXPECT_FALSE(Cache.admit(K1, 256)); // Another block is another entry.
  EXPECT_FALSE(Cache.admit(K2, 0));
  Cache.clear(); // Drops the fingerprints too.
  EXPECT_FALSE(Cache.admit(K1, 0));

  ColumnCache Disabled(0);
  EXPECT_FALSE(Disabled.admit(K1, 0)); // Budget 0: caching is off.
  EXPECT_FALSE(Disabled.admit(K1, 0));
}
