//===- tests/likelihood/ColumnarDatasetTest.cpp - SoA view + evalBatch ----===//

#include "likelihood/ColumnarDataset.h"

#include "likelihood/Likelihood.h"
#include "suite/Prepare.h"
#include "support/Rng.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace psketch;

TEST(ColumnarDatasetTest, RoundTripMatchesDatasetAt) {
  Dataset Data({"a", "b", "c"});
  Rng R(21);
  for (int I = 0; I != 17; ++I)
    Data.addRow({R.uniform(-5, 5), R.uniform(-5, 5), double(I)});
  ColumnarDataset Cols(Data);
  ASSERT_EQ(Cols.numRows(), Data.numRows());
  ASSERT_EQ(Cols.numColumns(), Data.numColumns());
  for (size_t Row = 0; Row != Data.numRows(); ++Row) {
    EXPECT_EQ(Cols.at(Row, 0), Data.at(Row, "a"));
    EXPECT_EQ(Cols.at(Row, 1), Data.at(Row, "b"));
    EXPECT_EQ(Cols.at(Row, 2), Data.at(Row, "c"));
  }
}

TEST(ColumnarDatasetTest, EmptyDataset) {
  Dataset Data({"x"});
  ColumnarDataset Cols(Data);
  EXPECT_TRUE(Cols.empty());
  EXPECT_EQ(Cols.numColumns(), 1u);
}

TEST(ColumnarDatasetTest, EvalBatchMatchesRowwiseOnRandomTapes) {
  // Random DAGs over two columns, a dataset spanning several 256-row
  // blocks (including a ragged tail), per-row agreement must be exact.
  Rng R(77);
  Dataset Data({"c0", "c1"});
  for (int I = 0; I != 600; ++I)
    Data.addRow({R.uniform(-3, 3), R.uniform(0.1, 4)});
  ColumnarDataset Cols(Data);
  for (int Trial = 0; Trial != 20; ++Trial) {
    NumExprBuilder B;
    std::vector<NumId> Pool = {B.dataRef(0), B.dataRef(1),
                               B.constant(R.uniform(-2, 2))};
    for (int I = 0; I != 25; ++I) {
      NumId X = Pool[R.index(Pool.size())];
      NumId Y = Pool[R.index(Pool.size())];
      switch (R.index(6)) {
      case 0:
        Pool.push_back(B.add(X, Y));
        break;
      case 1:
        Pool.push_back(B.mul(X, Y));
        break;
      case 2:
        Pool.push_back(B.sub(X, Y));
        break;
      case 3:
        Pool.push_back(B.exp(B.neg(B.abs(X))));
        break;
      case 4:
        Pool.push_back(B.log(B.add(B.abs(X), B.constant(1.0))));
        break;
      case 5:
        Pool.push_back(B.max(X, Y));
        break;
      }
    }
    Tape T(B, Pool.back());
    std::vector<double> Scratch, BatchScratch, Out(Data.numRows());
    T.evalBatch(Cols, 0, Data.numRows(), Out.data(), BatchScratch);
    for (size_t Row = 0; Row != Data.numRows(); ++Row)
      EXPECT_EQ(T.eval(Data.row(Row), Scratch), Out[Row])
          << "trial " << Trial << " row " << Row;
  }
}

TEST(ColumnarDatasetTest, EvalBatchHonorsBeginOffset) {
  NumExprBuilder B;
  NumId Root = B.mul(B.dataRef(0), B.constant(3.0));
  Tape T(B, Root);
  Dataset Data({"x"});
  for (int I = 0; I != 10; ++I)
    Data.addRow({double(I)});
  ColumnarDataset Cols(Data);
  std::vector<double> Scratch, Out(4);
  T.evalBatch(Cols, 5, 4, Out.data(), Scratch);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_DOUBLE_EQ(Out[I], 3.0 * double(5 + I));
}

TEST(ColumnarDatasetTest, BatchedAgreesWithRowwiseOnEveryBenchmark) {
  // The acceptance gate of the batched evaluator: per-row and summed
  // log-likelihoods along both paths agree on all 16 paper benchmarks.
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    ASSERT_TRUE(P) << B.Name << ": " << Diags.str();
    auto F = LikelihoodFunction::compile(*P->TargetLowered, P->Data);
    ASSERT_TRUE(F) << B.Name;
    ColumnarDataset Cols(P->Data);
    std::vector<double> Batched;
    F->logLikelihoodRows(Cols, Batched);
    ASSERT_EQ(Batched.size(), P->Data.numRows());
    for (size_t Row = 0; Row != P->Data.numRows(); ++Row) {
      double Rowwise = F->logLikelihoodRow(P->Data.row(Row));
      EXPECT_NEAR(Rowwise, Batched[Row], 1e-12)
          << B.Name << " row " << Row;
    }
    EXPECT_NEAR(F->logLikelihood(Cols), F->logLikelihoodRowwise(P->Data),
                1e-12)
        << B.Name;
    EXPECT_EQ(F->logLikelihood(Cols), F->logLikelihood(P->Data)) << B.Name;
  }
}
