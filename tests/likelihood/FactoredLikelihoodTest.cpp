//===- tests/likelihood/FactoredLikelihoodTest.cpp - Per-term tapes -------===//
//
// The factored likelihood's bit-identity contract (DESIGN.md §14): one
// tape per additive term, recombined per row in chain order through the
// same block-Kahan + tree reduction, must reproduce the monolithic
// LikelihoodFunction total bit for bit — for any grouping of terms, and
// for selective (NeedGroup) compiles serving part of the groups.
//
//===----------------------------------------------------------------------===//

#include "likelihood/FactoredLikelihood.h"

#include "likelihood/ColumnarDataset.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

using namespace psketch;

namespace {

std::unique_ptr<LoweredProgram> lowerSource(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  return LP;
}

std::uint64_t bitsOf(double D) {
  std::uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

/// Three modeled channels plus a non-trivial observe, so the term list
/// is [rho, a, b, c] with a cross-channel dependence through c.
const char *ChannelsSource = R"(
program Chan() {
  a: real;
  b: real;
  c: real;
  a ~ Gaussian(1.0, 2.0);
  b ~ Gaussian(-1.0, 1.0);
  c ~ Gaussian(a + b, 1.5);
  observe(a < 10.0);
  return a;
}
)";

Dataset channelData() {
  Dataset Data({"a", "b", "c"});
  const double Rows[][3] = {{0.5, -1.2, -0.4}, {1.9, -0.3, 2.0},
                            {2.2, -2.0, 0.1},  {-0.7, 0.4, -0.9},
                            {1.0, -1.0, 0.0},  {3.3, 0.0, 3.1}};
  for (const auto &R : Rows)
    Data.addRow({R[0], R[1], R[2]});
  return Data;
}

TermPartition singletons(unsigned NumTerms) {
  TermPartition Part;
  Part.NumGroups = NumTerms;
  for (unsigned T = 0; T != NumTerms; ++T)
    Part.GroupOfTerm.push_back(T);
  return Part;
}

/// Evaluates every group and recombines — the caller picks the grouping.
double evalFactored(const FactoredLikelihoodFunction &FF,
                    const ColumnarDataset &Cols) {
  std::vector<std::vector<std::vector<double>>> GroupVals(FF.numGroups());
  for (unsigned G = 0; G != FF.numGroups(); ++G)
    FF.evalGroupRows(G, Cols, GroupVals[G]);
  std::vector<const std::vector<double> *> TermRows(FF.numTerms());
  for (unsigned G = 0; G != FF.numGroups(); ++G) {
    const std::vector<unsigned> &Terms = FF.groupTerms(G);
    for (size_t I = 0; I != Terms.size(); ++I)
      TermRows[Terms[I]] = &GroupVals[G][I];
  }
  std::vector<double> Partials;
  return factoredLogLikelihood(TermRows, Cols.numRows(), Partials);
}

} // namespace

TEST(FactoredLikelihoodTest, SingletonGroupsMatchMonolithicBitwise) {
  auto LP = lowerSource(ChannelsSource);
  ASSERT_TRUE(LP);
  Dataset Data = channelData();
  ColumnarDataset Cols(Data);

  auto Mono = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(Mono);
  double Expected = Mono->logLikelihood(Cols);

  auto FF = FactoredLikelihoodFunction::compile(*LP, Data, {}, nullptr, {},
                                                nullptr, singletons(4));
  ASSERT_TRUE(FF);
  EXPECT_EQ(FF->numTerms(), 4u);
  EXPECT_EQ(bitsOf(evalFactored(*FF, Cols)), bitsOf(Expected));
}

TEST(FactoredLikelihoodTest, GroupingDoesNotChangeTheTotal) {
  auto LP = lowerSource(ChannelsSource);
  ASSERT_TRUE(LP);
  Dataset Data = channelData();
  ColumnarDataset Cols(Data);

  auto Mono = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(Mono);
  double Expected = Mono->logLikelihood(Cols);

  // One lump group, and an uneven split {rho,c | a | b}: recombination
  // runs in global term order regardless of grouping, so both match.
  TermPartition Lump;
  Lump.NumGroups = 1;
  Lump.GroupOfTerm = {0, 0, 0, 0};
  TermPartition Split;
  Split.NumGroups = 3;
  Split.GroupOfTerm = {0, 1, 2, 0};
  for (const TermPartition &Part : {Lump, Split}) {
    auto FF = FactoredLikelihoodFunction::compile(*LP, Data, {}, nullptr, {},
                                                  nullptr, Part);
    ASSERT_TRUE(FF);
    EXPECT_EQ(bitsOf(evalFactored(*FF, Cols)), bitsOf(Expected));
  }
}

TEST(FactoredLikelihoodTest, NeedGroupCompilesOnlyFlaggedGroups) {
  auto LP = lowerSource(ChannelsSource);
  ASSERT_TRUE(LP);
  Dataset Data = channelData();
  ColumnarDataset Cols(Data);

  auto Full = FactoredLikelihoodFunction::compile(*LP, Data, {}, nullptr, {},
                                                  nullptr, singletons(4));
  ASSERT_TRUE(Full);
  std::vector<std::vector<double>> FullVals;
  Full->evalGroupRows(2, Cols, FullVals);

  // Flag only group 2 (column b's term): its rows must match the full
  // compile bit for bit, and the partial tape must be strictly smaller.
  std::vector<char> Need(4, 0);
  Need[2] = 1;
  auto Partial = FactoredLikelihoodFunction::compile(
      *LP, Data, {}, nullptr, {}, nullptr, singletons(4), &Need);
  ASSERT_TRUE(Partial);
  std::vector<std::vector<double>> PartVals;
  Partial->evalGroupRows(2, Cols, PartVals);
  ASSERT_EQ(PartVals.size(), FullVals.size());
  ASSERT_EQ(PartVals[0].size(), Data.numRows());
  for (size_t R = 0; R != Data.numRows(); ++R)
    EXPECT_EQ(bitsOf(PartVals[0][R]), bitsOf(FullVals[0][R])) << "row " << R;
  EXPECT_LT(Partial->tapeSize(), Full->tapeSize());
}

TEST(FactoredLikelihoodTest, MismatchedPartitionIsRejected) {
  auto LP = lowerSource(ChannelsSource);
  ASSERT_TRUE(LP);
  Dataset Data = channelData();
  // The program has 4 terms; a 3-term partition cannot apply.
  auto FF = FactoredLikelihoodFunction::compile(*LP, Data, {}, nullptr, {},
                                                nullptr, singletons(3));
  EXPECT_FALSE(FF.has_value());
}

TEST(FactoredLikelihoodTest, TemplateCompletionsMatchMonolithicBitwise) {
  // The synthesis shape: a sketch template lowered with KeepHoles plus a
  // completion tuple, factored against the monolithic template path.
  DiagEngine Diags;
  auto P = parseProgramSource(R"(
program Sketch() {
  a: real;
  b: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(??, 2.0);
  return a;
}
)",
                              Diags);
  ASSERT_TRUE(P) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, {}, Diags, /*KeepHoles=*/true);
  ASSERT_TRUE(LP) << Diags.str();

  Dataset Data({"a", "b"});
  for (double X : {0.2, 1.4, -0.6, 2.8})
    Data.addRow({X, -X});
  ColumnarDataset Cols(Data);

  std::vector<ExprPtr> Completions;
  Completions.push_back(parseExprSource("0.7", Diags));
  Completions.push_back(parseExprSource("0.0 - 1.3", Diags));
  ASSERT_TRUE(Completions[0] && Completions[1]) << Diags.str();

  auto Mono = LikelihoodFunction::compile(*LP, Data, {}, &Completions);
  ASSERT_TRUE(Mono);
  auto FF = FactoredLikelihoodFunction::compile(*LP, Data, {}, &Completions,
                                                {}, nullptr, singletons(3));
  ASSERT_TRUE(FF);
  EXPECT_EQ(bitsOf(evalFactored(*FF, Cols)),
            bitsOf(Mono->logLikelihood(Cols)));
}
