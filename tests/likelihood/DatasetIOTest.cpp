//===- tests/likelihood/DatasetIOTest.cpp - CSV I/O unit tests ------------===//

#include "likelihood/DatasetIO.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace psketch;

TEST(DatasetIOTest, ReadsHeaderAndRows) {
  std::istringstream In("x,skills[0]\n1.5,2\n-3,4.25\n");
  DiagEngine Diags;
  auto Data = readDatasetCsv(In, Diags);
  ASSERT_TRUE(Data) << Diags.str();
  EXPECT_EQ(Data->numColumns(), 2u);
  EXPECT_EQ(Data->columns()[1], "skills[0]");
  ASSERT_EQ(Data->numRows(), 2u);
  EXPECT_DOUBLE_EQ(Data->at(0, "x"), 1.5);
  EXPECT_DOUBLE_EQ(Data->at(1, "skills[0]"), 4.25);
}

TEST(DatasetIOTest, ToleratesWhitespaceAndCrLf) {
  std::istringstream In("x , y\r\n 1 , 2 \r\n\r\n3,4\n");
  DiagEngine Diags;
  auto Data = readDatasetCsv(In, Diags);
  ASSERT_TRUE(Data) << Diags.str();
  EXPECT_EQ(Data->columns()[0], "x");
  EXPECT_EQ(Data->columns()[1], "y");
  ASSERT_EQ(Data->numRows(), 2u);
  EXPECT_DOUBLE_EQ(Data->at(0, "y"), 2.0);
}

TEST(DatasetIOTest, RejectsEmptyInput) {
  std::istringstream In("");
  DiagEngine Diags;
  EXPECT_FALSE(readDatasetCsv(In, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(DatasetIOTest, RejectsArityMismatch) {
  std::istringstream In("a,b\n1,2,3\n");
  DiagEngine Diags;
  EXPECT_FALSE(readDatasetCsv(In, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(DatasetIOTest, RejectsMalformedNumber) {
  std::istringstream In("a\nhello\n");
  DiagEngine Diags;
  EXPECT_FALSE(readDatasetCsv(In, Diags));
  EXPECT_NE(Diags.str().find("malformed numeric"), std::string::npos);
}

TEST(DatasetIOTest, RejectsEmptyColumnName) {
  std::istringstream In("a,,c\n1,2,3\n");
  DiagEngine Diags;
  EXPECT_FALSE(readDatasetCsv(In, Diags));
}

TEST(DatasetIOTest, RoundTripPreservesValues) {
  Dataset Data({"x", "y[3]"});
  Data.addRow({1.2345678901234567, -42.0});
  Data.addRow({0.0, 1e-9});
  std::ostringstream Out;
  writeDatasetCsv(Out, Data);
  std::istringstream In(Out.str());
  DiagEngine Diags;
  auto Back = readDatasetCsv(In, Diags);
  ASSERT_TRUE(Back) << Diags.str();
  EXPECT_EQ(Back->columns(), Data.columns());
  ASSERT_EQ(Back->numRows(), 2u);
  for (size_t R = 0; R < 2; ++R)
    for (size_t C = 0; C < 2; ++C)
      EXPECT_DOUBLE_EQ(Back->row(R)[C], Data.row(R)[C]);
}

TEST(DatasetIOTest, FileRoundTrip) {
  Dataset Data({"v"});
  Data.addRow({7.5});
  std::string Path = ::testing::TempDir() + "/psketch_dataset_io.csv";
  ASSERT_TRUE(writeDatasetCsvFile(Path, Data));
  DiagEngine Diags;
  auto Back = readDatasetCsvFile(Path, Diags);
  ASSERT_TRUE(Back) << Diags.str();
  EXPECT_DOUBLE_EQ(Back->at(0, "v"), 7.5);
}

TEST(DatasetIOTest, MissingFileReportsError) {
  DiagEngine Diags;
  EXPECT_FALSE(readDatasetCsvFile("/nonexistent/nope.csv", Diags));
  EXPECT_TRUE(Diags.hasErrors());
}
