//===- tests/likelihood/LLOperatorTest.cpp - LL(.) operator tests ---------===//
//
// Includes the Figure 4 worked example: the two-player/one-game
// TrueSkill candidate, whose final environment must map skills to
// MoG(100, 10) priors, perf to MoG(skill_ref, 15), and r to the erf
// comparison probability.
//
//===----------------------------------------------------------------------===//

#include "likelihood/LLOperator.h"

#include "likelihood/Likelihood.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

struct Compiled {
  std::unique_ptr<Program> P;
  std::unique_ptr<LoweredProgram> LP;
};

Compiled lower(const std::string &Source, const InputBindings &Inputs) {
  DiagEngine Diags;
  Compiled C;
  C.P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(C.P) << Diags.str();
  if (!C.P)
    return C;
  EXPECT_TRUE(typeCheck(*C.P, Diags)) << Diags.str();
  C.LP = lowerProgram(*C.P, Inputs, Diags);
  EXPECT_TRUE(C.LP) << Diags.str();
  return C;
}

} // namespace

TEST(LLOperatorTest, Figure4WorkedExample) {
  // Figure 4: TrueSkill with 2 players and 1 game, skills observed.
  const char *Source = R"(
program TS2(p1: int, p2: int, result: bool) {
  skills: real[2];
  perf1: real;
  perf2: real;
  r: bool;
  skills[0] ~ Gaussian(100.0, 10.0);
  skills[1] ~ Gaussian(100.0, 10.0);
  perf1 ~ Gaussian(skills[p1], 15.0);
  perf2 ~ Gaussian(skills[p2], 15.0);
  r = perf1 > perf2;
  observe(result == r);
  return skills;
}
)";
  InputBindings In;
  In.setInt("p1", 0);
  In.setInt("p2", 1);
  In.setScalar("result", 1.0, ScalarKind::Bool);
  Compiled C = lower(Source, In);
  ASSERT_TRUE(C.LP);

  Dataset Data({"skills[0]", "skills[1]"});
  Data.addRow({105.0, 95.0});

  NumExprBuilder B;
  MoGAlgebra Algebra(B);
  auto Observed = observedSlots(*C.LP, Data);
  LLExecutor Exec(Algebra, Observed);
  auto Root = Exec.run(*C.LP);
  ASSERT_TRUE(Root.has_value());

  // skills[0] |-> MoG(1, [1], [100], [10]).
  const SymValue *S0 = Exec.finalValue("skills[0]");
  ASSERT_TRUE(S0 && S0->isMoG());
  double V = 0;
  ASSERT_TRUE(B.isConst(S0->components()[0].Mu, V));
  EXPECT_DOUBLE_EQ(V, 100.0);
  ASSERT_TRUE(B.isConst(S0->components()[0].Sigma, V));
  EXPECT_DOUBLE_EQ(V, 10.0);

  // perf1 |-> MoG(1, [1], [skill ref], [15]): mean is symbolic over
  // the observed skill column, per Figure 4.
  const SymValue *P1 = Exec.finalValue("perf1");
  ASSERT_TRUE(P1 && P1->isMoG());
  EXPECT_FALSE(B.isConst(P1->components()[0].Mu, V));
  EXPECT_DOUBLE_EQ(B.eval(P1->components()[0].Mu, Data.row(0)), 105.0);
  ASSERT_TRUE(B.isConst(P1->components()[0].Sigma, V));
  EXPECT_DOUBLE_EQ(V, 15.0);

  // r |-> Bernoulli(1/2 + 1/2 erf((skill0 - skill1) / sqrt(2*450))).
  const SymValue *RVal = Exec.finalValue("r");
  ASSERT_TRUE(RVal && RVal->isBern());
  double P = B.eval(RVal->bernProb(), Data.row(0));
  EXPECT_NEAR(P, 0.5 * (1.0 + std::erf((105.0 - 95.0) / std::sqrt(900.0))),
              1e-12);

  // The total per-row log-likelihood: prior densities at the observed
  // skills plus the observe factor.
  double Expected = gaussianLogPdf(105.0, 100.0, 10.0) +
                    gaussianLogPdf(95.0, 100.0, 10.0) + std::log(P);
  EXPECT_NEAR(B.eval(*Root, Data.row(0)), Expected, 1e-9);
}

TEST(LLOperatorTest, ObserveOfFalseConstantKillsLikelihood) {
  const char *Source = R"(
program P() {
  x: real;
  x ~ Gaussian(0.0, 1.0);
  observe(false);
  return x;
}
)";
  Compiled C = lower(Source, {});
  ASSERT_TRUE(C.LP);
  Dataset Data({"x"});
  Data.addRow({0.0});
  auto F = LikelihoodFunction::compile(*C.LP, Data);
  ASSERT_TRUE(F);
  EXPECT_LT(F->logLikelihoodRow(Data.row(0)), std::log(TinyProb) + 1.0);
}

TEST(LLOperatorTest, IfMergesEnvironmentsByConditionProbability) {
  const char *Source = R"(
program P() {
  b: bool;
  x: real;
  b ~ Bernoulli(0.25);
  if (b) {
    x ~ Gaussian(0.0, 1.0);
  } else {
    x ~ Gaussian(10.0, 2.0);
  }
  return x;
}
)";
  Compiled C = lower(Source, {});
  ASSERT_TRUE(C.LP);
  Dataset Data({"x"});
  Data.addRow({0.0});
  NumExprBuilder B;
  MoGAlgebra Algebra(B);
  LLExecutor Exec(Algebra, observedSlots(*C.LP, Data));
  auto Root = Exec.run(*C.LP);
  ASSERT_TRUE(Root);
  const SymValue *X = Exec.finalValue("x");
  ASSERT_TRUE(X && X->isMoG());
  ASSERT_EQ(X->components().size(), 2u);
  double W0 = 0, W1 = 0;
  ASSERT_TRUE(B.isConst(X->components()[0].W, W0));
  ASSERT_TRUE(B.isConst(X->components()[1].W, W1));
  EXPECT_NEAR(W0, 0.25, 1e-12);
  EXPECT_NEAR(W1, 0.75, 1e-12);
}

TEST(LLOperatorTest, ObserveInsideIfWeightsConstraint) {
  const char *Source = R"(
program P() {
  b: bool;
  x: real;
  b ~ Bernoulli(0.5);
  x = 1.0;
  if (b) {
    observe(false);
  } else {
    x = 2.0;
  }
  return x;
}
)";
  Compiled C = lower(Source, {});
  ASSERT_TRUE(C.LP);
  Dataset Data({"x"});
  Data.addRow({2.0});
  NumExprBuilder B;
  MoGAlgebra Algebra(B);
  LLExecutor Exec(Algebra, observedSlots(*C.LP, Data));
  auto Root = Exec.run(*C.LP);
  ASSERT_TRUE(Root);
  // rho = 0.5 * 0 + 0.5 * 1 = 0.5.
  EXPECT_NEAR(B.eval(Exec.constraintProduct(), Data.row(0)), 0.5, 1e-12);
}

TEST(LLOperatorTest, ContinuousEqualityObserveIsDensityFactor) {
  const char *Source = R"(
program P(target: real) {
  x: real;
  y: real;
  x ~ Gaussian(0.0, 2.0);
  observe(x == target);
  y = 1.0;
  return y;
}
)";
  InputBindings In;
  In.setScalar("target", 1.5, ScalarKind::Real);
  Compiled C = lower(Source, In);
  ASSERT_TRUE(C.LP);
  Dataset Data({"y"});
  Data.addRow({1.0});
  NumExprBuilder B;
  MoGAlgebra Algebra(B);
  LLExecutor Exec(Algebra, observedSlots(*C.LP, Data));
  auto Root = Exec.run(*C.LP);
  ASSERT_TRUE(Root);
  EXPECT_NEAR(B.eval(Exec.constraintProduct(), Data.row(0)),
              gaussianPdf(1.5, 0.0, 2.0), 1e-9);
}

TEST(LLOperatorTest, MalformedCandidateReportsFailure) {
  // Read of a never-written slot: the LL operator signals malformed
  // instead of producing a bogus likelihood.
  const char *Source = R"(
program P() {
  x: real;
  y: real;
  y = x + 1.0;
  x = 0.0;
  return y;
}
)";
  Compiled C = lower(Source, {});
  ASSERT_TRUE(C.LP);
  Dataset Data({"y"});
  Data.addRow({1.0});
  NumExprBuilder B;
  MoGAlgebra Algebra(B);
  LLExecutor Exec(Algebra, observedSlots(*C.LP, Data));
  EXPECT_FALSE(Exec.run(*C.LP).has_value());
}

TEST(LLOperatorTest, UnobservedReturnIsNotScored) {
  const char *Source = R"(
program P() {
  x: real;
  y: real;
  x ~ Gaussian(0.0, 1.0);
  y ~ Gaussian(5.0, 1.0);
  return x, y;
}
)";
  Compiled C = lower(Source, {});
  ASSERT_TRUE(C.LP);
  // Dataset observes only x.
  Dataset Data({"x"});
  Data.addRow({0.0});
  auto F = LikelihoodFunction::compile(*C.LP, Data);
  ASSERT_TRUE(F);
  EXPECT_NEAR(F->logLikelihoodRow(Data.row(0)),
              gaussianLogPdf(0.0, 0.0, 1.0), 1e-9);
}

TEST(LLOperatorTest, BooleanObservedSlotsUseDataValues) {
  const char *Source = R"(
program P() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.3);
  x = ite(z, Gaussian(0.0, 1.0), Gaussian(10.0, 2.0));
  return z, x;
}
)";
  Compiled C = lower(Source, {});
  ASSERT_TRUE(C.LP);
  Dataset Data({"z", "x"});
  Data.addRow({1.0, 0.5});
  Data.addRow({0.0, 9.5});
  auto F = LikelihoodFunction::compile(*C.LP, Data);
  ASSERT_TRUE(F);
  // Row 0: z=1 chooses the first component exactly.
  EXPECT_NEAR(F->logLikelihoodRow(Data.row(0)),
              std::log(0.3) + gaussianLogPdf(0.5, 0.0, 1.0), 1e-6);
  EXPECT_NEAR(F->logLikelihoodRow(Data.row(1)),
              std::log(0.7) + gaussianLogPdf(9.5, 10.0, 2.0), 1e-6);
}
