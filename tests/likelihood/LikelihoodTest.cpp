//===- tests/likelihood/LikelihoodTest.cpp - Compiled likelihood tests ----===//

#include "likelihood/Likelihood.h"

#include "interp/Interp.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

std::unique_ptr<LoweredProgram> lowerSource(const std::string &Source,
                                            const InputBindings &Inputs) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, Inputs, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  return LP;
}

} // namespace

TEST(LikelihoodTest, GaussianModelMatchesClosedForm) {
  auto LP = lowerSource(R"(
program G() {
  x: real;
  x ~ Gaussian(3.0, 2.0);
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"x"});
  for (double X : {1.0, 2.0, 3.0, 4.5, 7.0})
    Data.addRow({X});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double Expected = 0;
  for (const auto &Row : Data.rows())
    Expected += gaussianLogPdf(Row[0], 3.0, 2.0);
  EXPECT_NEAR(F->logLikelihood(Data), Expected, 1e-9);
}

TEST(LikelihoodTest, BernoulliModelMatchesClosedForm) {
  auto LP = lowerSource(R"(
program Coin() {
  z: bool;
  z ~ Bernoulli(0.2);
  return z;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"z"});
  Data.addRow({1.0});
  Data.addRow({0.0});
  Data.addRow({0.0});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  EXPECT_NEAR(F->logLikelihood(Data),
              std::log(0.2) + 2 * std::log(0.8), 1e-9);
}

TEST(LikelihoodTest, MixtureModelMatchesClosedForm) {
  auto LP = lowerSource(R"(
program Mix() {
  x: real;
  x = ite(Bernoulli(0.3), Gaussian(0.0, 1.0), Gaussian(10.0, 2.0));
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"x"});
  for (double X : {-0.5, 0.2, 9.0, 10.5, 12.0})
    Data.addRow({X});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double Expected = 0;
  for (const auto &Row : Data.rows())
    Expected +=
        mixtureLogPdf(Row[0], {0.3, 0.7}, {0.0, 10.0}, {1.0, 2.0});
  EXPECT_NEAR(F->logLikelihood(Data), Expected, 1e-9);
}

TEST(LikelihoodTest, SumOfGaussiansUsesConvolvedDensity) {
  auto LP = lowerSource(R"(
program Sum() {
  a: real;
  b: real;
  y: real;
  a ~ Gaussian(1.0, 3.0);
  b ~ Gaussian(2.0, 4.0);
  y = a + b;
  return y;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"y"});
  Data.addRow({4.0});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  // y ~ N(3, 5): the Section 1 motivating integral, solved by the
  // closure rule instead of quadrature.
  EXPECT_NEAR(F->logLikelihoodRow(Data.row(0)),
              gaussianLogPdf(4.0, 3.0, 5.0), 1e-9);
}

TEST(LikelihoodTest, CorrectParametersScoreHigherThanWrongOnes) {
  Rng R(5);
  auto Truth = lowerSource(R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)",
                           {});
  ASSERT_TRUE(Truth);
  Dataset Data = generateDataset(*Truth, 200, R);
  ASSERT_EQ(Data.numRows(), 200u);

  auto Wrong = lowerSource(R"(
program W() {
  x: real;
  x ~ Gaussian(0.0, 2.0);
  return x;
}
)",
                           {});
  auto FT = LikelihoodFunction::compile(*Truth, Data);
  auto FW = LikelihoodFunction::compile(*Wrong, Data);
  ASSERT_TRUE(FT && FW);
  EXPECT_GT(FT->logLikelihood(Data), FW->logLikelihood(Data) + 100.0);
}

TEST(LikelihoodTest, TrueSkillConsistentResultsScoreHigher) {
  const char *Source = R"(
program TS(nplayers: int, ngames: int, p1: int[], p2: int[],
           result: bool[]) {
  skills: real[nplayers];
  r: bool[ngames];
  perf1: real;
  perf2: real;
  for i in 0..nplayers { skills[i] ~ Gaussian(100.0, 10.0); }
  for g in 0..ngames {
    perf1 ~ Gaussian(skills[p1[g]], 15.0);
    perf2 ~ Gaussian(skills[p2[g]], 15.0);
    r[g] = perf1 > perf2;
  }
  for g in 0..ngames { observe(result[g] == r[g]); }
  return skills;
}
)";
  InputBindings In;
  In.setInt("nplayers", 2);
  In.setInt("ngames", 1);
  In.setIntArray("p1", {0});
  In.setIntArray("p2", {1});
  In.setBoolArray("result", {true});
  auto LP = lowerSource(Source, In);
  ASSERT_TRUE(LP);
  Dataset Data({"skills[0]", "skills[1]"});
  Data.addRow({105.0, 95.0});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double ConsistentLL = F->logLikelihoodRow(Data.row(0));

  // Same skills, but the observed result contradicts them.
  Dataset Flipped({"skills[0]", "skills[1]"});
  Flipped.addRow({95.0, 105.0});
  double InconsistentLL = F->logLikelihoodRow(Flipped.row(0));
  EXPECT_GT(ConsistentLL, InconsistentLL);
}

TEST(LikelihoodTest, CompileRejectsResidualHoleViaLowering) {
  DiagEngine Diags;
  auto P = parseProgramSource(R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)",
                              Diags);
  ASSERT_TRUE(P);
  ASSERT_TRUE(typeCheck(*P, Diags));
  auto LP = lowerProgram(*P, {}, Diags);
  EXPECT_FALSE(LP);
}

TEST(LikelihoodTest, TapeSizeIsIndependentOfRowCount) {
  auto LP = lowerSource(R"(
program G() {
  x: real;
  x ~ Gaussian(0.0, 1.0);
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Small({"x"});
  Small.addRow({0.0});
  Dataset Large({"x"});
  for (int I = 0; I < 500; ++I)
    Large.addRow({double(I)});
  auto FS = LikelihoodFunction::compile(*LP, Small);
  auto FL = LikelihoodFunction::compile(*LP, Large);
  ASSERT_TRUE(FS && FL);
  // The "compile once, evaluate per row" property.
  EXPECT_EQ(FS->tapeSize(), FL->tapeSize());
}

TEST(LikelihoodTest, EmpiricalLikelihoodAgreesWithSampler) {
  // The compiled likelihood of the generating program should roughly
  // equal the average log-density of fresh samples (cross-entropy).
  auto LP = lowerSource(R"(
program G() {
  x: real;
  x ~ Gaussian(-2.0, 1.5);
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(11);
  Dataset Data = generateDataset(*LP, 2000, R);
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double PerRow = F->logLikelihood(Data) / double(Data.numRows());
  // Differential entropy of N(mu, sigma): 0.5 log(2 pi e sigma^2).
  double Entropy = 0.5 * std::log(2 * M_PI * M_E * 1.5 * 1.5);
  EXPECT_NEAR(PerRow, -Entropy, 0.1);
}
