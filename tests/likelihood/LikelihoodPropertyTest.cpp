//===- tests/likelihood/LikelihoodPropertyTest.cpp - Parameter sweeps -----===//
//
// Parameterized property sweeps over randomly drawn model parameters:
// for programs whose exact density has a closed form (Gaussians,
// affine transforms, two-component mixtures, Bernoulli chains), the
// compiled likelihood must match the closed form for *every* drawn
// parameterization, not just the hand-picked cases of LikelihoodTest.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Likelihood.h"

#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "support/Rng.h"
#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace psketch;

namespace {

std::unique_ptr<LoweredProgram> lowerSource(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  return LP;
}

std::string num(double V) {
  std::ostringstream OS;
  OS.precision(17);
  OS << V;
  std::string S = OS.str();
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos)
    S += ".0";
  return S;
}

class LikelihoodProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override { R.seed(GetParam()); }
  Rng R{0};
};

} // namespace

TEST_P(LikelihoodProperty, AffineGaussianClosedForm) {
  double Mu = R.uniform(-50, 50);
  double Sigma = R.uniform(0.5, 20);
  double Scale = R.uniform(-4, 4);
  double Shift = R.uniform(-30, 30);
  if (std::fabs(Scale) < 0.1)
    Scale = 0.5;
  std::string Source = "program P() {\n  x: real;\n  y: real;\n"
                       "  x ~ Gaussian(" +
                       num(Mu) + ", " + num(Sigma) + ");\n  y = " +
                       num(Scale) + " * x + " + num(Shift) +
                       ";\n  return y;\n}\n";
  auto LP = lowerSource(Source);
  ASSERT_TRUE(LP);
  Dataset Data({"y"});
  for (int I = 0; I < 7; ++I)
    Data.addRow({R.uniform(-100, 100)});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  // y ~ Gaussian(Scale*Mu + Shift, |Scale|*Sigma).
  double Expected = 0;
  for (const auto &Row : Data.rows())
    Expected += gaussianLogPdf(Row[0], Scale * Mu + Shift,
                               std::fabs(Scale) * Sigma);
  EXPECT_NEAR(F->logLikelihood(Data), Expected, 1e-8);
}

TEST_P(LikelihoodProperty, SumOfTwoGaussiansClosedForm) {
  double Mu1 = R.uniform(-20, 20), S1 = R.uniform(0.5, 10);
  double Mu2 = R.uniform(-20, 20), S2 = R.uniform(0.5, 10);
  std::string Source = "program P() {\n  a: real;\n  b: real;\n"
                       "  y: real;\n  a ~ Gaussian(" +
                       num(Mu1) + ", " + num(S1) + ");\n  b ~ Gaussian(" +
                       num(Mu2) + ", " + num(S2) +
                       ");\n  y = a - b;\n  return y;\n}\n";
  auto LP = lowerSource(Source);
  ASSERT_TRUE(LP);
  Dataset Data({"y"});
  for (int I = 0; I < 7; ++I)
    Data.addRow({R.uniform(-60, 60)});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double Expected = 0;
  for (const auto &Row : Data.rows())
    Expected += gaussianLogPdf(Row[0], Mu1 - Mu2,
                               std::sqrt(S1 * S1 + S2 * S2));
  EXPECT_NEAR(F->logLikelihood(Data), Expected, 1e-8);
}

TEST_P(LikelihoodProperty, TwoComponentMixtureClosedForm) {
  double P1 = R.uniform(0.1, 0.9);
  double MuA = R.uniform(-20, 0), SA = R.uniform(0.5, 4);
  double MuB = R.uniform(0, 20), SB = R.uniform(0.5, 4);
  std::string Source =
      "program P() {\n  x: real;\n  x = ite(Bernoulli(" + num(P1) +
      "), Gaussian(" + num(MuA) + ", " + num(SA) + "), Gaussian(" +
      num(MuB) + ", " + num(SB) + "));\n  return x;\n}\n";
  auto LP = lowerSource(Source);
  ASSERT_TRUE(LP);
  Dataset Data({"x"});
  for (int I = 0; I < 7; ++I)
    Data.addRow({R.uniform(-25, 25)});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double Expected = 0;
  for (const auto &Row : Data.rows())
    Expected +=
        mixtureLogPdf(Row[0], {P1, 1 - P1}, {MuA, MuB}, {SA, SB});
  EXPECT_NEAR(F->logLikelihood(Data), Expected, 1e-8);
}

TEST_P(LikelihoodProperty, BernoulliChainClosedForm) {
  double PA = R.uniform(0.05, 0.95);
  double PB = R.uniform(0.05, 0.95);
  std::string Source = "program P() {\n  a: bool;\n  b: bool;\n"
                       "  c: bool;\n  a ~ Bernoulli(" +
                       num(PA) + ");\n  b ~ Bernoulli(" + num(PB) +
                       ");\n  c = a && b;\n  return a, b, c;\n}\n";
  auto LP = lowerSource(Source);
  ASSERT_TRUE(LP);
  Dataset Data({"a", "b", "c"});
  for (int A = 0; A <= 1; ++A)
    for (int B = 0; B <= 1; ++B)
      Data.addRow({double(A), double(B), double(A && B)});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double Expected = 0;
  for (const auto &Row : Data.rows())
    Expected += bernoulliLogPmf(Row[0] != 0, PA) +
                bernoulliLogPmf(Row[1] != 0, PB);
  // c is deterministic given (a, b): log 1 contribution on every
  // consistent row.
  EXPECT_NEAR(F->logLikelihood(Data), Expected, 1e-8);
}

TEST_P(LikelihoodProperty, ConditionedGaussianTailFactor) {
  double Mu = R.uniform(-5, 5);
  double Sigma = R.uniform(0.5, 4);
  double Threshold = R.uniform(-6, 6);
  std::string Source = "program P() {\n  x: real;\n  y: real;\n"
                       "  x ~ Gaussian(" +
                       num(Mu) + ", " + num(Sigma) +
                       ");\n  observe(x > " + num(Threshold) +
                       ");\n  y = 0.0;\n  return y;\n}\n";
  auto LP = lowerSource(Source);
  ASSERT_TRUE(LP);
  Dataset Data({"y"});
  Data.addRow({0.0});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  // rho = Pr(x > t); y contributes a bandwidth point-mass density at
  // its own value (exactly matched at y = 0).
  double Rho = 1.0 - gaussianCdf(Threshold, Mu, Sigma);
  double PointMass = gaussianLogPdf(0.0, 0.0, 0.1);
  EXPECT_NEAR(F->logLikelihoodRow(Data.row(0)),
              std::log(clampProb(Rho)) + PointMass, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikelihoodProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u, 909u,
                                           1010u));
