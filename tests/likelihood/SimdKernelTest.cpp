//===- tests/likelihood/SimdKernelTest.cpp - SIMD tape kernel tiers -------===//
//
// The lane-width-templated batched kernels (DESIGN.md §11) must be
// bit-identical to the row-wise interpreter at every SIMD tier: same
// IEEE operations lane-wise, scalar tail for the ragged rows, libm
// transcendentals.  These tests force each compiled-in tier with
// setSimdLevelOverride and compare element-wise against Tape::eval
// through the fused superinstructions and every tail size around the
// lane boundaries.  One carve-out: IEEE-754 leaves the sign/payload of
// a NaN produced by an arithmetic op unspecified, and when *both*
// operands of a + are NaN the compiler may commute them (x86 addsd
// keeps the first operand's payload), so all NaNs count as one
// equivalence class.  That is harmless for determinism — no NaN
// payload can ever steer control flow (comparisons with NaN are
// uniformly false, Gt/Eq emit 0.0, Min/Max select the other operand),
// so a NaN score rejects a candidate identically whatever its bits.
//
//===----------------------------------------------------------------------===//

#include "likelihood/TapeKernels.h"

#include "likelihood/Likelihood.h"
#include "likelihood/Tape.h"
#include "support/Rng.h"
#include "support/Simd.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

using namespace psketch;

namespace {

/// Caps the active SIMD level for the enclosed scope (the cap can only
/// lower below what the CPU and the build support, so requesting an
/// unavailable tier is harmless — resolution falls through).
struct SimdLevelGuard {
  explicit SimdLevelGuard(SimdLevel L) { setSimdLevelOverride(L); }
  ~SimdLevelGuard() { clearSimdLevelOverride(); }
};

/// The tiers this binary can actually run: compiled in AND supported by
/// the CPU.  Scalar is always present.
std::vector<SimdLevel> runnableLevels() {
  std::vector<SimdLevel> Levels = {SimdLevel::Scalar};
  const uint8_t Max = std::min(uint8_t(maxCompiledSimdLevel()),
                               uint8_t(detectCpuSimdLevel()));
  if (Max >= uint8_t(SimdLevel::Sse2))
    Levels.push_back(SimdLevel::Sse2);
  if (Max >= uint8_t(SimdLevel::Avx2))
    Levels.push_back(SimdLevel::Avx2);
  return Levels;
}

/// Bit equality with NaNs collapsed to one class (see the file header:
/// IEEE-754 does not pin the payload an arithmetic op gives a NaN, so
/// bitwise agreement is only required of non-NaN results).
bool bitEq(double A, double B) {
  if (std::isnan(A) && std::isnan(B))
    return true;
  uint64_t X, Y;
  std::memcpy(&X, &A, sizeof X);
  std::memcpy(&Y, &B, sizeof Y);
  return X == Y;
}

/// Asserts evalBatch over [0, N) of \p Cols matches row-wise eval bit
/// for bit under the tape's resolved kernel.
void expectBatchMatchesEval(const Tape &T, const Dataset &Data,
                            const ColumnarDataset &Cols, size_t N,
                            const char *What) {
  std::vector<double> Scratch, BatchScratch, Out(N);
  T.evalBatch(Cols, 0, N, Out.data(), BatchScratch);
  for (size_t Row = 0; Row != N; ++Row) {
    const double Ref = T.eval(Data.row(Row), Scratch);
    EXPECT_TRUE(bitEq(Ref, Out[Row]))
        << What << ": level " << simdLevelName(T.simdLevel()) << " row "
        << Row << " got " << Out[Row] << " want " << Ref;
  }
}

/// A DAG that routes row data through every tape op, with single-use
/// producers positioned so the peephole emits the fused
/// superinstructions (MulAdd, SubDiv, ...).
NumId buildAllOpsDag(NumExprBuilder &B) {
  NumId X = B.dataRef(0), Y = B.dataRef(1);
  NumId MA = B.add(B.mul(X, Y), Y);               // MulAdd
  NumId MS = B.sub(B.mul(X, B.constant(1.5)), Y); // MulSub
  NumId SM = B.mul(B.sub(X, Y), B.constant(0.5)); // SubMul
  NumId SD = B.div(B.sub(X, B.constant(0.25)),
                   B.add(B.abs(Y), B.constant(1.0))); // SubDiv
  NumId MM = B.mul(B.mul(X, B.constant(-2.0)), Y);    // MulMul
  NumId AA = B.add(B.add(X, Y), B.constant(3.0));     // AddAdd
  NumId AM = B.mul(B.add(X, B.constant(2.0)), Y);     // AddMul
  NumId Trans = B.add(B.log(B.add(B.abs(X), B.constant(0.5))),
                      B.exp(B.neg(B.abs(Y))));
  NumId Special = B.add(B.sqrt(B.abs(MA)), B.erf(SM));
  NumId Cmp = B.add(B.gt(X, Y), B.eq(X, B.constant(0.0)));
  NumId MinMax = B.max(B.min(X, Y), B.neg(SD));
  NumId Acc = B.add(MA, MS);
  Acc = B.add(Acc, B.add(MM, AA));
  Acc = B.add(Acc, B.add(AM, Trans));
  Acc = B.add(Acc, B.add(Special, Cmp));
  return B.add(Acc, MinMax);
}

Dataset randomData(size_t Rows, uint64_t Seed) {
  Dataset Data({"c0", "c1"});
  Rng R(Seed);
  for (size_t I = 0; I != Rows; ++I)
    Data.addRow({R.uniform(-4, 4), R.uniform(-4, 4)});
  return Data;
}

} // namespace

TEST(SimdKernelTest, LaneWidthReflectsForcedTier) {
  NumExprBuilder B;
  NumId Root = B.add(B.dataRef(0), B.constant(1.0));
  for (SimdLevel L : runnableLevels()) {
    SimdLevelGuard Guard(L);
    Tape T(B, Root);
    EXPECT_EQ(T.simdLevel(), L);
    EXPECT_EQ(T.laneWidth(), simdLaneWidth(L));
  }
}

TEST(SimdKernelTest, SimdOffOptionForcesScalarKernel) {
  NumExprBuilder B;
  NumId Root = B.add(B.dataRef(0), B.constant(1.0));
  TapeOptions Opts;
  Opts.Simd = false;
  Tape T(B, Root, Opts);
  EXPECT_EQ(T.simdLevel(), SimdLevel::Scalar);
  EXPECT_EQ(T.laneWidth(), 1u);
}

TEST(SimdKernelTest, EnvCapLowersActiveLevel) {
  // The override used by these tests rides the same min() as the
  // PSKETCH_SIMD_LEVEL env cap; forcing Scalar must always win.
  SimdLevelGuard Guard(SimdLevel::Scalar);
  EXPECT_EQ(activeSimdLevel(), SimdLevel::Scalar);
}

TEST(SimdKernelTest, TailSizesMatchRowwiseBitwiseAtEveryTier) {
  // Every N around the lane-group boundaries, including N smaller than
  // one lane group and N straddling the 512-row block size used above
  // this layer.
  const size_t Sizes[] = {1, 2, 3, 4, 5, 6, 7, 8, 63, 64, 65, 511, 513, 1023};
  Dataset Data = randomData(1023, 91);
  ColumnarDataset Cols(Data);
  NumExprBuilder B;
  NumId Root = buildAllOpsDag(B);
  for (SimdLevel L : runnableLevels()) {
    SimdLevelGuard Guard(L);
    Tape T(B, Root);
    ASSERT_GT(T.numFused(), 0u); // The DAG must exercise the fused ops.
    for (size_t N : Sizes)
      expectBatchMatchesEval(T, Data, Cols, N, "tail");
  }
}

TEST(SimdKernelTest, SpecialValuesThroughFusedOpsAreBitExact) {
  // NaN, +/-inf, +/-0 and denormals flowing through the fused
  // superinstructions and the compare/select ops must match the
  // row-wise interpreter at every tier — bitwise for every non-NaN
  // result (signed zeros and infinities included), and up to the
  // IEEE-unspecified payload when the result is NaN.
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  const double Inf = std::numeric_limits<double>::infinity();
  const double Den = std::numeric_limits<double>::denorm_min();
  Dataset Data({"c0", "c1"});
  const double Specials[] = {NaN, Inf, -Inf, 0.0, -0.0, Den, -Den,
                             1.0, -1.0, 1e308, -1e308, 1e-308};
  for (double A : Specials)
    for (double Bv : Specials)
      Data.addRow({A, Bv});
  // Ragged tail on purpose: 144 rows is not a multiple of 4.
  Data.addRow({NaN, 0.0});
  ColumnarDataset Cols(Data);
  NumExprBuilder B;
  NumId Root = buildAllOpsDag(B);
  for (SimdLevel L : runnableLevels()) {
    SimdLevelGuard Guard(L);
    Tape T(B, Root);
    expectBatchMatchesEval(T, Data, Cols, Data.numRows(), "specials");
  }
}

TEST(SimdKernelTest, FastTapeFmaAgreesAcrossTiers) {
  // --ffast-tape contracts fused multiply-adds to one rounding.  Scalar
  // std::fma and the AVX2 vfmadd are both correctly rounded, and the
  // SSE2 tier (no FMA instruction) falls back to scalar std::fma, so
  // all tiers still agree bit for bit *with each other* (they may
  // differ from default mode by design).
  Dataset Data = randomData(517, 92);
  ColumnarDataset Cols(Data);
  NumExprBuilder B;
  NumId Root = buildAllOpsDag(B);
  TapeOptions Opts;
  Opts.FastTape = true;
  std::vector<std::vector<double>> PerTier;
  for (SimdLevel L : runnableLevels()) {
    SimdLevelGuard Guard(L);
    Tape T(B, Root, Opts);
    std::vector<double> Scratch, Out(Data.numRows());
    T.evalBatch(Cols, 0, Data.numRows(), Out.data(), Scratch);
    PerTier.push_back(std::move(Out));
  }
  for (size_t Tier = 1; Tier < PerTier.size(); ++Tier)
    for (size_t Row = 0; Row != PerTier[0].size(); ++Row)
      EXPECT_TRUE(bitEq(PerTier[0][Row], PerTier[Tier][Row]))
          << "tier " << Tier << " row " << Row;
}

TEST(SimdKernelTest, RowTallySplitsFullGroupsAndTail) {
  NumExprBuilder B;
  NumId Root = B.add(B.dataRef(0), B.dataRef(1));
  Dataset Data = randomData(515, 93);
  ColumnarDataset Cols(Data);
  for (SimdLevel L : runnableLevels()) {
    SimdLevelGuard Guard(L);
    Tape T(B, Root);
    (void)takeSimdRowTally(); // Reset this thread's counters.
    std::vector<double> Scratch, Out(Data.numRows());
    T.evalBatch(Cols, 0, Data.numRows(), Out.data(), Scratch);
    const SimdRowTally Tally = takeSimdRowTally();
    const unsigned W = T.laneWidth();
    const uint64_t ExpectTail = W > 1 ? 515 % W : 515;
    EXPECT_EQ(Tally.RowsSimd, 515 - ExpectTail)
        << simdLevelName(T.simdLevel());
    EXPECT_EQ(Tally.RowsTail, ExpectTail) << simdLevelName(T.simdLevel());
  }
  // Credit round-trips: what a worker takes, the chain gets back.
  (void)takeSimdRowTally();
  creditSimdRowTally({40, 2});
  creditSimdRowTally({8, 1});
  const SimdRowTally Sum = takeSimdRowTally();
  EXPECT_EQ(Sum.RowsSimd, 48u);
  EXPECT_EQ(Sum.RowsTail, 3u);
}

TEST(SimdKernelTest, LikelihoodSumsIdenticalAcrossTiers) {
  // End to end through LikelihoodFunction: the block-partial Kahan +
  // tree reduction must give the exact same total at every tier.
  Dataset Data = randomData(1500, 94);
  ColumnarDataset Cols(Data);
  NumExprBuilder B;
  NumId Root = buildAllOpsDag(B);
  std::vector<double> Totals;
  for (SimdLevel L : runnableLevels()) {
    SimdLevelGuard Guard(L);
    Tape T(B, Root);
    std::vector<double> Scratch, Out(Data.numRows());
    T.evalBatch(Cols, 0, Data.numRows(), Out.data(), Scratch);
    double Sum = 0;
    for (double V : Out)
      Sum += V;
    Totals.push_back(Sum);
  }
  for (size_t I = 1; I < Totals.size(); ++I)
    EXPECT_TRUE(bitEq(Totals[0], Totals[I])) << "tier " << I;
}
