//===- tests/likelihood/SimdDifferentialTest.cpp - SIMD vs scalar fuzz ----===//
//
// Differential fuzzing of the SIMD backend (DESIGN.md §11):
//
//  * Default mode — random tapes over random data must evaluate
//    bit-identically on every compiled-in tier and with --no-simd.
//    This is the contract that lets `psketch synth` enable SIMD by
//    default without perturbing a single MH decision.
//
//  * --fast-simd-math — the polynomial Log/Exp kernels are
//    value-changing relative to libm but must stay (a) within the
//    tolerance documented in likelihood/TapeKernels.h, (b) exactly
//    libm on the special operands routed to the fallback, and (c)
//    bit-identical across tiers (same pure-IEEE per-lane sequence, so
//    lane width cannot change results).
//
//===----------------------------------------------------------------------===//

#include "likelihood/TapeKernels.h"

#include "likelihood/Tape.h"
#include "support/Rng.h"
#include "support/Simd.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

using namespace psketch;

namespace {

struct SimdLevelGuard {
  explicit SimdLevelGuard(SimdLevel L) { setSimdLevelOverride(L); }
  ~SimdLevelGuard() { clearSimdLevelOverride(); }
};

std::vector<SimdLevel> runnableLevels() {
  std::vector<SimdLevel> Levels = {SimdLevel::Scalar};
  const uint8_t Max = std::min(uint8_t(maxCompiledSimdLevel()),
                               uint8_t(detectCpuSimdLevel()));
  if (Max >= uint8_t(SimdLevel::Sse2))
    Levels.push_back(SimdLevel::Sse2);
  if (Max >= uint8_t(SimdLevel::Avx2))
    Levels.push_back(SimdLevel::Avx2);
  return Levels;
}

/// Bit equality with NaNs collapsed to one class: IEEE-754 leaves the
/// sign/payload of a NaN produced by an arithmetic op unspecified (and
/// the compiler may commute `a + b` when both operands are NaN), so
/// bitwise agreement is only demanded of non-NaN results.
bool bitEq(double A, double B) {
  if (std::isnan(A) && std::isnan(B))
    return true;
  uint64_t X, Y;
  std::memcpy(&X, &A, sizeof X);
  std::memcpy(&Y, &B, sizeof Y);
  return X == Y;
}

/// Random DAG over two data columns exercising the full op set,
/// including constructions the peephole fuses.
NumId randomDag(NumExprBuilder &B, Rng &R) {
  std::vector<NumId> Pool = {B.dataRef(0), B.dataRef(1),
                             B.constant(R.uniform(-2, 2)),
                             B.constant(R.uniform(0.1, 3))};
  for (int I = 0; I != 40; ++I) {
    NumId X = Pool[R.index(Pool.size())];
    NumId Y = Pool[R.index(Pool.size())];
    switch (R.index(12)) {
    case 0:
      Pool.push_back(B.add(X, Y));
      break;
    case 1:
      Pool.push_back(B.sub(X, Y));
      break;
    case 2:
      Pool.push_back(B.mul(X, Y));
      break;
    case 3:
      // Divisor bounded away from zero to keep values finite-ish; the
      // special-value test covers the singular cases directly.
      Pool.push_back(B.div(X, B.add(B.abs(Y), B.constant(0.5))));
      break;
    case 4:
      Pool.push_back(B.neg(X));
      break;
    case 5:
      Pool.push_back(B.log(B.add(B.abs(X), B.constant(0.25))));
      break;
    case 6:
      Pool.push_back(B.exp(B.neg(B.abs(X))));
      break;
    case 7:
      Pool.push_back(B.sqrt(B.abs(X)));
      break;
    case 8:
      Pool.push_back(B.erf(X));
      break;
    case 9:
      Pool.push_back(B.max(X, Y));
      break;
    case 10:
      Pool.push_back(B.min(X, Y));
      break;
    case 11:
      Pool.push_back(B.add(B.gt(X, Y), B.eq(X, X)));
      break;
    }
  }
  // Fold the tail of the pool so the root depends on many nodes.
  NumId Root = Pool.back();
  for (size_t I = Pool.size() - 5; I < Pool.size() - 1; ++I)
    Root = B.add(Root, Pool[I]);
  return Root;
}

Dataset randomData(size_t Rows, Rng &R) {
  Dataset Data({"c0", "c1"});
  for (size_t I = 0; I != Rows; ++I)
    Data.addRow({R.uniform(-5, 5), R.uniform(-5, 5)});
  return Data;
}

/// Evaluates \p Root over all rows with the given options at the given
/// (capped) tier.
std::vector<double> evalAt(const NumExprBuilder &B, NumId Root,
                           const ColumnarDataset &Cols, SimdLevel L,
                           TapeOptions Opts = {}) {
  SimdLevelGuard Guard(L);
  Tape T(B, Root, Opts);
  std::vector<double> Scratch, Out(Cols.numRows());
  T.evalBatch(Cols, 0, Cols.numRows(), Out.data(), Scratch);
  return Out;
}

} // namespace

TEST(SimdDifferentialTest, RandomTapesBitIdenticalAcrossTiersAndNoSimd) {
  Rng R(20260807);
  for (int Trial = 0; Trial != 25; ++Trial) {
    NumExprBuilder B;
    NumId Root = randomDag(B, R);
    // Row count straddles lane groups and the 512-row block size.
    Dataset Data = randomData(512 + R.index(60) + 1, R);
    ColumnarDataset Cols(Data);
    TapeOptions NoSimd;
    NoSimd.Simd = false;
    const std::vector<double> Ref =
        evalAt(B, Root, Cols, SimdLevel::Scalar, NoSimd);
    for (SimdLevel L : runnableLevels()) {
      const std::vector<double> Got = evalAt(B, Root, Cols, L);
      ASSERT_EQ(Got.size(), Ref.size());
      for (size_t Row = 0; Row != Ref.size(); ++Row)
        ASSERT_TRUE(bitEq(Ref[Row], Got[Row]))
            << "trial " << Trial << " level " << simdLevelName(L)
            << " row " << Row << ": " << Got[Row] << " != " << Ref[Row];
    }
  }
}

TEST(SimdDifferentialTest, FastLogWithinToleranceAndExactOnSpecials) {
  Rng R(101);
  // Sweep magnitudes from denormal-adjacent to huge; the documented
  // bound is ~5e-15 relative, asserted here with 1e-13 headroom.
  for (int I = 0; I != 20000; ++I) {
    const double Mag = std::pow(10.0, R.uniform(-300, 300));
    const double X = Mag * R.uniform(0.5, 2.0);
    const double Ref = std::log(X);
    const double Got = fastLog(X);
    ASSERT_LE(std::abs(Got - Ref), 1e-13 * std::abs(Ref) + 1e-16)
        << "x = " << X;
  }
  // Special operands route to libm and must be bit-exact with it.
  const double Specials[] = {0.0, -0.0, -1.0, -1e300,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min(),
                             4.9e-324, 1e-320,
                             std::numeric_limits<double>::max()};
  for (double X : Specials)
    EXPECT_TRUE(bitEq(fastLog(X), std::log(X))) << "x = " << X;
  EXPECT_TRUE(bitEq(fastLog(1.0), 0.0));
}

TEST(SimdDifferentialTest, FastExpWithinToleranceAndExactOnSpecials) {
  Rng R(102);
  for (int I = 0; I != 20000; ++I) {
    const double X = R.uniform(-700, 700);
    const double Ref = std::exp(X);
    const double Got = fastExp(X);
    ASSERT_LE(std::abs(Got - Ref), 1e-13 * Ref) << "x = " << X;
  }
  const double Specials[] = {709.0, -709.0, 1000.0, -1000.0,
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN()};
  for (double X : Specials)
    EXPECT_TRUE(bitEq(fastExp(X), std::exp(X))) << "x = " << X;
  EXPECT_TRUE(bitEq(fastExp(0.0), 1.0));
}

TEST(SimdDifferentialTest, FastSimdMathBitIdenticalAcrossTiers) {
  // Value-changing vs libm, but the polynomial kernels are pure IEEE
  // arithmetic applied per lane in a fixed sequence — so every tier
  // (and the scalar tail inside each tier) must produce the same bits.
  Rng R(303);
  for (int Trial = 0; Trial != 10; ++Trial) {
    NumExprBuilder B;
    NumId Root = randomDag(B, R);
    Dataset Data = randomData(512 + R.index(60) + 1, R);
    ColumnarDataset Cols(Data);
    TapeOptions Fast;
    Fast.FastSimdMath = true;
    std::vector<std::vector<double>> PerTier;
    for (SimdLevel L : runnableLevels())
      PerTier.push_back(evalAt(B, Root, Cols, L, Fast));
    for (size_t Tier = 1; Tier < PerTier.size(); ++Tier)
      for (size_t Row = 0; Row != PerTier[0].size(); ++Row)
        ASSERT_TRUE(bitEq(PerTier[0][Row], PerTier[Tier][Row]))
            << "trial " << Trial << " tier " << Tier << " row " << Row;
  }
}

TEST(SimdDifferentialTest, FastSimdMathNearLibmOnSmoothTape) {
  // Whole-tape comparison on a smooth log/exp pipeline (no compares to
  // amplify a last-ulp difference into a 0/1 flip): per-row agreement
  // with the libm tape within a small multiple of the per-op bound.
  NumExprBuilder B;
  NumId X = B.dataRef(0), Y = B.dataRef(1);
  NumId Root = B.add(B.log(B.add(B.abs(X), B.constant(0.25))),
                     B.exp(B.neg(B.mul(Y, Y))));
  Rng R(404);
  Dataset Data = randomData(777, R);
  ColumnarDataset Cols(Data);
  TapeOptions Fast;
  Fast.FastSimdMath = true;
  const std::vector<double> Libm =
      evalAt(B, Root, Cols, SimdLevel::Scalar);
  const std::vector<double> Poly =
      evalAt(B, Root, Cols, SimdLevel::Scalar, Fast);
  for (size_t Row = 0; Row != Libm.size(); ++Row)
    EXPECT_NEAR(Poly[Row], Libm[Row],
                1e-12 * std::max(1.0, std::abs(Libm[Row])))
        << "row " << Row;
}
