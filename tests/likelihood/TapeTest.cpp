//===- tests/likelihood/TapeTest.cpp - Tape compiler unit tests -----------===//

#include "likelihood/Tape.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(TapeTest, EvaluatesSimpleExpression) {
  NumExprBuilder B;
  NumId Root = B.add(B.mul(B.dataRef(0), B.constant(2.0)), B.constant(1.0));
  Tape T(B, Root);
  std::vector<double> Scratch;
  EXPECT_DOUBLE_EQ(T.eval({3.0}, Scratch), 7.0);
  EXPECT_DOUBLE_EQ(T.eval({-1.0}, Scratch), -1.0);
}

TEST(TapeTest, MatchesBuilderEvalOnRandomDags) {
  Rng R(99);
  for (int Trial = 0; Trial < 50; ++Trial) {
    NumExprBuilder B;
    std::vector<NumId> Pool = {B.dataRef(0), B.dataRef(1),
                               B.constant(R.uniform(-2, 2))};
    for (int I = 0; I < 30; ++I) {
      NumId A = Pool[R.index(Pool.size())];
      NumId C = Pool[R.index(Pool.size())];
      switch (R.index(7)) {
      case 0:
        Pool.push_back(B.add(A, C));
        break;
      case 1:
        Pool.push_back(B.sub(A, C));
        break;
      case 2:
        Pool.push_back(B.mul(A, C));
        break;
      case 3:
        Pool.push_back(B.max(A, C));
        break;
      case 4:
        Pool.push_back(B.erf(A));
        break;
      case 5:
        Pool.push_back(B.abs(A));
        break;
      case 6:
        Pool.push_back(B.exp(B.min(A, B.constant(3.0))));
        break;
      }
    }
    NumId Root = Pool.back();
    Tape T(B, Root);
    std::vector<double> Scratch;
    std::vector<double> Row = {R.uniform(-3, 3), R.uniform(-3, 3)};
    EXPECT_NEAR(T.eval(Row, Scratch), B.eval(Root, Row), 1e-12);
  }
}

TEST(TapeTest, PrunesUnreachableNodes) {
  NumExprBuilder B;
  // Build garbage the root never uses.
  for (int I = 0; I < 100; ++I)
    B.add(B.dataRef(0), B.constant(double(I) + 0.5));
  NumId Root = B.mul(B.dataRef(1), B.constant(3.0));
  Tape T(B, Root);
  std::vector<double> Scratch;
  EXPECT_LT(T.size(), 10u);
  EXPECT_DOUBLE_EQ(T.eval({0.0, 2.0}, Scratch), 6.0);
}

TEST(TapeTest, SharedSubexpressionsEvaluatedOnce) {
  NumExprBuilder B;
  NumId Shared = B.mul(B.dataRef(0), B.dataRef(0));
  NumId Root = B.add(Shared, Shared);
  Tape T(B, Root);
  // data^2 appears once in the tape thanks to hash consing: nodes are
  // {data, mul, add}.
  std::vector<double> Scratch;
  EXPECT_EQ(T.size(), 3u);
  EXPECT_DOUBLE_EQ(T.eval({3.0}, Scratch), 18.0);
}

TEST(TapeTest, ScratchReuseGivesSameResults) {
  NumExprBuilder B;
  NumId Root = B.gaussianLogPdf(B.dataRef(0), B.constant(1.0),
                                B.constant(2.0));
  Tape T(B, Root);
  std::vector<double> Scratch;
  double First = T.eval({0.5}, Scratch);
  double Second = T.eval({0.5}, Scratch);
  EXPECT_DOUBLE_EQ(First, Second);
  // Different rows through the same scratch.
  EXPECT_NE(T.eval({0.5}, Scratch), T.eval({2.5}, Scratch));
}

TEST(TapeTest, ConstantRootTape) {
  NumExprBuilder B;
  NumId Root = B.constant(42.0);
  Tape T(B, Root);
  std::vector<double> Scratch;
  EXPECT_EQ(T.size(), 1u);
  EXPECT_DOUBLE_EQ(T.eval({}, Scratch), 42.0);
}
