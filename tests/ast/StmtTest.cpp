//===- tests/ast/StmtTest.cpp - Statement node unit tests -----------------===//

#include "ast/Stmt.h"

#include "ast/Program.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

StmtPtr makeAssign(const char *Name, double V) {
  return std::make_unique<AssignStmt>(LValue(Name), ConstExpr::real(V));
}

} // namespace

TEST(StmtTest, SkipCloneAndKind) {
  SkipStmt S;
  EXPECT_EQ(S.getKind(), Stmt::Kind::Skip);
  StmtPtr C = S.clone();
  EXPECT_TRUE(isa<SkipStmt>(C.get()));
}

TEST(StmtTest, AssignScalarTarget) {
  StmtPtr S = makeAssign("x", 1.0);
  auto &A = cast<AssignStmt>(*S);
  EXPECT_EQ(A.getTarget().Name, "x");
  EXPECT_FALSE(A.getTarget().isArrayElement());
  EXPECT_FALSE(A.isProbabilistic());
}

TEST(StmtTest, AssignArrayElementTarget) {
  AssignStmt A(LValue("arr", ConstExpr::integer(3)), ConstExpr::real(0));
  EXPECT_TRUE(A.getTarget().isArrayElement());
  StmtPtr C = A.clone();
  auto &CA = cast<AssignStmt>(*C);
  EXPECT_TRUE(CA.getTarget().isArrayElement());
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(*CA.getTarget().Index).getValue(), 3.0);
}

TEST(StmtTest, ProbabilisticAssignDetected) {
  std::vector<ExprPtr> Args;
  Args.push_back(ConstExpr::real(0.5));
  AssignStmt A(LValue("z"), std::make_unique<SampleExpr>(
                                DistKind::Bernoulli, std::move(Args)));
  EXPECT_TRUE(A.isProbabilistic());
}

TEST(StmtTest, NestedSampleIsNotProbabilisticForm) {
  // x = 1 + Bernoulli(...) has a draw inside, but the statement is a
  // deterministic assignment syntactically.
  std::vector<ExprPtr> Args;
  Args.push_back(ConstExpr::real(0.5));
  ExprPtr Draw =
      std::make_unique<SampleExpr>(DistKind::Bernoulli, std::move(Args));
  AssignStmt A(LValue("x"),
               std::make_unique<BinaryExpr>(BinaryOp::Add,
                                            ConstExpr::real(1.0),
                                            std::move(Draw)));
  EXPECT_FALSE(A.isProbabilistic());
}

TEST(StmtTest, BlockAppendsAndClones) {
  BlockStmt B;
  B.append(makeAssign("x", 1.0));
  B.append(makeAssign("y", 2.0));
  EXPECT_EQ(B.getStmts().size(), 2u);
  auto Copy = B.cloneBlock();
  EXPECT_EQ(Copy->getStmts().size(), 2u);
  EXPECT_EQ(cast<AssignStmt>(*Copy->getStmts()[1]).getTarget().Name, "y");
}

TEST(StmtTest, IfHoldsBranches) {
  auto Then = std::make_unique<BlockStmt>();
  Then->append(makeAssign("x", 1.0));
  auto Else = std::make_unique<BlockStmt>();
  IfStmt I(ConstExpr::boolean(true), std::move(Then), std::move(Else));
  EXPECT_EQ(I.getThen().getStmts().size(), 1u);
  EXPECT_TRUE(I.getElse().empty());
  StmtPtr C = I.clone();
  EXPECT_EQ(cast<IfStmt>(*C).getThen().getStmts().size(), 1u);
}

TEST(StmtTest, ForHoldsRangeAndBody) {
  auto Body = std::make_unique<BlockStmt>();
  Body->append(makeAssign("x", 0.0));
  ForStmt F("i", ConstExpr::integer(0), ConstExpr::integer(5),
            std::move(Body));
  EXPECT_EQ(F.getIndexVar(), "i");
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(F.getHi()).getValue(), 5.0);
  StmtPtr C = F.clone();
  EXPECT_EQ(cast<ForStmt>(*C).getIndexVar(), "i");
  EXPECT_EQ(cast<ForStmt>(*C).getBody().getStmts().size(), 1u);
}

TEST(StmtTest, ObserveClones) {
  ObserveStmt O(std::make_unique<VarExpr>("flag"));
  StmtPtr C = O.clone();
  EXPECT_EQ(cast<VarExpr>(cast<ObserveStmt>(*C).getCond()).getName(),
            "flag");
}

TEST(StmtTest, ProgramCloneIsDeep) {
  Program P;
  P.setName("demo");
  P.getParams().push_back({"n", Type::integer()});
  P.getDecls().push_back(LocalDecl("x", ScalarKind::Real));
  P.getBody().append(makeAssign("x", 1.0));
  P.getReturns().push_back("x");
  auto Copy = P.clone();
  EXPECT_EQ(Copy->getName(), "demo");
  EXPECT_EQ(Copy->getDecls().size(), 1u);
  EXPECT_EQ(Copy->getBody().getStmts().size(), 1u);
  // Mutating the copy does not affect the original.
  Copy->getBody().append(makeAssign("x", 2.0));
  EXPECT_EQ(P.getBody().getStmts().size(), 1u);
}

TEST(StmtTest, ProgramLookups) {
  Program P;
  P.getParams().push_back({"n", Type::integer()});
  P.getDecls().push_back(
      LocalDecl("a", ScalarKind::Real, ConstExpr::integer(4)));
  EXPECT_NE(P.findParam("n"), nullptr);
  EXPECT_EQ(P.findParam("zzz"), nullptr);
  ASSERT_NE(P.findDecl("a"), nullptr);
  EXPECT_TRUE(P.findDecl("a")->isArray());
  EXPECT_EQ(P.findDecl("a")->type(), Type::array(ScalarKind::Real));
}
