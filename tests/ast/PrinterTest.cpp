//===- tests/ast/PrinterTest.cpp - Pretty-printer unit tests --------------===//

#include "ast/ASTPrinter.h"

#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

/// Parses an expression (must succeed) and returns its printed form.
std::string reprint(const std::string &Source) {
  DiagEngine Diags;
  ExprPtr E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E ? toString(*E) : "<parse error>";
}

} // namespace

TEST(PrinterTest, Literals) {
  EXPECT_EQ(reprint("1.5"), "1.5");
  EXPECT_EQ(reprint("3"), "3");
  EXPECT_EQ(reprint("true"), "true");
  EXPECT_EQ(reprint("false"), "false");
}

TEST(PrinterTest, RealLiteralKeepsDecimalPoint) {
  // Reals must re-lex as reals even when integral-valued.
  EXPECT_EQ(reprint("2.0"), "2.0");
  EXPECT_EQ(reprint("100.0"), "100.0");
}

TEST(PrinterTest, PrecedenceNeedsNoParensWhenNatural) {
  EXPECT_EQ(reprint("a + b * c"), "a + b * c");
  EXPECT_EQ(reprint("a * b + c"), "a * b + c");
}

TEST(PrinterTest, ParensPreservedWhenRequired) {
  EXPECT_EQ(reprint("(a + b) * c"), "(a + b) * c");
  EXPECT_EQ(reprint("a * (b + c)"), "a * (b + c)");
}

TEST(PrinterTest, LeftAssociativeSubtraction) {
  EXPECT_EQ(reprint("a - b - c"), "a - b - c");
  EXPECT_EQ(reprint("a - (b - c)"), "a - (b - c)");
}

TEST(PrinterTest, BooleanOperators) {
  EXPECT_EQ(reprint("a && b || c"), "a && b || c");
  EXPECT_EQ(reprint("a && (b || c)"), "a && (b || c)");
  EXPECT_EQ(reprint("!a && b"), "!a && b");
  EXPECT_EQ(reprint("!(a && b)"), "!(a && b)");
}

TEST(PrinterTest, Comparisons) {
  EXPECT_EQ(reprint("a + b > c"), "a + b > c");
  EXPECT_EQ(reprint("a > b && c < d"), "a > b && c < d");
  EXPECT_EQ(reprint("a == b"), "a == b");
}

TEST(PrinterTest, IndexAndIte) {
  EXPECT_EQ(reprint("skills[p1[2]]"), "skills[p1[2]]");
  EXPECT_EQ(reprint("ite(z, 1.0, 2.0)"), "ite(z, 1.0, 2.0)");
}

TEST(PrinterTest, Distributions) {
  EXPECT_EQ(reprint("Gaussian(100.0, 10.0)"), "Gaussian(100.0, 10.0)");
  EXPECT_EQ(reprint("Bernoulli(0.5)"), "Bernoulli(0.5)");
}

TEST(PrinterTest, HolesAndFormals) {
  EXPECT_EQ(reprint("?\?"), "?\?");
  EXPECT_EQ(reprint("?\?(a, b)"), "?\?(a, b)");
  EXPECT_EQ(reprint("%0 + %1"), "%0 + %1");
}

TEST(PrinterTest, NegativeConstantFoldedByParser) {
  EXPECT_EQ(reprint("-2.5"), "-2.5");
  // In an operand position the negative literal is parenthesized.
  EXPECT_EQ(reprint("a - -2.5"), "a - (-2.5)");
}

TEST(PrinterTest, ProgramLayout) {
  const char *Source = R"(
program Tiny(n: int) {
  x: real;
  a: real[n];
  x ~ Gaussian(0.0, 1.0);
  for i in 0..n {
    a[i] = x + 1.0;
  }
  observe(x > 0.0);
  return x, a;
}
)";
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  ASSERT_TRUE(P) << Diags.str();
  std::string Printed = toString(*P);
  EXPECT_NE(Printed.find("program Tiny(n: int) {"), std::string::npos);
  EXPECT_NE(Printed.find("  x: real;"), std::string::npos);
  EXPECT_NE(Printed.find("  a: real[n];"), std::string::npos);
  EXPECT_NE(Printed.find("  x ~ Gaussian(0.0, 1.0);"), std::string::npos);
  EXPECT_NE(Printed.find("  for i in 0..n {"), std::string::npos);
  EXPECT_NE(Printed.find("  observe(x > 0.0);"), std::string::npos);
  EXPECT_NE(Printed.find("  return x, a;"), std::string::npos);
}

TEST(PrinterTest, IfElseLayout) {
  const char *Source = R"(
program P() {
  x: real;
  b: bool;
  b ~ Bernoulli(0.5);
  if (b) {
    x = 1.0;
  } else {
    x = 2.0;
  }
  return x;
}
)";
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  ASSERT_TRUE(P) << Diags.str();
  std::string Printed = toString(*P);
  EXPECT_NE(Printed.find("if (b) {"), std::string::npos);
  EXPECT_NE(Printed.find("} else {"), std::string::npos);
}
