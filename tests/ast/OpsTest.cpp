//===- tests/ast/OpsTest.cpp - Operator helper unit tests -----------------===//

#include "ast/Ops.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace psketch;

TEST(OpsTest, Names) {
  EXPECT_STREQ(binaryOpName(BinaryOp::Add), "+");
  EXPECT_STREQ(binaryOpName(BinaryOp::And), "&&");
  EXPECT_STREQ(binaryOpName(BinaryOp::Eq), "==");
  EXPECT_STREQ(unaryOpName(UnaryOp::Not), "!");
  EXPECT_STREQ(unaryOpName(UnaryOp::Neg), "-");
  EXPECT_STREQ(distKindName(DistKind::Gaussian), "Gaussian");
  EXPECT_STREQ(distKindName(DistKind::Poisson), "Poisson");
  EXPECT_STREQ(scalarKindName(ScalarKind::Bool), "bool");
}

TEST(OpsTest, DistArity) {
  EXPECT_EQ(distArity(DistKind::Gaussian), 2u);
  EXPECT_EQ(distArity(DistKind::Beta), 2u);
  EXPECT_EQ(distArity(DistKind::Gamma), 2u);
  EXPECT_EQ(distArity(DistKind::Bernoulli), 1u);
  EXPECT_EQ(distArity(DistKind::Poisson), 1u);
}

TEST(OpsTest, DistReturnsBoolOnlyForBernoulli) {
  EXPECT_TRUE(distReturnsBool(DistKind::Bernoulli));
  EXPECT_FALSE(distReturnsBool(DistKind::Gaussian));
  EXPECT_FALSE(distReturnsBool(DistKind::Poisson));
}

TEST(OpsTest, OperatorClasses) {
  EXPECT_TRUE(isArithOp(BinaryOp::Add));
  EXPECT_TRUE(isArithOp(BinaryOp::Mul));
  EXPECT_FALSE(isArithOp(BinaryOp::And));
  EXPECT_TRUE(isLogicalOp(BinaryOp::Or));
  EXPECT_FALSE(isLogicalOp(BinaryOp::Gt));
  EXPECT_TRUE(isCompareOp(BinaryOp::Lt));
  EXPECT_FALSE(isCompareOp(BinaryOp::Eq));
}

TEST(OpsTest, EquivalentOpsExcludeSelfAndKeepClass) {
  auto Arith = equivalentOps(BinaryOp::Add);
  EXPECT_EQ(Arith.size(), 2u);
  EXPECT_EQ(std::count(Arith.begin(), Arith.end(), BinaryOp::Add), 0);
  EXPECT_EQ(std::count(Arith.begin(), Arith.end(), BinaryOp::Sub), 1);
  EXPECT_EQ(std::count(Arith.begin(), Arith.end(), BinaryOp::Mul), 1);

  auto Logic = equivalentOps(BinaryOp::And);
  ASSERT_EQ(Logic.size(), 1u);
  EXPECT_EQ(Logic[0], BinaryOp::Or);

  auto Cmp = equivalentOps(BinaryOp::Gt);
  ASSERT_EQ(Cmp.size(), 1u);
  EXPECT_EQ(Cmp[0], BinaryOp::Lt);
}

TEST(OpsTest, EqualityHasNoSwapPartners) {
  EXPECT_TRUE(equivalentOps(BinaryOp::Eq).empty());
}

TEST(OpsTest, PrecedenceOrdering) {
  EXPECT_LT(binaryOpPrecedence(BinaryOp::Or),
            binaryOpPrecedence(BinaryOp::And));
  EXPECT_LT(binaryOpPrecedence(BinaryOp::And),
            binaryOpPrecedence(BinaryOp::Eq));
  EXPECT_LT(binaryOpPrecedence(BinaryOp::Eq),
            binaryOpPrecedence(BinaryOp::Gt));
  EXPECT_LT(binaryOpPrecedence(BinaryOp::Gt),
            binaryOpPrecedence(BinaryOp::Add));
  EXPECT_LT(binaryOpPrecedence(BinaryOp::Add),
            binaryOpPrecedence(BinaryOp::Mul));
  EXPECT_EQ(binaryOpPrecedence(BinaryOp::Add),
            binaryOpPrecedence(BinaryOp::Sub));
}

TEST(OpsTest, TypeSpellings) {
  EXPECT_EQ(Type::real().str(), "real");
  EXPECT_EQ(Type::array(ScalarKind::Int).str(), "int[]");
  EXPECT_EQ(Type::boolean().str(), "bool");
}

TEST(OpsTest, TypePredicates) {
  EXPECT_TRUE(Type::real().isNumeric());
  EXPECT_TRUE(Type::integer().isNumeric());
  EXPECT_FALSE(Type::boolean().isNumeric());
  EXPECT_FALSE(Type::array(ScalarKind::Real).isNumeric());
  EXPECT_EQ(Type::array(ScalarKind::Real).element(), Type::real());
}
