//===- tests/ast/UtilTest.cpp - AST utility unit tests --------------------===//

#include "ast/ASTUtil.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

ExprPtr parse(const std::string &Source) {
  DiagEngine Diags;
  ExprPtr E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

} // namespace

TEST(UtilTest, ExprSizeCountsNodes) {
  EXPECT_EQ(exprSize(*parse("x")), 1u);
  EXPECT_EQ(exprSize(*parse("x + y")), 3u);
  EXPECT_EQ(exprSize(*parse("ite(a, b + c, d)")), 6u);
  EXPECT_EQ(exprSize(*parse("Gaussian(x, 1.0)")), 3u);
}

TEST(UtilTest, ExprDepth) {
  EXPECT_EQ(exprDepth(*parse("x")), 1u);
  EXPECT_EQ(exprDepth(*parse("x + y")), 2u);
  EXPECT_EQ(exprDepth(*parse("x + y * z")), 3u);
}

TEST(UtilTest, ForEachChildSlotVisitsDirectChildren) {
  ExprPtr E = parse("ite(a, b, c)");
  int Count = 0;
  forEachChildSlot(*E, [&](ExprPtr &) { ++Count; });
  EXPECT_EQ(Count, 3);
}

TEST(UtilTest, CollectExprSlotsIncludesRoot) {
  ExprPtr E = parse("x + y");
  std::vector<ExprPtr *> Slots;
  collectExprSlots(E, Slots);
  ASSERT_EQ(Slots.size(), 3u);
  EXPECT_EQ(Slots[0], &E);
}

TEST(UtilTest, StructuralEqualityIgnoresLocations) {
  ExprPtr A = parse("x + 1.0 * y");
  ExprPtr B = parse("x   +   1.0*y");
  EXPECT_TRUE(structurallyEqual(*A, *B));
}

TEST(UtilTest, StructuralInequality) {
  EXPECT_FALSE(structurallyEqual(*parse("x + y"), *parse("x - y")));
  EXPECT_FALSE(structurallyEqual(*parse("x"), *parse("y")));
  EXPECT_FALSE(structurallyEqual(*parse("1.0"), *parse("1")));
  EXPECT_FALSE(
      structurallyEqual(*parse("Gaussian(x, 1.0)"), *parse("Beta(x, 1.0)")));
  EXPECT_FALSE(structurallyEqual(*parse("%0"), *parse("%1")));
}

TEST(UtilTest, StructuralHashConsistentWithEquality) {
  ExprPtr A = parse("ite(z, Gaussian(0.0, 1.0), Gaussian(10.0, 2.0))");
  ExprPtr B = A->clone();
  EXPECT_EQ(structuralHash(*A), structuralHash(*B));
}

TEST(UtilTest, StructuralHashUsuallyDiffers) {
  // Not a guarantee, but these simple cases must not collide.
  EXPECT_NE(structuralHash(*parse("x + y")), structuralHash(*parse("x - y")));
  EXPECT_NE(structuralHash(*parse("1.0")), structuralHash(*parse("2.0")));
}

TEST(UtilTest, SubstituteHoleArgsReplacesFormals) {
  ExprPtr Completion = parse("Gaussian(%0, 15.0) > Gaussian(%1, 15.0)");
  ExprPtr A0 = parse("skills[0]");
  ExprPtr A1 = parse("skills[1]");
  ExprPtr Result =
      substituteHoleArgs(*Completion, {A0.get(), A1.get()});
  EXPECT_EQ(toString(*Result),
            "Gaussian(skills[0], 15.0) > Gaussian(skills[1], 15.0)");
}

TEST(UtilTest, SubstituteHoleArgsClonesActuals) {
  ExprPtr Completion = parse("%0 + %0");
  ExprPtr Actual = parse("y");
  ExprPtr Result = substituteHoleArgs(*Completion, {Actual.get()});
  auto &B = cast<BinaryExpr>(*Result);
  EXPECT_NE(&B.getLHS(), &B.getRHS());
  EXPECT_EQ(toString(*Result), "y + y");
}

TEST(UtilTest, ContainsSampleAndHole) {
  EXPECT_TRUE(containsSample(*parse("1.0 + Gaussian(0.0, 1.0)")));
  EXPECT_FALSE(containsSample(*parse("1.0 + x")));
  EXPECT_TRUE(containsHole(*parse("x + ??")));
  EXPECT_FALSE(containsHole(*parse("x + y")));
}

TEST(UtilTest, CollectHolesFindsAllInOrder) {
  const char *Source = R"(
program S(n: int) {
  x: real;
  b: bool;
  x = ??;
  b = ??(x, n);
  observe(b);
  return x;
}
)";
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  ASSERT_TRUE(P) << Diags.str();
  auto Holes = collectHoles(*P);
  ASSERT_EQ(Holes.size(), 2u);
  EXPECT_EQ(Holes[0]->getHoleId(), 0u);
  EXPECT_EQ(Holes[0]->getNumArgs(), 0u);
  EXPECT_EQ(Holes[1]->getHoleId(), 1u);
  EXPECT_EQ(Holes[1]->getNumArgs(), 2u);
}

TEST(UtilTest, ForEachStmtExprSlotReachesAllStatementExprs) {
  const char *Source = R"(
program S(n: int) {
  x: real;
  a: real[n];
  x = 1.0;
  a[2] = x;
  observe(x > 0.0);
  if (x > 1.0) {
    x = 2.0;
  }
  for i in 0..n {
    x = 3.0;
  }
  return x;
}
)";
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  ASSERT_TRUE(P) << Diags.str();
  int Count = 0;
  forEachStmtExprSlot(P->getBody(), [&](ExprPtr &) { ++Count; });
  // x=1.0 (1), a[2]=x (index + value = 2), observe (1), if cond +
  // nested assign (2), for lo/hi + nested assign (3).
  EXPECT_EQ(Count, 9);
}

TEST(UtilTest, StmtStructuralEquality) {
  const char *Source = R"(
program S() {
  x: real;
  x = 1.0;
  observe(x > 0.0);
  return x;
}
)";
  DiagEngine D1, D2;
  auto P1 = parseProgramSource(Source, D1);
  auto P2 = parseProgramSource(Source, D2);
  ASSERT_TRUE(P1 && P2);
  EXPECT_TRUE(structurallyEqual(P1->getBody(), P2->getBody()));
  auto P3 = P1->clone();
  P3->getBody().append(std::make_unique<SkipStmt>());
  EXPECT_FALSE(structurallyEqual(P1->getBody(), P3->getBody()));
}
