//===- tests/ast/ExprTest.cpp - Expression node unit tests ----------------===//

#include "ast/Expr.h"

#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(ExprTest, ConstFactories) {
  ExprPtr R = ConstExpr::real(3.5);
  ExprPtr B = ConstExpr::boolean(true);
  ExprPtr I = ConstExpr::integer(-4);
  EXPECT_EQ(cast<ConstExpr>(*R).getScalarKind(), ScalarKind::Real);
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(*R).getValue(), 3.5);
  EXPECT_EQ(cast<ConstExpr>(*B).getScalarKind(), ScalarKind::Bool);
  EXPECT_TRUE(cast<ConstExpr>(*B).isTrue());
  EXPECT_EQ(cast<ConstExpr>(*I).getScalarKind(), ScalarKind::Int);
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(*I).getValue(), -4.0);
}

TEST(ExprTest, KindsAreDistinct) {
  ExprPtr V = std::make_unique<VarExpr>("x");
  ExprPtr C = ConstExpr::real(0);
  EXPECT_EQ(V->getKind(), Expr::Kind::Var);
  EXPECT_EQ(C->getKind(), Expr::Kind::Const);
  EXPECT_NE(V->getKind(), C->getKind());
}

TEST(ExprTest, CloneIsDeep) {
  auto Inner = std::make_unique<VarExpr>("y");
  VarExpr *InnerRaw = Inner.get();
  ExprPtr Neg =
      std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Inner));
  ExprPtr Copy = Neg->clone();
  auto &CopyUnary = cast<UnaryExpr>(*Copy);
  EXPECT_NE(&CopyUnary.getSub(), InnerRaw);
  EXPECT_EQ(cast<VarExpr>(CopyUnary.getSub()).getName(), "y");
  // Mutating the copy leaves the original untouched.
  cast<VarExpr>(*CopyUnary.getSubPtr()).setName("z");
  EXPECT_EQ(InnerRaw->getName(), "y");
}

TEST(ExprTest, CloneBinaryPreservesOperatorAndChildren) {
  ExprPtr E = std::make_unique<BinaryExpr>(
      BinaryOp::Mul, std::make_unique<VarExpr>("a"), ConstExpr::real(2.0));
  ExprPtr Copy = E->clone();
  auto &B = cast<BinaryExpr>(*Copy);
  EXPECT_EQ(B.getOp(), BinaryOp::Mul);
  EXPECT_EQ(cast<VarExpr>(B.getLHS()).getName(), "a");
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(B.getRHS()).getValue(), 2.0);
}

TEST(ExprTest, SampleExprHoldsDistAndArgs) {
  std::vector<ExprPtr> Args;
  Args.push_back(ConstExpr::real(0.0));
  Args.push_back(ConstExpr::real(1.0));
  SampleExpr S(DistKind::Gaussian, std::move(Args));
  EXPECT_EQ(S.getDist(), DistKind::Gaussian);
  EXPECT_EQ(S.getNumArgs(), 2u);
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(S.getArg(1)).getValue(), 1.0);
}

TEST(ExprTest, HoleCarriesIdArgsAndExpectedKind) {
  std::vector<ExprPtr> Args;
  Args.push_back(std::make_unique<VarExpr>("s"));
  HoleExpr H(3, std::move(Args));
  EXPECT_EQ(H.getHoleId(), 3u);
  EXPECT_EQ(H.getNumArgs(), 1u);
  H.setExpectedKind(ScalarKind::Bool);
  ExprPtr Copy = H.clone();
  EXPECT_EQ(cast<HoleExpr>(*Copy).getExpectedKind(), ScalarKind::Bool);
  EXPECT_EQ(cast<HoleExpr>(*Copy).getHoleId(), 3u);
}

TEST(ExprTest, HoleArgIndexAndKind) {
  HoleArgExpr A(2, ScalarKind::Bool);
  EXPECT_EQ(A.getArgIndex(), 2u);
  EXPECT_EQ(A.getScalarKind(), ScalarKind::Bool);
  ExprPtr Copy = A.clone();
  EXPECT_EQ(cast<HoleArgExpr>(*Copy).getArgIndex(), 2u);
  EXPECT_EQ(cast<HoleArgExpr>(*Copy).getScalarKind(), ScalarKind::Bool);
}

TEST(ExprTest, IndexExprNamesArray) {
  IndexExpr IX("skills", ConstExpr::integer(2));
  EXPECT_EQ(IX.getArrayName(), "skills");
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(IX.getIndex()).getValue(), 2.0);
}

TEST(ExprTest, IteCloneDeep) {
  IteExpr I(ConstExpr::boolean(true), ConstExpr::real(1.0),
            ConstExpr::real(2.0));
  ExprPtr Copy = I.clone();
  auto &CI = cast<IteExpr>(*Copy);
  EXPECT_TRUE(cast<ConstExpr>(CI.getCond()).isTrue());
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(CI.getElse()).getValue(), 2.0);
}

TEST(ExprTest, SourceLocRoundTrip) {
  VarExpr V("x", SourceLoc{5, 9});
  EXPECT_EQ(V.getLoc().Line, 5u);
  EXPECT_EQ(V.getLoc().Col, 9u);
  ExprPtr Copy = V.clone();
  EXPECT_EQ(Copy->getLoc().Line, 5u);
}
