//===- tests/ast/HashExprTest.cpp - Canonical structural hash tests -------===//

#include "ast/ASTUtil.h"

#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

ExprPtr parse(const std::string &Source) {
  DiagEngine Diags;
  ExprPtr E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

} // namespace

TEST(HashExprTest, IgnoresLocationsAndWhitespace) {
  EXPECT_EQ(hashExpr(*parse("x + 1.0 * y")), hashExpr(*parse("x   +   1.0*y")));
  EXPECT_EQ(hashExpr(*parse("ite(a, b, c)")), hashExpr(*parse("ite( a,b , c )")));
}

TEST(HashExprTest, AlphaIdenticalCompletionsHashEqual) {
  // Completions reference hole formals by index, so two textually
  // separate parses of the same completion are alpha-identical and
  // must collide.
  EXPECT_EQ(hashExpr(*parse("%0 + Gaussian(%1, 1.0)")),
            hashExpr(*parse("%0 + Gaussian(%1, 1.0)")));
  EXPECT_NE(hashExpr(*parse("%0 + Gaussian(%1, 1.0)")),
            hashExpr(*parse("%1 + Gaussian(%0, 1.0)")));
}

TEST(HashExprTest, ConstValueDiscriminates) {
  EXPECT_NE(hashExpr(*parse("1.0")), hashExpr(*parse("2.0")));
  EXPECT_NE(hashExpr(*parse("x + 1.0")), hashExpr(*parse("x + 1.5")));
}

TEST(HashExprTest, NegativeZeroHashesLikeZero) {
  // structurallyEqual compares constants with ==, under which -0.0 and
  // 0.0 are equal; the hash must agree.
  auto A = std::make_unique<ConstExpr>(0.0, ScalarKind::Real);
  auto B = std::make_unique<ConstExpr>(-0.0, ScalarKind::Real);
  ASSERT_TRUE(structurallyEqual(*A, *B));
  EXPECT_EQ(hashExpr(*A), hashExpr(*B));
}

TEST(HashExprTest, OpKindDiscriminates) {
  EXPECT_NE(hashExpr(*parse("x + y")), hashExpr(*parse("x - y")));
  EXPECT_NE(hashExpr(*parse("x + y")), hashExpr(*parse("x * y")));
  EXPECT_NE(hashExpr(*parse("Gaussian(x, 1.0)")),
            hashExpr(*parse("Gamma(x, 1.0)")));
}

TEST(HashExprTest, ChildOrderDiscriminates) {
  EXPECT_NE(hashExpr(*parse("x - y")), hashExpr(*parse("y - x")));
  EXPECT_NE(hashExpr(*parse("ite(a, b, c)")), hashExpr(*parse("ite(a, c, b)")));
}

TEST(HashExprTest, VariableNameDiscriminates) {
  EXPECT_NE(hashExpr(*parse("x")), hashExpr(*parse("y")));
}

TEST(HashExprTest, ConsistentWithStructuralEquality) {
  const char *Sources[] = {"x", "y", "x + y", "y + x", "1.0", "2.0",
                           "ite(a, b, c)", "Gaussian(x, 1.0)", "%0 + %1"};
  for (const char *SA : Sources)
    for (const char *SB : Sources) {
      ExprPtr A = parse(SA), B = parse(SB);
      if (structurallyEqual(*A, *B))
        EXPECT_EQ(hashExpr(*A), hashExpr(*B)) << SA << " vs " << SB;
      else
        EXPECT_NE(hashExpr(*A), hashExpr(*B)) << SA << " vs " << SB;
    }
}

TEST(HashExprTest, TupleHashIsOrderAndAritySensitive) {
  std::vector<ExprPtr> AB, BA, A;
  AB.push_back(parse("x"));
  AB.push_back(parse("y"));
  BA.push_back(parse("y"));
  BA.push_back(parse("x"));
  A.push_back(parse("x"));
  EXPECT_NE(hashExprTuple(AB), hashExprTuple(BA));
  EXPECT_NE(hashExprTuple(AB), hashExprTuple(A));

  std::vector<ExprPtr> AB2;
  AB2.push_back(parse("x"));
  AB2.push_back(parse("y"));
  EXPECT_EQ(hashExprTuple(AB), hashExprTuple(AB2));
}
