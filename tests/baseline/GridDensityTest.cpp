//===- tests/baseline/GridDensityTest.cpp - Grid density unit tests -------===//

#include "baseline/GridDensity.h"

#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

const GridConfig G; // Defaults: 257 points, 8 sigma, bandwidth 0.1.

} // namespace

TEST(GridDensityTest, GaussianMassMeanStddev) {
  GridDensity D = GridDensity::gaussian(3.0, 2.0, G);
  EXPECT_NEAR(D.totalMass(), 1.0, 1e-6);
  EXPECT_NEAR(D.mean(), 3.0, 1e-6);
  EXPECT_NEAR(D.stddev(), 2.0, 1e-3);
}

TEST(GridDensityTest, GaussianPdfInterpolation) {
  GridDensity D = GridDensity::gaussian(0.0, 1.0, G);
  for (double X : {-2.0, -0.5, 0.0, 1.3})
    EXPECT_NEAR(D.pdfAt(X), gaussianPdf(X, 0.0, 1.0), 1e-3);
  EXPECT_DOUBLE_EQ(D.pdfAt(100.0), 0.0);
}

TEST(GridDensityTest, BetaMoments) {
  GridDensity D = GridDensity::beta(2.0, 6.0, G);
  double Mean, Sd;
  betaMoments(2.0, 6.0, Mean, Sd);
  EXPECT_NEAR(D.totalMass(), 1.0, 1e-6);
  EXPECT_NEAR(D.mean(), Mean, 1e-3);
  EXPECT_NEAR(D.stddev(), Sd, 1e-2);
}

TEST(GridDensityTest, GammaMoments) {
  GridDensity D = GridDensity::gammaDist(4.0, 0.5, G);
  EXPECT_NEAR(D.totalMass(), 1.0, 1e-4);
  EXPECT_NEAR(D.mean(), 2.0, 1e-2);
  EXPECT_NEAR(D.stddev(), 1.0, 1e-2);
}

TEST(GridDensityTest, ConvolutionAddsGaussians) {
  GridDensity A = GridDensity::gaussian(1.0, 3.0, G);
  GridDensity B = GridDensity::gaussian(2.0, 4.0, G);
  GridDensity S = GridDensity::convolveAdd(A, B, G);
  EXPECT_NEAR(S.mean(), 3.0, 0.01);
  EXPECT_NEAR(S.stddev(), 5.0, 0.05);
  // Pointwise agreement with the closed form.
  for (double X : {-5.0, 0.0, 3.0, 8.0})
    EXPECT_NEAR(S.pdfAt(X), gaussianPdf(X, 3.0, 5.0), 2e-3);
}

TEST(GridDensityTest, ConvolutionSubtracts) {
  GridDensity A = GridDensity::gaussian(5.0, 3.0, G);
  GridDensity B = GridDensity::gaussian(2.0, 4.0, G);
  GridDensity S = GridDensity::convolveSub(A, B, G);
  EXPECT_NEAR(S.mean(), 3.0, 0.02);
  EXPECT_NEAR(S.stddev(), 5.0, 0.05);
}

TEST(GridDensityTest, ScaledDensity) {
  GridDensity A = GridDensity::gaussian(2.0, 1.0, G);
  GridDensity S = GridDensity::scaled(A, -3.0);
  EXPECT_NEAR(S.mean(), -6.0, 0.01);
  EXPECT_NEAR(S.stddev(), 3.0, 0.02);
  EXPECT_NEAR(S.totalMass(), 1.0, 1e-6);
}

TEST(GridDensityTest, ShiftedDensity) {
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity S = GridDensity::shifted(A, 10.0);
  EXPECT_NEAR(S.mean(), 10.0, 1e-6);
  EXPECT_NEAR(S.stddev(), 1.0, 1e-3);
}

TEST(GridDensityTest, MixtureMassAndMean) {
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(10.0, 1.0, G);
  GridDensity M = GridDensity::mixture(A, 0.25, B, G);
  EXPECT_NEAR(M.totalMass(), 1.0, 1e-6);
  EXPECT_NEAR(M.mean(), 7.5, 0.05);
}

TEST(GridDensityTest, ProbGreaterMatchesErfFormula) {
  GridDensity A = GridDensity::gaussian(3.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(1.0, 2.0, G);
  EXPECT_NEAR(GridDensity::probGreater(A, B),
              gaussianGreaterProb(3.0, 1.0, 1.0, 2.0), 1e-3);
}

TEST(GridDensityTest, ProbGreaterComplementary) {
  GridDensity A = GridDensity::gaussian(0.0, 1.5, G);
  GridDensity B = GridDensity::gaussian(0.5, 2.5, G);
  double P = GridDensity::probGreater(A, B);
  double Q = GridDensity::probGreater(B, A);
  EXPECT_NEAR(P + Q, 1.0, 1e-3);
}

TEST(GridDensityTest, CompoundGaussianVarianceLaw) {
  GridDensity Mean = GridDensity::gaussian(100.0, 10.0, G);
  GridDensity D = GridDensity::compoundGaussian(Mean, 15.0, G);
  EXPECT_NEAR(D.mean(), 100.0, 0.1);
  EXPECT_NEAR(D.stddev(), std::sqrt(325.0), 0.2);
}

TEST(GridDensityTest, PointMassIsNarrow) {
  GridDensity D = GridDensity::pointMass(5.0, 0.01, G);
  EXPECT_NEAR(D.mean(), 5.0, 1e-6);
  EXPECT_LT(D.stddev(), 0.02);
}

TEST(GridDensityTest, NormalizeRestoresUnitMass) {
  GridDensity D = GridDensity::gaussian(0.0, 1.0, G);
  std::vector<double> Doubled;
  for (double V : D.values())
    Doubled.push_back(2.0 * V);
  GridDensity E(D.lo(), D.hi(), Doubled);
  EXPECT_NEAR(E.totalMass(), 2.0, 1e-5);
  E.normalize();
  EXPECT_NEAR(E.totalMass(), 1.0, 1e-9);
}
