//===- tests/baseline/GridLikelihoodTest.cpp - Integration baseline ------===//
//
// The integration-based likelihood is the accuracy oracle: on models
// inside the MoG closure (Gaussians, mixtures, Bernoulli logic) the two
// paths must agree closely, which is the paper's claim that the
// approximation "does not affect the quality of the synthesized
// programs".
//
//===----------------------------------------------------------------------===//

#include "baseline/GridLikelihood.h"

#include "interp/Interp.h"
#include "likelihood/Likelihood.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<LoweredProgram> lowerSource(const std::string &Source,
                                            const InputBindings &Inputs) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, Inputs, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  return LP;
}

} // namespace

TEST(GridLikelihoodTest, AgreesWithMoGOnGaussianModel) {
  auto LP = lowerSource(R"(
program G() {
  x: real;
  x ~ Gaussian(3.0, 2.0);
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"x"});
  for (double X : {0.0, 2.0, 3.5, 6.0})
    Data.addRow({X});
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  GridLikelihoodEvaluator Grid(*LP, Data);
  auto LL = Grid.logLikelihood();
  ASSERT_TRUE(LL);
  EXPECT_NEAR(*LL, F->logLikelihood(Data), 0.05);
}

TEST(GridLikelihoodTest, AgreesWithMoGOnSumOfGaussians) {
  auto LP = lowerSource(R"(
program S() {
  a: real;
  b: real;
  y: real;
  a ~ Gaussian(1.0, 3.0);
  b ~ Gaussian(2.0, 4.0);
  y = a + b;
  return y;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"y"});
  Data.addRow({4.0});
  Data.addRow({-2.0});
  auto F = LikelihoodFunction::compile(*LP, Data);
  GridLikelihoodEvaluator Grid(*LP, Data);
  auto LL = Grid.logLikelihood();
  ASSERT_TRUE(F && LL);
  EXPECT_NEAR(*LL, F->logLikelihood(Data), 0.05);
}

TEST(GridLikelihoodTest, AgreesWithMoGOnMixture) {
  auto LP = lowerSource(R"(
program M() {
  x: real;
  x = ite(Bernoulli(0.3), Gaussian(0.0, 1.0), Gaussian(10.0, 2.0));
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"x"});
  for (double X : {0.0, 1.0, 9.0, 11.0})
    Data.addRow({X});
  auto F = LikelihoodFunction::compile(*LP, Data);
  GridLikelihoodEvaluator Grid(*LP, Data);
  auto LL = Grid.logLikelihood();
  ASSERT_TRUE(F && LL);
  EXPECT_NEAR(*LL, F->logLikelihood(Data), 0.1);
}

TEST(GridLikelihoodTest, AgreesWithMoGOnBernoulliChain) {
  auto LP = lowerSource(R"(
program C() {
  a: bool;
  b: bool;
  c: bool;
  a ~ Bernoulli(0.4);
  b ~ Bernoulli(0.7);
  c = a && b;
  return a, b, c;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"a", "b", "c"});
  Data.addRow({1.0, 1.0, 1.0});
  Data.addRow({1.0, 0.0, 0.0});
  Data.addRow({0.0, 1.0, 0.0});
  auto F = LikelihoodFunction::compile(*LP, Data);
  GridLikelihoodEvaluator Grid(*LP, Data);
  auto LL = Grid.logLikelihood();
  ASSERT_TRUE(F && LL);
  EXPECT_NEAR(*LL, F->logLikelihood(Data), 1e-6);
}

TEST(GridLikelihoodTest, AgreesWithMoGOnTrueSkillRow) {
  const char *Source = R"(
program TS(p1: int, p2: int, result: bool) {
  skills: real[2];
  perf1: real;
  perf2: real;
  r: bool;
  skills[0] ~ Gaussian(100.0, 10.0);
  skills[1] ~ Gaussian(100.0, 10.0);
  perf1 ~ Gaussian(skills[p1], 15.0);
  perf2 ~ Gaussian(skills[p2], 15.0);
  r = perf1 > perf2;
  observe(result == r);
  return skills;
}
)";
  InputBindings In;
  In.setInt("p1", 0);
  In.setInt("p2", 1);
  In.setScalar("result", 1.0, ScalarKind::Bool);
  auto LP = lowerSource(Source, In);
  ASSERT_TRUE(LP);
  Dataset Data({"skills[0]", "skills[1]"});
  Data.addRow({105.0, 95.0});
  auto F = LikelihoodFunction::compile(*LP, Data);
  GridLikelihoodEvaluator Grid(*LP, Data);
  auto LL = Grid.logLikelihoodRow(Data.row(0));
  ASSERT_TRUE(F && LL);
  EXPECT_NEAR(*LL, F->logLikelihoodRow(Data.row(0)), 0.05);
}

TEST(GridLikelihoodTest, BetaBernoulliCloseToMoGApproximation) {
  // Beta is approximated by moment matching on the MoG side; the two
  // paths agree only approximately — but the *ordering* of candidate
  // qualities is preserved, which is what MH needs.
  auto Truth = lowerSource(R"(
program H() {
  p: real;
  z: bool;
  p ~ Beta(9.0, 1.0);
  z ~ Bernoulli(p);
  return z;
}
)",
                           {});
  ASSERT_TRUE(Truth);
  Dataset Data({"z"});
  for (int I = 0; I < 9; ++I)
    Data.addRow({1.0});
  Data.addRow({0.0});
  auto F = LikelihoodFunction::compile(*Truth, Data);
  GridLikelihoodEvaluator Grid(*Truth, Data);
  auto LL = Grid.logLikelihood();
  ASSERT_TRUE(F && LL);
  EXPECT_NEAR(*LL, F->logLikelihood(Data), 1.0);
}

TEST(GridLikelihoodTest, MalformedCandidateReturnsNullopt) {
  auto LP = lowerSource(R"(
program P() {
  x: real;
  y: real;
  y = x + 1.0;
  x = 0.0;
  return y;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Dataset Data({"y"});
  Data.addRow({1.0});
  GridLikelihoodEvaluator Grid(*LP, Data);
  EXPECT_FALSE(Grid.logLikelihood().has_value());
}

TEST(GridLikelihoodTest, CandidateOrderingMatchesMoGPath) {
  // Two candidate programs; the baseline and the approximation must
  // rank them identically.
  Rng R(21);
  auto Truth = lowerSource(R"(
program T() {
  x: real;
  x ~ Gaussian(5.0, 1.0);
  return x;
}
)",
                           {});
  ASSERT_TRUE(Truth);
  Dataset Data = generateDataset(*Truth, 50, R);
  auto Bad = lowerSource(R"(
program B() {
  x: real;
  x ~ Gaussian(-5.0, 1.0);
  return x;
}
)",
                         {});
  auto FT = LikelihoodFunction::compile(*Truth, Data);
  auto FB = LikelihoodFunction::compile(*Bad, Data);
  GridLikelihoodEvaluator GT(*Truth, Data), GB(*Bad, Data);
  auto LT = GT.logLikelihood(), LB = GB.logLikelihood();
  ASSERT_TRUE(FT && FB && LT && LB);
  EXPECT_GT(FT->logLikelihood(Data), FB->logLikelihood(Data));
  EXPECT_GT(*LT, *LB);
}
