//===- tests/parse/LexerTest.cpp - Lexer unit tests -----------------------===//

#include "parse/Lexer.h"

#include "support/Diag.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::vector<Token> lex(const std::string &Source, DiagEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Source) {
  DiagEngine Diags;
  std::vector<TokenKind> Ks;
  for (const Token &T : lex(Source, Diags))
    Ks.push_back(T.Kind);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Ks;
}

} // namespace

TEST(LexerTest, EmptyInputIsEof) {
  auto Ks = kinds("");
  ASSERT_EQ(Ks.size(), 1u);
  EXPECT_EQ(Ks[0], TokenKind::Eof);
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  auto Ks = kinds("program foo real if skills");
  EXPECT_EQ(Ks[0], TokenKind::KwProgram);
  EXPECT_EQ(Ks[1], TokenKind::Ident);
  EXPECT_EQ(Ks[2], TokenKind::KwReal);
  EXPECT_EQ(Ks[3], TokenKind::KwIf);
  EXPECT_EQ(Ks[4], TokenKind::Ident);
}

TEST(LexerTest, NumbersIntVsReal) {
  DiagEngine Diags;
  auto Ts = lex("42 3.5 1e3 2E-2 7", Diags);
  EXPECT_EQ(Ts[0].Kind, TokenKind::IntLit);
  EXPECT_DOUBLE_EQ(Ts[0].Number, 42.0);
  EXPECT_EQ(Ts[1].Kind, TokenKind::RealLit);
  EXPECT_DOUBLE_EQ(Ts[1].Number, 3.5);
  EXPECT_EQ(Ts[2].Kind, TokenKind::RealLit);
  EXPECT_DOUBLE_EQ(Ts[2].Number, 1000.0);
  EXPECT_EQ(Ts[3].Kind, TokenKind::RealLit);
  EXPECT_DOUBLE_EQ(Ts[3].Number, 0.02);
  EXPECT_EQ(Ts[4].Kind, TokenKind::IntLit);
}

TEST(LexerTest, RangeAfterIntegerLexesAsDotDot) {
  auto Ks = kinds("0..n");
  ASSERT_GE(Ks.size(), 4u);
  EXPECT_EQ(Ks[0], TokenKind::IntLit);
  EXPECT_EQ(Ks[1], TokenKind::DotDot);
  EXPECT_EQ(Ks[2], TokenKind::Ident);
}

TEST(LexerTest, RealThenRangeStillWorks) {
  // `1.5..n` — the literal stops before the range.
  auto Ks = kinds("1.5..n");
  EXPECT_EQ(Ks[0], TokenKind::RealLit);
  EXPECT_EQ(Ks[1], TokenKind::DotDot);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto Ks = kinds("( ) { } [ ] , ; : = ~ ?? % + - * && || ! > < ==");
  std::vector<TokenKind> Expected = {
      TokenKind::LParen,  TokenKind::RParen,   TokenKind::LBrace,
      TokenKind::RBrace,  TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Comma,   TokenKind::Semi,     TokenKind::Colon,
      TokenKind::Assign,  TokenKind::Tilde,    TokenKind::Hole,
      TokenKind::Percent, TokenKind::Plus,     TokenKind::Minus,
      TokenKind::Star,    TokenKind::AndAnd,   TokenKind::OrOr,
      TokenKind::Bang,    TokenKind::Greater,  TokenKind::Less,
      TokenKind::EqEq,    TokenKind::Eof};
  EXPECT_EQ(Ks, Expected);
}

TEST(LexerTest, AssignVsEquality) {
  auto Ks = kinds("= == =");
  EXPECT_EQ(Ks[0], TokenKind::Assign);
  EXPECT_EQ(Ks[1], TokenKind::EqEq);
  EXPECT_EQ(Ks[2], TokenKind::Assign);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Ks = kinds("x // comment with ?? and 1.5\ny");
  ASSERT_EQ(Ks.size(), 3u);
  EXPECT_EQ(Ks[0], TokenKind::Ident);
  EXPECT_EQ(Ks[1], TokenKind::Ident);
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  DiagEngine Diags;
  auto Ts = lex("a\n  b", Diags);
  EXPECT_EQ(Ts[0].Loc.Line, 1u);
  EXPECT_EQ(Ts[0].Loc.Col, 1u);
  EXPECT_EQ(Ts[1].Loc.Line, 2u);
  EXPECT_EQ(Ts[1].Loc.Col, 3u);
}

TEST(LexerTest, StrayCharactersReportErrors) {
  DiagEngine Diags;
  lex("a # b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StraySingleAmpersand) {
  DiagEngine Diags;
  lex("a & b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, StraySingleQuestionMark) {
  DiagEngine Diags;
  lex("a ? b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  DiagEngine Diags;
  auto Ts = lex("my_var2 _x", Diags);
  EXPECT_EQ(Ts[0].Kind, TokenKind::Ident);
  EXPECT_EQ(Ts[0].Text, "my_var2");
  EXPECT_EQ(Ts[1].Text, "_x");
}
