//===- tests/parse/RoundTripTest.cpp - Print/parse round-trip property ----===//
//
// The printer's output must re-parse to a structurally equal AST.  The
// corpus covers hand-picked expressions and every benchmark target and
// sketch in the suite.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "parse/Parser.h"
#include "suite/Benchmarks.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

void expectExprRoundTrip(const std::string &Source) {
  DiagEngine D1;
  ExprPtr First = parseExprSource(Source, D1);
  ASSERT_TRUE(First) << Source << "\n" << D1.str();
  std::string Printed = toString(*First);
  DiagEngine D2;
  ExprPtr Second = parseExprSource(Printed, D2);
  ASSERT_TRUE(Second) << Printed << "\n" << D2.str();
  EXPECT_TRUE(structurallyEqual(*First, *Second))
      << Source << " -> " << Printed << " -> " << toString(*Second);
}

void expectProgramRoundTrip(const std::string &Source) {
  DiagEngine D1;
  auto First = parseProgramSource(Source, D1);
  ASSERT_TRUE(First) << D1.str();
  std::string Printed = toString(*First);
  DiagEngine D2;
  auto Second = parseProgramSource(Printed, D2);
  ASSERT_TRUE(Second) << Printed << "\n" << D2.str();
  EXPECT_TRUE(structurallyEqual(First->getBody(), Second->getBody()))
      << Printed;
  EXPECT_EQ(First->getReturns(), Second->getReturns());
  EXPECT_EQ(First->getDecls().size(), Second->getDecls().size());
  // Idempotence: printing the reparse gives the identical text.
  EXPECT_EQ(Printed, toString(*Second));
}

class ExprRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(ExprRoundTrip, PrintParsePreservesStructure) {
  expectExprRoundTrip(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ExprRoundTrip,
    ::testing::Values(
        "1.5", "42", "true", "-0.25", "x", "a[i]",
        "a + b * c", "(a + b) * c", "a - b - c", "a - (b - c)",
        "a && b || !c", "!(a || b)",
        "a > b && c < d", "x == y", "flag == (a > b)",
        "ite(z, 1.0, 2.0)", "ite(a > b, x + y, x - y)",
        "Gaussian(100.0, 10.0)", "Bernoulli(0.5)", "Beta(1.0, 1.0)",
        "Gamma(2.0, 3.0)", "Poisson(4.0)",
        "Gaussian(skills[p1[g]], 15.0) > Gaussian(skills[p2[g]], 15.0)",
        "?\?", "?\?(a, b)", "%0 + %1 * %2",
        "ite(Bernoulli(0.3), Gaussian(0.0, 1.0), Gaussian(10.0, 2.0))",
        "1.0e-3 + 2.5", "a * (-1.5)"));

class BenchmarkRoundTrip
    : public ::testing::TestWithParam<const Benchmark *> {};

TEST_P(BenchmarkRoundTrip, TargetRoundTrips) {
  expectProgramRoundTrip(GetParam()->TargetSource);
}

TEST_P(BenchmarkRoundTrip, SketchRoundTrips) {
  expectProgramRoundTrip(GetParam()->SketchSource);
}

std::vector<const Benchmark *> benchmarkPointers() {
  std::vector<const Benchmark *> Out;
  for (const Benchmark &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BenchmarkRoundTrip, ::testing::ValuesIn(benchmarkPointers()),
    [](const ::testing::TestParamInfo<const Benchmark *> &Info) {
      return Info.param->Name;
    });

} // namespace
