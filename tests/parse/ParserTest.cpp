//===- tests/parse/ParserTest.cpp - Parser unit tests ---------------------===//

#include "parse/Parser.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

bool parseFails(const std::string &Source) {
  DiagEngine Diags;
  return parseProgramSource(Source, Diags) == nullptr && Diags.hasErrors();
}

ExprPtr exprOk(const std::string &Source) {
  DiagEngine Diags;
  auto E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

} // namespace

TEST(ParserTest, MinimalProgram) {
  auto P = parseOk("program Empty() { x: real; x = 1.0; return x; }");
  EXPECT_EQ(P->getName(), "Empty");
  EXPECT_TRUE(P->getParams().empty());
  EXPECT_EQ(P->getDecls().size(), 1u);
  EXPECT_EQ(P->getReturns().size(), 1u);
}

TEST(ParserTest, ParameterTypes) {
  auto P = parseOk("program P(n: int, xs: real[], f: bool) "
                   "{ y: real; y = 1.0; return y; }");
  ASSERT_EQ(P->getParams().size(), 3u);
  EXPECT_EQ(P->getParams()[0].Ty, Type::integer());
  EXPECT_EQ(P->getParams()[1].Ty, Type::array(ScalarKind::Real));
  EXPECT_EQ(P->getParams()[2].Ty, Type::boolean());
}

TEST(ParserTest, DeclarationsScalarAndArray) {
  auto P = parseOk("program P(n: int) { x: real; a: bool[n + 1]; "
                   "x = 1.0; return x; }");
  ASSERT_EQ(P->getDecls().size(), 2u);
  EXPECT_FALSE(P->getDecls()[0].isArray());
  ASSERT_TRUE(P->getDecls()[1].isArray());
  EXPECT_EQ(P->getDecls()[1].Kind, ScalarKind::Bool);
}

TEST(ParserTest, ProbabilisticAssignmentSugar) {
  auto P =
      parseOk("program P() { x: real; x ~ Gaussian(0.0, 1.0); return x; }");
  const auto &A = cast<AssignStmt>(*P->getBody().getStmts()[0]);
  EXPECT_TRUE(A.isProbabilistic());
  EXPECT_EQ(cast<SampleExpr>(A.getValue()).getDist(), DistKind::Gaussian);
}

TEST(ParserTest, ObserveIfForStatements) {
  auto P = parseOk(R"(
program P(n: int) {
  x: real;
  b: bool;
  x = 0.0;
  b ~ Bernoulli(0.5);
  observe(b);
  if (b) { x = 1.0; } else { x = 2.0; }
  for i in 0..n { x = x + 1.0; }
  skip;
  return x;
}
)");
  const auto &Stmts = P->getBody().getStmts();
  ASSERT_EQ(Stmts.size(), 6u);
  EXPECT_TRUE(isa<ObserveStmt>(Stmts[2].get()));
  EXPECT_TRUE(isa<IfStmt>(Stmts[3].get()));
  EXPECT_TRUE(isa<ForStmt>(Stmts[4].get()));
  EXPECT_TRUE(isa<SkipStmt>(Stmts[5].get()));
}

TEST(ParserTest, IfWithoutElseGetsEmptyElse) {
  auto P = parseOk(R"(
program P() {
  x: real;
  b: bool;
  b ~ Bernoulli(0.5);
  x = 0.0;
  if (b) { x = 1.0; }
  return x;
}
)");
  const auto &I = cast<IfStmt>(*P->getBody().getStmts()[2]);
  EXPECT_TRUE(I.getElse().empty());
}

TEST(ParserTest, HoleNumberingIsSyntacticOrder) {
  auto P = parseOk(R"(
program S() {
  x: real;
  y: real;
  x = ??;
  y = ??(x) + ??;
  return y;
}
)");
  auto Holes = collectHoles(*P);
  ASSERT_EQ(Holes.size(), 3u);
  EXPECT_EQ(Holes[0]->getHoleId(), 0u);
  EXPECT_EQ(Holes[1]->getHoleId(), 1u);
  EXPECT_EQ(Holes[2]->getHoleId(), 2u);
  EXPECT_EQ(Holes[1]->getNumArgs(), 1u);
}

TEST(ParserTest, PrecedenceShapes) {
  ExprPtr E = exprOk("a + b > c && d || e");
  // || at the root.
  auto &Or = cast<BinaryExpr>(*E);
  EXPECT_EQ(Or.getOp(), BinaryOp::Or);
  auto &And = cast<BinaryExpr>(Or.getLHS());
  EXPECT_EQ(And.getOp(), BinaryOp::And);
  auto &Gt = cast<BinaryExpr>(And.getLHS());
  EXPECT_EQ(Gt.getOp(), BinaryOp::Gt);
  auto &Add = cast<BinaryExpr>(Gt.getLHS());
  EXPECT_EQ(Add.getOp(), BinaryOp::Add);
}

TEST(ParserTest, LeftAssociativity) {
  ExprPtr E = exprOk("a - b - c");
  auto &Outer = cast<BinaryExpr>(*E);
  EXPECT_EQ(toString(Outer.getLHS()), "a - b");
  EXPECT_EQ(toString(Outer.getRHS()), "c");
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  ExprPtr E = exprOk("-3.5");
  ASSERT_TRUE(isa<ConstExpr>(E.get()));
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(*E).getValue(), -3.5);
  // Negation of a non-literal stays a unary node.
  ExprPtr V = exprOk("-x");
  EXPECT_TRUE(isa<UnaryExpr>(V.get()));
}

TEST(ParserTest, NestedIndexing) {
  ExprPtr E = exprOk("skills[p1[g]]");
  auto &Outer = cast<IndexExpr>(*E);
  EXPECT_EQ(Outer.getArrayName(), "skills");
  EXPECT_TRUE(isa<IndexExpr>(&Outer.getIndex()));
}

TEST(ParserTest, ErrorUnknownDistribution) {
  EXPECT_TRUE(parseFails(
      "program P() { x: real; x ~ Cauchy(0.0, 1.0); return x; }"));
  DiagEngine Diags;
  EXPECT_EQ(parseExprSource("Uniform(0.0, 1.0)", Diags), nullptr);
}

TEST(ParserTest, ErrorDistributionArity) {
  EXPECT_TRUE(parseFails(
      "program P() { x: real; x ~ Gaussian(1.0); return x; }"));
  EXPECT_TRUE(parseFails(
      "program P() { x: real; x ~ Bernoulli(0.1, 0.2); return x; }"));
}

TEST(ParserTest, ErrorMissingSemicolon) {
  EXPECT_TRUE(parseFails("program P() { x: real; x = 1.0 return x; }"));
}

TEST(ParserTest, ErrorMissingReturn) {
  EXPECT_TRUE(parseFails("program P() { x: real; x = 1.0; }"));
}

TEST(ParserTest, ErrorTrailingTokens) {
  EXPECT_TRUE(parseFails(
      "program P() { x: real; x = 1.0; return x; } extra"));
  DiagEngine Diags;
  EXPECT_EQ(parseExprSource("1 + 2 extra", Diags), nullptr);
}

TEST(ParserTest, ErrorIteArity) {
  DiagEngine Diags;
  EXPECT_EQ(parseExprSource("ite(a, b)", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, ErrorBadHoleFormal) {
  DiagEngine Diags;
  EXPECT_EQ(parseExprSource("% x", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, MultipleReturns) {
  auto P = parseOk(
      "program P() { x: real; y: real; x = 1.0; y = 2.0; return x, y; }");
  ASSERT_EQ(P->getReturns().size(), 2u);
  EXPECT_EQ(P->getReturns()[0], "x");
  EXPECT_EQ(P->getReturns()[1], "y");
}

TEST(ParserTest, DeclAfterStatementAllowed) {
  auto P = parseOk(
      "program P() { x: real; x = 1.0; y: real; y = x; return y; }");
  EXPECT_EQ(P->getDecls().size(), 2u);
}
