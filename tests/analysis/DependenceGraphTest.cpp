//===- tests/analysis/DependenceGraphTest.cpp - Hole→observe masks --------===//
//
// The dependence analysis feeding the factored likelihood, the dead-hole
// proposal skip and the `psketch analyze` report (DESIGN.md §14).  The
// tests pin the mask semantics: data flow through assignments and
// samples, control flow through branch conditions, observed-read
// cutting, loop fixpoints, and the conservative direction (extra bits
// are legal, missing bits are bugs).
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "analysis/Slicer.h"

#include "parse/Parser.h"
#include "sem/Lower.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (P)
    EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return P;
}

} // namespace

TEST(DependenceGraphTest, StraightLineDataFlow) {
  auto P = parseP(R"(
program Chain() {
  x: real;
  y: real;
  x = ?? + 1.0;
  y = x * 2.0;
  observe(y > 0.0);
  return y;
}
)");
  DependenceGraph G = DependenceGraph::build(*P);
  EXPECT_EQ(G.numHoles(), 1u);
  EXPECT_FALSE(G.saturated());
  ASSERT_EQ(G.observes().size(), 1u);
  EXPECT_EQ(G.observes()[0].Mask, HoleMask(1));
  ASSERT_EQ(G.outputs().size(), 1u);
  EXPECT_EQ(G.outputs()[0].Slot, "y");
  EXPECT_EQ(G.outputs()[0].Mask, HoleMask(1));
  EXPECT_EQ(G.deadMask(), HoleMask(0));
}

TEST(DependenceGraphTest, DisjointHolesStayDisjoint) {
  auto P = parseP(R"(
program Split() {
  a: real;
  b: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(??, 1.0);
  observe(a > 0.0);
  observe(b > 0.0);
  return a;
}
)");
  DependenceGraph G = DependenceGraph::build(*P);
  ASSERT_EQ(G.observes().size(), 2u);
  EXPECT_EQ(G.observes()[0].Mask, HoleMask(1) << 0);
  EXPECT_EQ(G.observes()[1].Mask, HoleMask(1) << 1);
  // rho accumulates both observe conditions.
  EXPECT_EQ(G.rhoMask(), HoleMask(0b11));
}

TEST(DependenceGraphTest, BranchConditionTaintsRhoAndMergedValues) {
  auto P = parseP(R"(
program Branch() {
  g: bool;
  x: real;
  g ~ Bernoulli(??);
  x = 0.0;
  if (g) {
    x = 1.0;
  } else {
  }
  observe(x > 0.5);
  return x;
}
)");
  DependenceGraph G = DependenceGraph::build(*P);
  // The If multiplies rho by p·rho1 + (1−p)·rho2, so the condition's
  // hole reaches rho even though neither branch observes.
  EXPECT_EQ(G.rhoMask() & HoleMask(1), HoleMask(1));
  // envmerge: x is an ite over the condition, so the observe sees ??0.
  ASSERT_EQ(G.observes().size(), 1u);
  EXPECT_EQ(G.observes()[0].Mask, HoleMask(1));
}

TEST(DependenceGraphTest, UntouchedVariableKeepsPreBranchMask) {
  auto P = parseP(R"(
program Keep() {
  g: bool;
  x: real;
  y: real;
  g ~ Bernoulli(??);
  x = ??;
  y = 1.0;
  if (g) {
    y = 2.0;
  } else {
  }
  observe(x > 0.0);
  return y;
}
)");
  DependenceGraph G = DependenceGraph::build(*P);
  // x is assigned before the branch and not touched inside it, so its
  // observe keeps the plain ??1 mask — no ??0 condition pollution.
  ASSERT_EQ(G.observes().size(), 1u);
  EXPECT_EQ(G.observes()[0].Mask, HoleMask(1) << 1);
  // y IS touched, so the returned output picks up the condition's ??0.
  ASSERT_EQ(G.outputs().size(), 1u);
  EXPECT_EQ(G.outputs()[0].Slot, "y");
  EXPECT_EQ(G.outputs()[0].Mask, HoleMask(1) << 0);
}

TEST(DependenceGraphTest, DeadHoleDetection) {
  auto P = parseP(R"(
program Dead() {
  seen: real;
  drift: real;
  seen ~ Gaussian(??, 1.0);
  drift ~ Gaussian(??, 1.0);
  observe(seen > 0.0);
  return seen;
}
)");
  DependenceGraph G = DependenceGraph::build(*P);
  EXPECT_EQ(G.numHoles(), 2u);
  // ??1 feeds only `drift`, which no observe and no output reads.
  EXPECT_EQ(G.deadMask(), HoleMask(1) << 1);
  EXPECT_EQ(G.liveMask(), HoleMask(1));
}

TEST(DependenceGraphTest, ObservedReadsAreCutButOwnTermMaskSurvives) {
  auto P = parseP(R"(
program Cut() {
  a: real;
  b: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(a * 2.0, 1.0);
  return b;
}
)");
  std::set<std::string> Observed{"a"};
  DependenceGraph G = DependenceGraph::build(*P, &Observed);
  // Reading observed `a` yields a data reference, so b's density term
  // does not depend on ??0...
  EXPECT_EQ(G.slotMask("b"), HoleMask(0));
  // ...but a's own accumulated value (its density term's mean) does.
  EXPECT_EQ(G.slotMask("a"), HoleMask(1));
}

TEST(DependenceGraphTest, ForLoopReachesFixpoint) {
  auto P = parseP(R"(
program Loop() {
  acc: real;
  acc = 0.0;
  for i in 0..5 {
    acc = acc + ??;
  }
  observe(acc > 0.0);
  return acc;
}
)");
  DependenceGraph G = DependenceGraph::build(*P);
  ASSERT_EQ(G.observes().size(), 1u);
  EXPECT_EQ(G.observes()[0].Mask & HoleMask(1), HoleMask(1));
}

TEST(DependenceGraphTest, ArrayWeakUpdateJoinsElementMasks) {
  auto P = parseP(R"(
program Arr() {
  xs: real[3];
  i: int;
  xs[0] = ??;
  xs[1] = 1.0;
  xs[2] = 2.0;
  i ~ Poisson(1.0);
  observe(xs[i] > 0.0);
  return i;
}
)");
  DependenceGraph G = DependenceGraph::build(*P);
  // xs[i] with a dynamic index reads the weak summary of every element,
  // so the observe depends on ??0 even though only xs[0] holds it.
  ASSERT_EQ(G.observes().size(), 1u);
  EXPECT_EQ(G.observes()[0].Mask & HoleMask(1), HoleMask(1));
}

TEST(DependenceGraphTest, LoweredBuildOrdersOutputsByColumn) {
  auto P = parseP(R"(
program Cols() {
  b: real;
  a: real;
  b ~ Gaussian(??, 1.0);
  a ~ Gaussian(??, 1.0);
  return a;
}
)");
  DiagEngine Diags;
  auto LP = lowerProgram(*P, {}, Diags, /*KeepHoles=*/true);
  ASSERT_TRUE(LP) << Diags.str();
  // Dataset column order: a=0, b=1 — outputs must follow it (the
  // factored likelihood's term order), not declaration order.
  std::unordered_map<std::string, unsigned> Observed{{"a", 0}, {"b", 1}};
  DependenceGraph G = DependenceGraph::build(*LP, Observed);
  ASSERT_EQ(G.outputs().size(), 2u);
  EXPECT_EQ(G.outputs()[0].Slot, "a");
  EXPECT_EQ(G.outputs()[0].Mask, HoleMask(1) << 1);
  EXPECT_EQ(G.outputs()[1].Slot, "b");
  EXPECT_EQ(G.outputs()[1].Mask, HoleMask(1) << 0);
}

TEST(SlicerTest, MatrixReportNamesHolesAndSinks) {
  auto P = parseP(R"(
program Report() {
  x: real;
  x ~ Gaussian(??, 1.0);
  observe(x > 0.0);
  return x;
}
)");
  Slicer S(*P);
  std::string R = S.matrixReport();
  EXPECT_NE(R.find("program Report: 1 hole(s), 1 observe(s), 1 output(s)"),
            std::string::npos)
      << R;
  EXPECT_NE(R.find("??0"), std::string::npos) << R;
  EXPECT_NE(R.find("rho (branch weights)"), std::string::npos) << R;
  EXPECT_NE(R.find("output x"), std::string::npos) << R;
  EXPECT_NE(R.find("dead holes: none"), std::string::npos) << R;
}

TEST(SlicerTest, DotIsWellFormed) {
  auto P = parseP(R"(
program Dot() {
  x: real;
  x ~ Gaussian(??, 1.0);
  observe(x > 0.0);
  return x;
}
)");
  Slicer S(*P);
  std::string D = S.dot();
  EXPECT_EQ(D.find("digraph hole_observe_dependence {"), 0u) << D;
  EXPECT_NE(D.find("h0 -> "), std::string::npos) << D;
  // Balanced braces: exactly one open and one close.
  EXPECT_EQ(std::count(D.begin(), D.end(), '{'), 1) << D;
  EXPECT_EQ(std::count(D.begin(), D.end(), '}'), 1) << D;
}

TEST(SlicerTest, UnreachableAssignmentsExcludeNeverRead) {
  auto P = parseP(R"(
program Unreach() {
  x: real;
  t: real;
  d: real;
  u: real;
  x ~ Gaussian(0.0, 1.0);
  t = x * 2.0;
  d = t + 1.0;
  t = d;
  u = 9.0;
  observe(x > 0.0);
  return x;
}
)");
  Slicer S(*P);
  // t and d feed only each other; u is never read (the unused-variable
  // lint's case, not ours).
  std::vector<std::string> Targets;
  for (const AssignStmt *A : S.unreachableAssignments())
    Targets.push_back(A->getTarget().Name);
  EXPECT_EQ(Targets, (std::vector<std::string>{"t", "d", "t"}));
}

TEST(SlicerTest, DeadHolesMatchGraphMask) {
  auto P = parseP(R"(
program DeadQ() {
  seen: real;
  drift: real;
  seen ~ Gaussian(??, 1.0);
  drift ~ Gaussian(??, 1.0);
  observe(seen > 0.0);
  return seen;
}
)");
  Slicer S(*P);
  EXPECT_EQ(S.deadHoles(), std::vector<unsigned>{1u});
}
