//===- tests/analysis/AbstractDomainTest.cpp - Interval x sign x NaN -----===//

#include "analysis/AbstractDomain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace psketch;

namespace {
constexpr double Inf = std::numeric_limits<double>::infinity();
const double NaN = std::numeric_limits<double>::quiet_NaN();
} // namespace

TEST(AbstractDomainTest, ConstantsAreSingletons) {
  AbstractValue V = AbstractValue::constant(3.5);
  EXPECT_TRUE(V.isSingleton());
  EXPECT_TRUE(V.contains(3.5));
  EXPECT_FALSE(V.contains(3.0));
  EXPECT_FALSE(V.mayBeNaN());
  EXPECT_EQ(V.Si, Sign::Pos);
}

TEST(AbstractDomainTest, NaNConstantIsMaybeNaNEmptyRange) {
  AbstractValue V = AbstractValue::constant(NaN);
  EXPECT_TRUE(V.mayBeNaN());
  EXPECT_TRUE(V.emptyRange());
  EXPECT_FALSE(V.isBottom());
  EXPECT_TRUE(V.contains(NaN));
  EXPECT_FALSE(V.contains(0.0));
}

TEST(AbstractDomainTest, TopContainsEverything) {
  AbstractValue T = AbstractValue::topReal();
  EXPECT_TRUE(T.contains(0.0));
  EXPECT_TRUE(T.contains(-Inf));
  EXPECT_TRUE(T.contains(Inf));
  EXPECT_TRUE(T.contains(NaN));
}

TEST(AbstractDomainTest, BottomContainsNothing) {
  AbstractValue B = AbstractValue::bottom();
  EXPECT_TRUE(B.isBottom());
  EXPECT_FALSE(B.contains(0.0));
  EXPECT_FALSE(B.contains(NaN));
}

TEST(AbstractDomainTest, JoinCoversBothOperands) {
  AbstractValue A = AbstractValue::range(-2, 1);
  AbstractValue B = AbstractValue::range(5, 9);
  AbstractValue J = join(A, B);
  EXPECT_TRUE(J.contains(-2));
  EXPECT_TRUE(J.contains(9));
  EXPECT_TRUE(J.contains(3)); // Convex hull admits the gap.
  EXPECT_FALSE(J.mayBeNaN());
  // Bottom is the identity.
  EXPECT_EQ(join(AbstractValue::bottom(), A), A.reduce());
  // NaN taints the join.
  EXPECT_TRUE(join(A, AbstractValue::constant(NaN)).mayBeNaN());
}

TEST(AbstractDomainTest, WidenBlowsUnstableBoundsToInfinity) {
  AbstractValue Prev = AbstractValue::range(0, 10);
  AbstractValue Grown = AbstractValue::range(0, 11);
  AbstractValue W = widen(Prev, Grown);
  EXPECT_EQ(W.Lo, 0.0);
  EXPECT_EQ(W.Hi, Inf);
  // Stable bounds stay.
  AbstractValue Same = widen(Prev, Prev);
  EXPECT_EQ(Same.Lo, 0.0);
  EXPECT_EQ(Same.Hi, 10.0);
}

TEST(AbstractDomainTest, AddTracksInfMinusInfNaN) {
  AbstractValue PosInf = AbstractValue::range(Inf, Inf);
  AbstractValue NegInf = AbstractValue::range(-Inf, -Inf);
  AbstractValue Sum = absAdd(PosInf, NegInf);
  EXPECT_TRUE(Sum.mayBeNaN()); // inf + (-inf) == NaN.
  AbstractValue Fin = absAdd(AbstractValue::range(1, 2),
                             AbstractValue::range(10, 20));
  EXPECT_FALSE(Fin.mayBeNaN());
  EXPECT_TRUE(Fin.contains(11));
  EXPECT_TRUE(Fin.contains(22));
  EXPECT_FALSE(Fin.contains(9));
}

TEST(AbstractDomainTest, MulTracksZeroTimesInfNaN) {
  AbstractValue Zero = AbstractValue::constant(0.0);
  AbstractValue Wide = AbstractValue::range(0, Inf);
  EXPECT_TRUE(absMul(Zero, Wide).mayBeNaN()); // 0 * inf == NaN.
  AbstractValue Fin = absMul(AbstractValue::range(2, 3),
                             AbstractValue::range(-4, 5));
  EXPECT_FALSE(Fin.mayBeNaN());
  EXPECT_TRUE(Fin.contains(-12));
  EXPECT_TRUE(Fin.contains(15));
}

TEST(AbstractDomainTest, SameSignAdditionPreservesSign) {
  AbstractValue A = AbstractValue::range(1, 5);
  AbstractValue B = AbstractValue::range(2, 3);
  EXPECT_EQ(absAdd(A, B).Si, Sign::Pos);
  EXPECT_EQ(absAdd(absNeg(A), absNeg(B)).Si, Sign::Neg);
}

TEST(AbstractDomainTest, ComparisonsWithPossibleNaNAreNeverDefinitelyTrue) {
  AbstractValue MaybeNaN = AbstractValue::topReal();
  AbstractValue Two = AbstractValue::constant(2.0);
  AbstractValue G = absGt(MaybeNaN, Two);
  EXPECT_FALSE(G.definitelyTrue());
  EXPECT_FALSE(G.definitelyFalse());
  // Disjoint NaN-free ranges decide.
  AbstractValue Big = AbstractValue::range(10, 20);
  EXPECT_TRUE(absGt(Big, Two).definitelyTrue());
  EXPECT_TRUE(absLt(Big, Two).definitelyFalse());
  // NaN-only operand: every comparison is definitely false.
  EXPECT_TRUE(absGt(AbstractValue::constant(NaN), Two).definitelyFalse());
}

TEST(AbstractDomainTest, EqOnDistinctSingletonsIsFalse) {
  AbstractValue A = AbstractValue::constant(1.0);
  AbstractValue B = AbstractValue::constant(2.0);
  EXPECT_TRUE(absEq(A, B).definitelyFalse());
  EXPECT_TRUE(absEq(A, A).definitelyTrue());
  AbstractValue R = AbstractValue::range(0, 3);
  AbstractValue E = absEq(A, R);
  EXPECT_FALSE(E.definitelyTrue());
  EXPECT_FALSE(E.definitelyFalse());
}

TEST(AbstractDomainTest, BooleanOperatorsHonorTruthTables) {
  AbstractValue T = AbstractValue::boolValue(false, true);
  AbstractValue F = AbstractValue::boolValue(true, false);
  AbstractValue U = AbstractValue::topBool();
  EXPECT_TRUE(absAnd(T, T).definitelyTrue());
  EXPECT_TRUE(absAnd(F, U).definitelyFalse());
  EXPECT_TRUE(absOr(T, U).definitelyTrue());
  EXPECT_TRUE(absOr(F, F).definitelyFalse());
  EXPECT_TRUE(absNot(T).definitelyFalse());
  EXPECT_TRUE(absNot(F).definitelyTrue());
  AbstractValue Mixed = absAnd(U, T);
  EXPECT_FALSE(Mixed.definitelyTrue());
  EXPECT_FALSE(Mixed.definitelyFalse());
}

TEST(AbstractDomainTest, ReduceTightensExcludedZeroEndpoints) {
  AbstractValue V;
  V.Lo = 0;
  V.Hi = 5;
  V.Si = Sign::Pos;
  V.NaNFree = true;
  AbstractValue R = V.reduce();
  EXPECT_GT(R.Lo, 0.0); // 0 is excluded by the sign component.
  EXPECT_TRUE(R.definitelyGT(0.0));
}

TEST(AbstractDomainTest, DistResultRanges) {
  EXPECT_EQ(distResultRange(DistKind::Bernoulli).Lo, 0.0);
  EXPECT_EQ(distResultRange(DistKind::Bernoulli).Hi, 1.0);
  EXPECT_EQ(distResultRange(DistKind::Beta).Lo, 0.0);
  EXPECT_EQ(distResultRange(DistKind::Beta).Hi, 1.0);
  EXPECT_EQ(distResultRange(DistKind::Gamma).Lo, 0.0);
  EXPECT_EQ(distResultRange(DistKind::Gamma).Hi, Inf);
  EXPECT_EQ(distResultRange(DistKind::Poisson).Lo, 0.0);
  EXPECT_EQ(distResultRange(DistKind::Gaussian).Hi, Inf);
}

TEST(AbstractDomainTest, InvalidParamRules) {
  AbstractValue Neg = AbstractValue::range(-3, -1);
  AbstractValue Pos = AbstractValue::range(1, 3);
  AbstractValue Span = AbstractValue::range(-1, 1);

  // Gaussian: only sigma (arg 1) constrained, must be > 0.
  EXPECT_FALSE(definitelyInvalidParam(DistKind::Gaussian, 0, Neg));
  EXPECT_TRUE(definitelyInvalidParam(DistKind::Gaussian, 1, Neg));
  EXPECT_TRUE(definitelyInvalidParam(DistKind::Gaussian, 1,
                                     AbstractValue::constant(0.0)));
  EXPECT_FALSE(definitelyInvalidParam(DistKind::Gaussian, 1, Span));
  EXPECT_FALSE(definitelyInvalidParam(DistKind::Gaussian, 1, Pos));

  // Bernoulli: p in [0, 1].
  EXPECT_TRUE(definitelyInvalidParam(DistKind::Bernoulli, 0, Neg));
  EXPECT_TRUE(definitelyInvalidParam(DistKind::Bernoulli, 0,
                                     AbstractValue::range(1.5, 2)));
  EXPECT_FALSE(definitelyInvalidParam(DistKind::Bernoulli, 0, Span));

  // Beta / Gamma: both shape parameters must be > 0.
  for (DistKind D : {DistKind::Beta, DistKind::Gamma}) {
    EXPECT_TRUE(definitelyInvalidParam(D, 0, Neg));
    EXPECT_TRUE(definitelyInvalidParam(D, 1, Neg));
    EXPECT_FALSE(definitelyInvalidParam(D, 0, Span));
    EXPECT_FALSE(definitelyInvalidParam(D, 1, Pos));
  }

  // Poisson: rate must be positive.
  EXPECT_TRUE(definitelyInvalidParam(DistKind::Poisson, 0, Neg));
  EXPECT_FALSE(definitelyInvalidParam(DistKind::Poisson, 0, Pos));

  // A may-be-NaN parameter never STATIC-REJECTs (the runtime clamps
  // NaN into the valid domain), and neither does bottom (unreachable).
  AbstractValue MaybeNaNNeg = Neg;
  MaybeNaNNeg.NaNFree = false;
  EXPECT_FALSE(definitelyInvalidParam(DistKind::Gaussian, 1, MaybeNaNNeg));
  EXPECT_FALSE(
      definitelyInvalidParam(DistKind::Gaussian, 1, AbstractValue::bottom()));
}

TEST(AbstractDomainTest, StrRendersIntervalAndSign) {
  AbstractValue V = AbstractValue::range(-3, -1);
  std::string S = V.str();
  EXPECT_NE(S.find("-3"), std::string::npos);
  EXPECT_NE(S.find("-1"), std::string::npos);
}
