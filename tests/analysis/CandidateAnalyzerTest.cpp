//===- tests/analysis/CandidateAnalyzerTest.cpp - STATIC-REJECT verdicts -===//

#include "analysis/CandidateAnalyzer.h"

#include "parse/Parser.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parse(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (P) {
    EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  }
  return P;
}

const char *SigmaHoleSketch = R"(
program S() {
  x: real;
  x ~ Gaussian(0.0, ??);
  return x;
}
)";

} // namespace

TEST(CandidateAnalyzerTest, RejectsProvablyNegativeScale) {
  auto P = parse(SigmaHoleSketch);
  InputBindings Inputs;
  CandidateAnalyzer A(*P, Inputs);

  std::vector<ExprPtr> Bad;
  Bad.push_back(ConstExpr::real(-2.0));
  CandidateVerdict V = A.analyze(Bad);
  EXPECT_TRUE(V.Rejected);
  EXPECT_EQ(V.Dist, DistKind::Gaussian);
  EXPECT_EQ(V.ArgIndex, 1u);
  EXPECT_TRUE(V.Value.definitelyLE(0.0));
  // The verdict names the parameter and the requirement.
  EXPECT_NE(V.str().find("Gaussian"), std::string::npos);
  EXPECT_NE(V.str().find("sigma"), std::string::npos);
  EXPECT_NE(V.str().find("> 0"), std::string::npos);
}

TEST(CandidateAnalyzerTest, VerdictCarriesTheDrawSiteLocation) {
  auto P = parse(SigmaHoleSketch);
  InputBindings Inputs;
  CandidateAnalyzer A(*P, Inputs);
  std::vector<ExprPtr> Bad;
  Bad.push_back(ConstExpr::real(-1.0));
  CandidateVerdict V = A.analyze(Bad);
  ASSERT_TRUE(V.Rejected);
  // `x ~ Gaussian(...)` sits on line 4 of the source above.
  EXPECT_EQ(V.Loc.Line, 4u);
}

TEST(CandidateAnalyzerTest, AcceptsPositiveScale) {
  auto P = parse(SigmaHoleSketch);
  InputBindings Inputs;
  CandidateAnalyzer A(*P, Inputs);
  std::vector<ExprPtr> Good;
  Good.push_back(ConstExpr::real(2.0));
  EXPECT_FALSE(A.analyze(Good).Rejected);
}

TEST(CandidateAnalyzerTest, AcceptsUndecidableScale) {
  // A completion that *may* be negative is not *definitely* invalid.
  auto P = parse(SigmaHoleSketch);
  InputBindings Inputs;
  CandidateAnalyzer A(*P, Inputs);
  std::vector<ExprPtr> Maybe;
  std::vector<ExprPtr> Args;
  Args.push_back(ConstExpr::real(1.0));
  Args.push_back(ConstExpr::real(3.0));
  Maybe.push_back(
      std::make_unique<SampleExpr>(DistKind::Gaussian, std::move(Args)));
  EXPECT_FALSE(A.analyze(Maybe).Rejected);
}

TEST(CandidateAnalyzerTest, CompletionArithmeticIsTracked) {
  // ?? completed with (c - 5) where c = 1: provably -4.
  auto P = parse(R"(
program S() {
  c: real;
  x: real;
  c = 1.0;
  x ~ Gaussian(0.0, ??(c));
  return x;
}
)");
  InputBindings Inputs;
  CandidateAnalyzer A(*P, Inputs);
  std::vector<ExprPtr> Bad;
  Bad.push_back(std::make_unique<BinaryExpr>(
      BinaryOp::Sub, std::make_unique<HoleArgExpr>(0u),
      ConstExpr::real(5.0)));
  CandidateVerdict V = A.analyze(Bad);
  EXPECT_TRUE(V.Rejected) << "1 - 5 is provably negative";

  std::vector<ExprPtr> Good;
  Good.push_back(std::make_unique<BinaryExpr>(
      BinaryOp::Add, std::make_unique<HoleArgExpr>(0u),
      ConstExpr::real(5.0)));
  EXPECT_FALSE(A.analyze(Good).Rejected);
}

TEST(CandidateAnalyzerTest, BernoulliProbabilityBounds) {
  auto P = parse(R"(
program S() {
  b: bool;
  b ~ Bernoulli(??);
  return b;
}
)");
  InputBindings Inputs;
  CandidateAnalyzer A(*P, Inputs);
  std::vector<ExprPtr> TooBig;
  TooBig.push_back(ConstExpr::real(1.5));
  CandidateVerdict V = A.analyze(TooBig);
  EXPECT_TRUE(V.Rejected);
  EXPECT_EQ(V.Dist, DistKind::Bernoulli);
  EXPECT_NE(V.str().find("[0, 1]"), std::string::npos);

  std::vector<ExprPtr> Edge;
  Edge.push_back(ConstExpr::real(1.0)); // p == 1 is valid.
  EXPECT_FALSE(A.analyze(Edge).Rejected);
}

TEST(CandidateAnalyzerTest, DistParamRequirementStrings) {
  EXPECT_STREQ(distParamRequirement(DistKind::Gaussian, 0), "any real");
  EXPECT_STREQ(distParamRequirement(DistKind::Gaussian, 1), "> 0");
  EXPECT_STREQ(distParamRequirement(DistKind::Bernoulli, 0), "in [0, 1]");
  EXPECT_STREQ(distParamRequirement(DistKind::Beta, 0), "> 0");
  EXPECT_STREQ(distParamRequirement(DistKind::Gamma, 1), "> 0");
  EXPECT_STREQ(distParamRequirement(DistKind::Poisson, 0), "> 0");
}
