//===- tests/analysis/AbstractSoundnessFuzzTest.cpp - Domain soundness ---===//
//
// Differential property fuzz for the abstract transfer functions: build
// random completion expressions over hole formals, give each formal a
// random abstract interval, then check that the concrete value of the
// expression — evaluated with the interpreter's exact semantics
// (short-circuit &&/||, taken-branch ternaries, IEEE arithmetic) at
// concrete formal values drawn from those intervals — is contained in
// the abstract value evalCompletionAbstract computes.  This is the
// soundness contract the STATIC-REJECT pre-filter rests on: an interval
// that ever excluded a reachable concrete value could reject a
// candidate the scorer would score finite.
//
//===----------------------------------------------------------------------===//

#include "analysis/ProgramAnalysis.h"
#include "ast/Expr.h"
#include "support/Casting.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

using namespace psketch;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();
constexpr unsigned NumFormals = 4;

/// A random expression over real-valued formals %0..%3.  Boolean
/// positions (conditions, logical operands) are built from comparisons,
/// so every generated tree is well-kinded.
ExprPtr randomExpr(Rng &R, unsigned Depth, bool WantBool);

double randomConstant(Rng &R) {
  switch (R.index(8)) {
  case 0:
    return 0.0;
  case 1:
    return -0.0;
  case 2:
    return Inf;
  case 3:
    return -Inf;
  case 4:
    return 1e300; // Overflow fodder for products and sums.
  default:
    return R.gaussian(0, 10);
  }
}

ExprPtr randomReal(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.uniform() < 0.35) {
    if (R.uniform() < 0.5)
      return std::make_unique<HoleArgExpr>(unsigned(R.index(NumFormals)));
    return ConstExpr::real(randomConstant(R));
  }
  switch (R.index(5)) {
  case 0:
    return std::make_unique<UnaryExpr>(UnaryOp::Neg,
                                       randomReal(R, Depth - 1));
  case 1:
  case 2: {
    BinaryOp Ops[] = {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul};
    return std::make_unique<BinaryExpr>(Ops[R.index(3)],
                                        randomReal(R, Depth - 1),
                                        randomReal(R, Depth - 1));
  }
  default:
    return std::make_unique<IteExpr>(randomExpr(R, Depth - 1, true),
                                     randomReal(R, Depth - 1),
                                     randomReal(R, Depth - 1));
  }
}

ExprPtr randomBool(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.uniform() < 0.3) {
    BinaryOp Ops[] = {BinaryOp::Gt, BinaryOp::Lt, BinaryOp::Eq};
    return std::make_unique<BinaryExpr>(Ops[R.index(3)], randomReal(R, 1),
                                        randomReal(R, 1));
  }
  switch (R.index(3)) {
  case 0:
    return std::make_unique<UnaryExpr>(UnaryOp::Not,
                                       randomBool(R, Depth - 1));
  default:
    return std::make_unique<BinaryExpr>(
        R.uniform() < 0.5 ? BinaryOp::And : BinaryOp::Or,
        randomBool(R, Depth - 1), randomBool(R, Depth - 1));
  }
}

ExprPtr randomExpr(Rng &R, unsigned Depth, bool WantBool) {
  return WantBool ? randomBool(R, Depth) : randomReal(R, Depth);
}

/// Concrete evaluation with the interpreter's semantics (Interp.cpp):
/// `&&`/`||` short-circuit on the left operand, ternaries evaluate the
/// taken branch only, comparisons on NaN are false.
double evalConcrete(const Expr &E, const std::vector<double> &Formals) {
  switch (E.getKind()) {
  case Expr::Kind::Const:
    return cast<ConstExpr>(E).getValue();
  case Expr::Kind::HoleArg:
    return Formals[cast<HoleArgExpr>(E).getArgIndex()];
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    double Sub = evalConcrete(U.getSub(), Formals);
    return U.getOp() == UnaryOp::Not ? (Sub != 0.0 ? 0.0 : 1.0) : -Sub;
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    double L = evalConcrete(B.getLHS(), Formals);
    if (B.getOp() == BinaryOp::And && L == 0.0)
      return 0.0;
    if (B.getOp() == BinaryOp::Or && L != 0.0)
      return 1.0;
    double R = evalConcrete(B.getRHS(), Formals);
    switch (B.getOp()) {
    case BinaryOp::Add:
      return L + R;
    case BinaryOp::Sub:
      return L - R;
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::And:
      return (L != 0.0 && R != 0.0) ? 1.0 : 0.0;
    case BinaryOp::Or:
      return (L != 0.0 || R != 0.0) ? 1.0 : 0.0;
    case BinaryOp::Gt:
      return L > R ? 1.0 : 0.0;
    case BinaryOp::Lt:
      return L < R ? 1.0 : 0.0;
    case BinaryOp::Eq:
      return L == R ? 1.0 : 0.0;
    }
    return 0.0;
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(E);
    double C = evalConcrete(I.getCond(), Formals);
    return evalConcrete(C != 0.0 ? I.getThen() : I.getElse(), Formals);
  }
  default:
    ADD_FAILURE() << "unexpected node kind in fuzz expression";
    return 0.0;
  }
}

/// A concrete value drawn from (the interval part of) \p V.
double sampleFrom(const AbstractValue &V, Rng &R) {
  if (V.isSingleton())
    return V.Lo;
  double Lo = std::isinf(V.Lo) ? -1e9 : V.Lo;
  double Hi = std::isinf(V.Hi) ? 1e9 : V.Hi;
  double X = Lo + (Hi - Lo) * R.uniform();
  // Occasionally pin an endpoint: bugs live at the corners.
  if (R.uniform() < 0.25)
    X = R.uniform() < 0.5 ? V.Lo : V.Hi;
  return X;
}

AbstractValue randomFormalRange(Rng &R) {
  switch (R.index(6)) {
  case 0:
    return AbstractValue::constant(R.gaussian(0, 5));
  case 1:
    return AbstractValue::range(-Inf, R.gaussian(0, 5));
  case 2: {
    double Lo = R.gaussian(0, 5);
    return AbstractValue::range(Lo, Inf);
  }
  default: {
    double A = R.gaussian(0, 5), B = R.gaussian(0, 5);
    return AbstractValue::range(std::min(A, B), std::max(A, B));
  }
  }
}

} // namespace

TEST(AbstractSoundnessFuzz, ConcreteValuesLieInAbstractIntervals) {
  Rng R(20260806);
  constexpr unsigned NumExprs = 12000;
  constexpr unsigned SamplesPerExpr = 3;
  for (unsigned Iter = 0; Iter != NumExprs; ++Iter) {
    ExprPtr E = randomExpr(R, 1 + unsigned(R.index(4)),
                           /*WantBool=*/R.index(4) == 0);
    std::vector<AbstractValue> AbsFormals;
    for (unsigned I = 0; I != NumFormals; ++I)
      AbsFormals.push_back(randomFormalRange(R));
    AbstractValue Abs = evalCompletionAbstract(*E, AbsFormals);
    for (unsigned S = 0; S != SamplesPerExpr; ++S) {
      std::vector<double> Formals;
      for (const AbstractValue &AV : AbsFormals)
        Formals.push_back(sampleFrom(AV, R));
      double V = evalConcrete(*E, Formals);
      ASSERT_TRUE(Abs.contains(V))
          << "iter " << Iter << ": concrete " << V << " escapes abstract "
          << Abs.str();
    }
  }
}

TEST(AbstractSoundnessFuzz, SingletonFormalsNeverLoseTheExactValue) {
  // With every formal a singleton the abstract walk follows one concrete
  // execution; containment must still hold bit-for-bit (including the
  // 1-ulp outward rounding absorbing any FMA contraction difference).
  Rng R(77);
  for (unsigned Iter = 0; Iter != 4000; ++Iter) {
    ExprPtr E = randomExpr(R, 1 + unsigned(R.index(4)), false);
    std::vector<AbstractValue> AbsFormals;
    std::vector<double> Formals;
    for (unsigned I = 0; I != NumFormals; ++I) {
      double V = R.gaussian(0, 10);
      Formals.push_back(V);
      AbsFormals.push_back(AbstractValue::constant(V));
    }
    AbstractValue Abs = evalCompletionAbstract(*E, AbsFormals);
    double V = evalConcrete(*E, Formals);
    ASSERT_TRUE(Abs.contains(V))
        << "iter " << Iter << ": concrete " << V << " escapes abstract "
        << Abs.str();
  }
}
