//===- tests/analysis/LintTest.cpp - psketch lint rule coverage ----------===//

#include "analysis/Lint.h"

#include "parse/Parser.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parse(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (P) {
    EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  }
  return P;
}

struct LintRun {
  LintResult Result;
  std::string Text;
};

LintRun lint(const std::string &Source, const InputBindings *Inputs = nullptr) {
  auto P = parse(Source);
  DiagEngine Diags;
  LintRun R;
  R.Result = lintProgram(*P, Diags, Inputs);
  R.Text = Diags.str();
  return R;
}

} // namespace

TEST(LintTest, CleanProgramIsQuiet) {
  LintRun R = lint(R"(
program Clean(n: real) {
  x: real;
  x ~ Gaussian(n, 1.0);
  observe(x > 0.0);
  return x;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
  EXPECT_EQ(R.Result.Warnings, 0u) << R.Text;
  EXPECT_TRUE(R.Text.empty()) << R.Text;
}

TEST(LintTest, UnboundVariableIsAnError) {
  LintRun R = lint(R"(
program Unbound() {
  y: real;
  observe(y > 0.0);
  return y;
}
)");
  EXPECT_GE(R.Result.Errors, 1u);
  EXPECT_NE(R.Text.find("'y'"), std::string::npos) << R.Text;
  EXPECT_NE(R.Text.find("unbound"), std::string::npos) << R.Text;
  // The diagnostic points at the first offending read, line 4.
  EXPECT_NE(R.Text.find("4:"), std::string::npos) << R.Text;
}

TEST(LintTest, PartiallyAssignedVariableIsStillUnbound) {
  // Assigned on one branch only: the read is not definitely dominated.
  LintRun R = lint(R"(
program Partial(c: bool) {
  y: real;
  if (c) {
    y = 1.0;
  } else {
  }
  return y;
}
)");
  EXPECT_GE(R.Result.Errors, 1u);
  EXPECT_NE(R.Text.find("every path"), std::string::npos) << R.Text;
}

TEST(LintTest, UnusedVariableIsAWarning) {
  LintRun R = lint(R"(
program Unused() {
  x: real;
  dead: real;
  x = 1.0;
  dead = 2.0;
  return x;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
  EXPECT_GE(R.Result.Warnings, 1u);
  EXPECT_NE(R.Text.find("'dead'"), std::string::npos) << R.Text;
  EXPECT_NE(R.Text.find("never used"), std::string::npos) << R.Text;
}

TEST(LintTest, ConstantObserveBothPolarities) {
  LintRun R = lint(R"(
program ConstObs() {
  x: real;
  x = 1.0;
  observe(1.0 > 2.0);
  observe(x > 0.0);
  return x;
}
)");
  EXPECT_GE(R.Result.Warnings, 1u);
  EXPECT_NE(R.Text.find("statically false"), std::string::npos) << R.Text;

  LintRun T = lint(R"(
program Vacuous() {
  x: real;
  x = 1.0;
  observe(x > 0.0);
  return x;
}
)");
  // x == 1 is provably positive: the observe is vacuous.
  EXPECT_GE(T.Result.Warnings, 1u);
  EXPECT_NE(T.Text.find("statically true"), std::string::npos) << T.Text;
}

TEST(LintTest, InvalidParamIntervalIsAnError) {
  LintRun R = lint(R"(
program BadSigma() {
  x: real;
  x ~ Gaussian(0.0, -2.0);
  return x;
}
)");
  EXPECT_GE(R.Result.Errors, 1u);
  EXPECT_NE(R.Text.find("Gaussian"), std::string::npos) << R.Text;
  EXPECT_NE(R.Text.find("sigma"), std::string::npos) << R.Text;
  EXPECT_NE(R.Text.find("every completion"), std::string::npos) << R.Text;
  // Location of the draw statement, line 4.
  EXPECT_NE(R.Text.find("4:"), std::string::npos) << R.Text;
}

TEST(LintTest, HolesInParamPositionSuppressTheInvalidParamRule) {
  // With a hole in sigma position the interval is top: some completion
  // may be valid, so lint must not flag the draw.
  LintRun R = lint(R"(
program HoleSigma() {
  x: real;
  x ~ Gaussian(0.0, ??);
  return x;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
}

TEST(LintTest, BoundInputsTightenTheInvalidParamRule) {
  const char *Src = R"(
program Scaled(s: real) {
  x: real;
  x ~ Gaussian(0.0, s);
  return x;
}
)";
  // Unbound input: s is top, no error.
  LintRun Free = lint(Src);
  EXPECT_EQ(Free.Result.Errors, 0u) << Free.Text;

  // s bound to -1: the draw is provably invalid.
  InputBindings Inputs;
  Inputs.setScalar("s", -1.0);
  LintRun Bound = lint(Src, &Inputs);
  EXPECT_GE(Bound.Result.Errors, 1u) << Bound.Text;
}

TEST(LintTest, MultipleFindingsAreAllCounted) {
  LintRun R = lint(R"(
program Messy() {
  y: real;
  dead: real;
  x: real;
  dead = 3.0;
  x ~ Gaussian(0.0, -2.0);
  observe(y > 0.0);
  observe(1.0 > 2.0);
  return x;
}
)");
  // unbound y + invalid sigma = 2 errors; unused dead + constant
  // observe = 2 warnings.
  EXPECT_EQ(R.Result.Errors, 2u) << R.Text;
  EXPECT_EQ(R.Result.Warnings, 2u) << R.Text;
}

TEST(LintTest, DisconnectedObserveIsAWarning) {
  LintRun R = lint(R"(
program Gate() {
  mean: real;
  obs: real;
  gate: bool;
  mean = ??;
  obs ~ Gaussian(mean, 1.0);
  gate ~ Bernoulli(0.5);
  observe(gate);
  return obs;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
  EXPECT_GE(R.Result.Warnings, 1u);
  EXPECT_NE(R.Text.find("depends on no hole"), std::string::npos) << R.Text;
  // Location of the observe statement, line 9.
  EXPECT_NE(R.Text.find("9:"), std::string::npos) << R.Text;
}

TEST(LintTest, DisconnectedObserveRequiresHoles) {
  // A hole-free program is not a sketch: there is nothing synthesis
  // could connect, so the rule must stay silent.
  LintRun R = lint(R"(
program Plain() {
  gate: bool;
  gate ~ Bernoulli(0.5);
  observe(gate);
  return gate;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
  EXPECT_EQ(R.Text.find("depends on no hole"), std::string::npos) << R.Text;
}

TEST(LintTest, ConnectedObserveIsQuiet) {
  LintRun R = lint(R"(
program Wired() {
  x: real;
  x ~ Gaussian(??, 1.0);
  observe(x > 0.0);
  return x;
}
)");
  EXPECT_EQ(R.Text.find("depends on no hole"), std::string::npos) << R.Text;
}

TEST(LintTest, UnreachableStatementIsAWarning) {
  LintRun R = lint(R"(
program Scratch() {
  x: real;
  temp: real;
  debug: real;
  x ~ Gaussian(0.0, 1.0);
  temp = x * 2.0;
  debug = temp + 1.0;
  temp = debug;
  observe(x > 0.0);
  return x;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
  // Three assignments in the temp/debug scratch chain.
  EXPECT_EQ(R.Result.Warnings, 3u) << R.Text;
  EXPECT_NE(R.Text.find("'temp'"), std::string::npos) << R.Text;
  EXPECT_NE(R.Text.find("'debug'"), std::string::npos) << R.Text;
  EXPECT_NE(R.Text.find("no effect on the program's distribution"),
            std::string::npos)
      << R.Text;
  // Location of the first scratch assignment, line 7.
  EXPECT_NE(R.Text.find("7:"), std::string::npos) << R.Text;
}

TEST(LintTest, NeverReadTargetBelongsToUnusedVariableNotUnreachable) {
  // `dead` is never read anywhere: that is the unused-variable rule's
  // finding, and the unreachable-statement rule must not double-report.
  LintRun R = lint(R"(
program DeadStore() {
  x: real;
  dead: real;
  x ~ Gaussian(0.0, 1.0);
  dead = 2.0;
  observe(x > 0.0);
  return x;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
  EXPECT_EQ(R.Result.Warnings, 1u) << R.Text;
  EXPECT_NE(R.Text.find("never used"), std::string::npos) << R.Text;
  EXPECT_EQ(R.Text.find("no effect"), std::string::npos) << R.Text;
}

TEST(LintTest, AssignmentsFeedingOnlyTheReturnAreReachable) {
  LintRun R = lint(R"(
program Out() {
  x: real;
  y: real;
  x ~ Gaussian(0.0, 1.0);
  y = x * 3.0;
  return y;
}
)");
  EXPECT_EQ(R.Result.Errors, 0u) << R.Text;
  EXPECT_EQ(R.Result.Warnings, 0u) << R.Text;
}
