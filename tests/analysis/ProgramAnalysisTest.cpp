//===- tests/analysis/ProgramAnalysisTest.cpp - Abstract interpreter -----===//

#include "analysis/ProgramAnalysis.h"

#include "parse/Parser.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

#include <limits>

using namespace psketch;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Parses and type checks \p Source (must succeed).
std::unique_ptr<Program> parse(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return P;
}

const DrawSiteFacts *findDraw(const AnalysisResult &R, DistKind D) {
  for (const DrawSiteFacts &F : R.Draws)
    if (F.Dist == D)
      return &F;
  return nullptr;
}

} // namespace

TEST(ProgramAnalysisTest, ConstantsFlowIntoDrawParameters) {
  auto P = parse(R"(
program T() {
  s: real;
  x: real;
  s = 2.0 + 3.0;
  x ~ Gaussian(1.0, s);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  EXPECT_FALSE(R.Rejected);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  ASSERT_EQ(G->Params.size(), 2u);
  EXPECT_TRUE(G->Params[0].isSingleton());
  EXPECT_DOUBLE_EQ(G->Params[0].Lo, 1.0);
  // 2.0 + 3.0 lands within one ulp of 5.
  EXPECT_TRUE(G->Params[1].contains(5.0));
  EXPECT_TRUE(G->Params[1].definitelyGT(0.0));
}

TEST(ProgramAnalysisTest, NegativeSigmaRejects) {
  auto P = parse(R"(
program T() {
  x: real;
  x ~ Gaussian(0.0, -2.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeCandidate({});
  EXPECT_TRUE(R.Rejected);
  EXPECT_EQ(R.RejectDist, DistKind::Gaussian);
  EXPECT_EQ(R.RejectArg, 1u);
  EXPECT_NE(R.rejectReason().find("sigma"), std::string::npos);
}

TEST(ProgramAnalysisTest, UnreachableDrawDoesNotReject) {
  // The invalid draw sits behind a statically-false branch; every
  // concrete run avoids it, so the candidate must not be rejected.
  auto P = parse(R"(
program T() {
  x: real;
  if (1.0 > 2.0) {
    x ~ Gaussian(0.0, -1.0);
  } else {
    x ~ Gaussian(0.0, 1.0);
  }
  return x;
}
)");
  ProgramAnalysis PA(*P);
  EXPECT_FALSE(PA.analyzeCandidate({}).Rejected);
}

TEST(ProgramAnalysisTest, DrawAfterFalseObserveDoesNotReject) {
  // observe(false) rejects every concrete run before the draw executes,
  // so the draw is unreachable and its invalid parameter is moot.
  auto P = parse(R"(
program T() {
  x: real;
  observe(1.0 > 2.0);
  x ~ Gaussian(0.0, -1.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeCandidate({});
  EXPECT_FALSE(R.Rejected);
}

TEST(ProgramAnalysisTest, BranchJoinWidensParameters) {
  auto P = parse(R"(
program T(c: bool) {
  s: real;
  x: real;
  if (c) { s = 1.0; } else { s = -1.0; }
  x ~ Gaussian(0.0, s);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  // s may be 1 — cannot be *definitely* invalid.
  EXPECT_FALSE(R.Rejected);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  EXPECT_TRUE(G->Params[1].contains(1.0));
  EXPECT_TRUE(G->Params[1].contains(-1.0));
}

TEST(ProgramAnalysisTest, BoundInputsTightenBranches) {
  auto P = parse(R"(
program T(c: bool) {
  s: real;
  x: real;
  if (c) { s = 1.0; } else { s = -1.0; }
  x ~ Gaussian(0.0, s);
  return x;
}
)");
  InputBindings Inputs;
  Inputs.setScalar("c", 0.0, ScalarKind::Bool); // Definitely the else arm.
  ProgramAnalysis PA(*P, &Inputs);
  AnalysisResult R = PA.analyzeCandidate({});
  EXPECT_TRUE(R.Rejected) << "bound input should select the -1 branch";
}

TEST(ProgramAnalysisTest, LoopFixpointTerminatesAndCoversAllIterations) {
  auto P = parse(R"(
program T(n: int) {
  acc: real;
  x: real;
  acc = 0.0;
  for i in 0..n {
    acc = acc + 1.0;
  }
  x ~ Gaussian(acc, 1.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  EXPECT_FALSE(R.Rejected);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  // Widening: the accumulator covers every trip count.
  EXPECT_TRUE(G->Params[0].contains(0.0));
  EXPECT_TRUE(G->Params[0].contains(1000.0));
}

TEST(ProgramAnalysisTest, ArraysAreSummarizedWeakly) {
  auto P = parse(R"(
program T(n: int) {
  a: real[n];
  x: real;
  for i in 0..n {
    a[i] = 2.0;
  }
  x ~ Gaussian(a[0], 1.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  EXPECT_FALSE(R.Rejected);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  EXPECT_TRUE(G->Params[0].contains(2.0));
}

TEST(ProgramAnalysisTest, BoundArrayInputsGiveMinMaxRanges) {
  auto P = parse(R"(
program T(v: real[]) {
  x: real;
  x ~ Gaussian(v[0], 1.0);
  return x;
}
)");
  InputBindings Inputs;
  Inputs.setArray("v", {2.0, 5.0, 3.0}, ScalarKind::Real);
  ProgramAnalysis PA(*P, &Inputs);
  AnalysisResult R = PA.analyzeFull(nullptr);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  EXPECT_TRUE(G->Params[0].contains(2.0));
  EXPECT_TRUE(G->Params[0].contains(5.0));
  EXPECT_TRUE(G->Params[0].definitelyGE(2.0));
  EXPECT_TRUE(G->Params[0].definitelyLE(5.0));
}

TEST(ProgramAnalysisTest, DrawResultsFeedDownstreamParameters) {
  auto P = parse(R"(
program T() {
  p: real;
  b: bool;
  p ~ Beta(2.0, 2.0);
  b ~ Bernoulli(p);
  return b;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  // Beta results lie in [0, 1] — a valid Bernoulli probability.
  EXPECT_FALSE(R.Rejected);
  const DrawSiteFacts *B = findDraw(R, DistKind::Bernoulli);
  ASSERT_TRUE(B);
  EXPECT_TRUE(B->Params[0].definitelyGE(0.0));
  EXPECT_TRUE(B->Params[0].definitelyLE(1.0));
}

TEST(ProgramAnalysisTest, GaussianFedScaleIsNotDefinitelyInvalid) {
  // A Gaussian draw can be negative, but not *definitely* negative:
  // the scale position must not reject.
  auto P = parse(R"(
program T() {
  s: real;
  x: real;
  s ~ Gaussian(1.0, 1.0);
  x ~ Gaussian(0.0, s);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  EXPECT_FALSE(PA.analyzeCandidate({}).Rejected);
}

TEST(ProgramAnalysisTest, CompletionsFlowIntoHoleResults) {
  auto P = parse(R"(
program T() {
  x: real;
  y: real;
  x = ??;
  y ~ Gaussian(0.0, x);
  return y;
}
)");
  DiagEngine Diags;
  auto Sigs = typeCheck(*P, Diags);
  ASSERT_TRUE(Sigs);
  ProgramAnalysis PA(*P);

  std::vector<ExprPtr> Bad;
  Bad.push_back(ConstExpr::real(-4.0));
  AnalysisResult R = PA.analyzeCandidate(Bad);
  EXPECT_TRUE(R.Rejected);
  EXPECT_EQ(R.RejectDist, DistKind::Gaussian);

  std::vector<ExprPtr> Good;
  Good.push_back(ConstExpr::real(4.0));
  EXPECT_FALSE(PA.analyzeCandidate(Good).Rejected);

  // No completions (lint mode): the hole is top-of-kind, so nothing is
  // definitely invalid.
  EXPECT_FALSE(PA.analyzeFull(nullptr).Rejected);
}

TEST(ProgramAnalysisTest, ObserveConstancyIsDetected) {
  auto P = parse(R"(
program T() {
  x: real;
  x ~ Gaussian(0.0, 1.0);
  observe(2.0 > 1.0);
  observe(x > 0.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  ASSERT_EQ(R.Observes.size(), 2u);
  EXPECT_TRUE(R.Observes[0].Cond.definitelyTrue());
  EXPECT_FALSE(R.Observes[1].Cond.definitelyTrue());
  EXPECT_FALSE(R.Observes[1].Cond.definitelyFalse());
}

TEST(ProgramAnalysisTest, VarFactsTrackReadsAndAssignments) {
  auto P = parse(R"(
program T() {
  used: real;
  unused: real;
  used ~ Gaussian(0.0, 1.0);
  unused ~ Gaussian(0.0, 1.0);
  return used;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  ASSERT_EQ(R.Vars.size(), 2u);
  EXPECT_EQ(R.Vars[0].Name, "used");
  EXPECT_TRUE(R.Vars[0].EverRead); // Returned counts as read.
  EXPECT_EQ(R.Vars[1].Name, "unused");
  EXPECT_FALSE(R.Vars[1].EverRead);
  EXPECT_TRUE(R.Vars[1].EverAssigned);
}

TEST(ProgramAnalysisTest, FinalEnvHoldsScalarRanges) {
  auto P = parse(R"(
program T() {
  x: real;
  x = 3.0;
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  auto It = R.FinalEnv.find("x");
  ASSERT_NE(It, R.FinalEnv.end());
  EXPECT_TRUE(It->second.isSingleton());
  EXPECT_DOUBLE_EQ(It->second.Lo, 3.0);
}

TEST(ProgramAnalysisTest, TopOfKindShapes) {
  EXPECT_TRUE(topOfKind(ScalarKind::Real).mayBeNaN());
  EXPECT_FALSE(topOfKind(ScalarKind::Bool).mayBeNaN());
  EXPECT_EQ(topOfKind(ScalarKind::Bool).Lo, 0.0);
  EXPECT_EQ(topOfKind(ScalarKind::Bool).Hi, 1.0);
  EXPECT_FALSE(topOfKind(ScalarKind::Int).mayBeNaN());
  EXPECT_EQ(topOfKind(ScalarKind::Int).Hi, Inf);
}

TEST(ProgramAnalysisTest, NestedLoopsAtWideningThresholdTerminate) {
  // The inner accumulator doubles per trip, so plain iteration would
  // climb for far more than MaxFixpointRounds (16) rounds per nest
  // level; widening must drive both levels to a sound fixpoint.  The
  // test's assertion is partly that analyzeFull returns at all.
  auto P = parse(R"(
program T(n: int, m: int) {
  acc: real;
  x: real;
  acc = 1.0;
  for i in 0..n {
    for j in 0..m {
      acc = acc * 2.0 + 1.0;
    }
  }
  x ~ Gaussian(acc, 1.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  EXPECT_FALSE(R.Rejected);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  // Sound cover of every trip count: the zero-trip value and
  // arbitrarily many doublings.
  EXPECT_TRUE(G->Params[0].contains(1.0));
  EXPECT_TRUE(G->Params[0].contains(1e18));
  // acc starts at 1 and only grows; widening must not leak below the
  // stable lower bound, and doubling a finite value never makes NaN.
  EXPECT_TRUE(G->Params[0].definitelyGE(1.0));
  EXPECT_FALSE(G->Params[0].mayBeNaN());
}

TEST(ProgramAnalysisTest, BranchJoinKeepsDefiniteNaNFreedom) {
  // Both arms assign NaN-free singletons; the join must not drop the
  // NaN-free fact (losing it would defeat the NaN-propagation static
  // reject and weaken every downstream interval).
  auto P = parse(R"(
program T(c: bool) {
  s: real;
  x: real;
  if (c) { s = 1.0; } else { s = 2.0; }
  x ~ Gaussian(0.0, s);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  EXPECT_FALSE(R.Rejected);
  auto It = R.FinalEnv.find("s");
  ASSERT_NE(It, R.FinalEnv.end());
  EXPECT_FALSE(It->second.mayBeNaN());
  EXPECT_TRUE(It->second.definitelyGE(1.0));
  EXPECT_TRUE(It->second.definitelyLE(2.0));
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  EXPECT_TRUE(G->Params[1].definitelyGT(0.0));
  EXPECT_FALSE(G->Params[1].mayBeNaN());
}

TEST(ProgramAnalysisTest, WideningToInfinityStaysNaNFreeUnderAddition) {
  // Widening sends the accumulator's upper bound to +inf.  Adding a
  // positive constant to [0, inf] cannot manufacture NaN (only
  // (+inf) + (-inf) can), so the NaN-free bit must survive widening.
  auto P = parse(R"(
program T(n: int) {
  acc: real;
  x: real;
  acc = 0.0;
  for i in 0..n {
    acc = acc + 1.0;
  }
  x ~ Gaussian(acc, 1.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  EXPECT_FALSE(G->Params[0].mayBeNaN());
  EXPECT_TRUE(G->Params[0].definitelyGE(0.0));
}

TEST(ProgramAnalysisTest, ArrayWeakUpdatesJoinInsteadOfOverwrite) {
  // The array's single summary cell joins every written value: the
  // second store must not erase the first (weak update), and a read
  // must see both.
  auto P = parse(R"(
program T() {
  a: real[2];
  x: real;
  a[0] = 1.0;
  a[1] = 0.0 - 3.0;
  x ~ Gaussian(a[0], 1.0);
  return x;
}
)");
  ProgramAnalysis PA(*P);
  AnalysisResult R = PA.analyzeFull(nullptr);
  EXPECT_FALSE(R.Rejected);
  const DrawSiteFacts *G = findDraw(R, DistKind::Gaussian);
  ASSERT_TRUE(G);
  EXPECT_TRUE(G->Params[0].contains(1.0));
  EXPECT_TRUE(G->Params[0].contains(-3.0));
  // Element coverage of the summary cell is unknown (which elements a
  // loop actually wrote is not tracked), so a read additionally joins
  // top-of-kind — including the may-be-NaN unassigned possibility.
  EXPECT_TRUE(G->Params[0].mayBeNaN());
}

TEST(ProgramAnalysisTest, ArraySummaryReadsAreNeverDefinitelyInvalid) {
  // Weak summaries keep reads maybe-unassigned, and a maybe-NaN
  // parameter is never *definitely* invalid — even when every value
  // actually written to the array is negative, a sigma-position read
  // must not static-reject (unsoundness here would discard candidates
  // a concrete run accepts).
  auto Bad = parse(R"(
program T() {
  a: real[2];
  x: real;
  a[0] = 0.0 - 1.0;
  a[1] = 0.0 - 2.0;
  x ~ Gaussian(0.0, a[0]);
  return x;
}
)");
  ProgramAnalysis PABad(*Bad);
  EXPECT_FALSE(PABad.analyzeCandidate({}).Rejected);
}
