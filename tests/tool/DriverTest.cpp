//===- tests/tool/DriverTest.cpp - psketch driver end-to-end tests --------===//

#include "tool/Driver.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace psketch;

namespace {

/// Writes a temp file and returns its path.
std::string writeTemp(const std::string &Name, const std::string &Text) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

const char *TruthSource = R"(
program Truth() {
  x: real;
  x ~ Gaussian(5.0, 2.0);
  return x;
}
)";

const char *SketchSource = R"(
program Sketch() {
  x: real;
  x = ??;
  return x;
}
)";

struct RunResult {
  int Code;
  std::string Out;
  std::string Err;
};

RunResult run(const std::vector<std::string> &Args) {
  ToolOptions Opts = ToolOptions::parse(Args);
  std::ostringstream Out, Err;
  int Code = runTool(Opts, Out, Err);
  return {Code, Out.str(), Err.str()};
}

} // namespace

TEST(DriverTest, PrintRoundTripsProgram) {
  std::string Path = writeTemp("driver_print.psk", TruthSource);
  auto R = run({"print", "--program", Path});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("x ~ Gaussian(5.0, 2.0);"), std::string::npos);
}

TEST(DriverTest, PrintRejectsMissingFile) {
  auto R = run({"print", "--program", "/nonexistent/nope.psk"});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("cannot open"), std::string::npos);
}

TEST(DriverTest, PrintRejectsIllTypedProgram) {
  std::string Path = writeTemp("driver_bad.psk", R"(
program Bad() {
  x: real;
  x = y;
  return x;
}
)");
  auto R = run({"print", "--program", Path});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("undeclared"), std::string::npos);
}

TEST(DriverTest, SampleWritesCsv) {
  std::string Prog = writeTemp("driver_sample.psk", TruthSource);
  auto R = run({"sample", "--program", Prog, "--rows", "50", "--seed",
                "4"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  // Header plus 50 rows.
  size_t Lines = 0;
  for (char C : R.Out)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 51u);
  EXPECT_EQ(R.Out.rfind("x\n", 0), 0u);
}

TEST(DriverTest, SampleIsSeedDeterministic) {
  std::string Prog = writeTemp("driver_sample2.psk", TruthSource);
  auto R1 = run({"sample", "--program", Prog, "--rows", "10", "--seed",
                 "9"});
  auto R2 = run({"sample", "--program", Prog, "--rows", "10", "--seed",
                 "9"});
  EXPECT_EQ(R1.Out, R2.Out);
}

TEST(DriverTest, ScoreReportsLikelihood) {
  std::string Prog = writeTemp("driver_score.psk", TruthSource);
  std::string Data = writeTemp("driver_score.csv", "x\n5.0\n6.0\n4.0\n");
  auto R = run({"score", "--program", Prog, "--data", Data});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("rows: 3"), std::string::npos);
  EXPECT_NE(R.Out.find("log-likelihood: "), std::string::npos);
}

TEST(DriverTest, ReportShowsSymbolicEnvironment) {
  std::string Prog = writeTemp("driver_report.psk", TruthSource);
  std::string Data = writeTemp("driver_report.csv", "x\n5.0\n");
  auto R = run({"report", "--program", Prog, "--data", Data, "--slot",
                "x"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("x |-> MoG(1; 1 * N(5, 2))"), std::string::npos);
}

TEST(DriverTest, SynthRecoversGaussian) {
  std::string Prog = writeTemp("driver_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_synth.csv";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "150",
                      "--seed", "3", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"synth", "--sketch", Sketch, "--data", Data,
                "--iterations", "2500", "--chains", "2", "--seed", "6"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("// synthesized in "), std::string::npos);
  EXPECT_NE(R.Out.find("program Sketch()"), std::string::npos);
  EXPECT_EQ(R.Out.find("??"), std::string::npos) << "holes remain";
}

TEST(DriverTest, SynthWithInputsBindsParameters) {
  std::string Prog = writeTemp("driver_param.psk", R"(
program P(n: int) {
  a: real[n];
  for i in 0..n { a[i] ~ Gaussian(1.0, 1.0); }
  return a;
}
)");
  std::string SketchPath = writeTemp("driver_param_sketch.psk", R"(
program S(n: int) {
  a: real[n];
  for i in 0..n { a[i] = ??; }
  return a;
}
)");
  std::string Data = ::testing::TempDir() + "/driver_param.csv";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "60",
                      "--seed", "2", "--int", "n=2", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"synth", "--sketch", SketchPath, "--data", Data,
                "--iterations", "1500", "--int", "n=2"});
  EXPECT_EQ(R.Code, 0) << R.Err;
}

TEST(DriverTest, InvalidOptionsPrintUsage) {
  auto R = run({"bogus"});
  EXPECT_EQ(R.Code, 2);
  EXPECT_NE(R.Err.find("usage: psketch"), std::string::npos);
}

TEST(DriverTest, PosteriorExactForBooleanPrograms) {
  std::string Prog = writeTemp("driver_bool.psk", R"(
program B() {
  a: bool;
  b: bool;
  a ~ Bernoulli(0.5);
  b ~ Bernoulli(0.5);
  observe(a || b);
  return a, b;
}
)");
  auto R = run({"posterior", "--program", Prog, "--slot", "a"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("method: exact enumeration"), std::string::npos);
  EXPECT_NE(R.Out.find("Pr(true) 0.666667"), std::string::npos);
}

TEST(DriverTest, PosteriorSamplesContinuousPrograms) {
  std::string Prog = writeTemp("driver_cont.psk", TruthSource);
  auto R = run({"posterior", "--program", Prog, "--slot", "x",
                "--samples", "3000", "--seed", "2"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("method: rejection sampling"), std::string::npos);
  EXPECT_NE(R.Out.find("x: mean "), std::string::npos);
}

TEST(DriverTest, PosteriorRequiresSlot) {
  auto R = run({"posterior", "--program", "whatever.psk"});
  EXPECT_EQ(R.Code, 2);
}

TEST(DriverTest, SynthTraceOutWritesValidJsonl) {
  std::string Prog = writeTemp("driver_trace_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_trace_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_trace.csv";
  std::string TracePath = ::testing::TempDir() + "/driver_trace.jsonl";
  std::string MetricsPath = ::testing::TempDir() + "/driver_metrics.json";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "50",
                      "--seed", "3", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"synth", "--sketch", Sketch, "--data", Data,
                "--iterations", "200", "--chains", "2", "--seed", "6",
                "--trace-out", TracePath, "--metrics-out", MetricsPath});
  ASSERT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("split-R-hat"), std::string::npos);

  // Every line of the trace parses; the trace round-trips through the
  // reader; event count equals chains * iterations (one per proposal).
  std::ifstream Trace(TracePath);
  ASSERT_TRUE(Trace.is_open());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(Trace, Line)) {
    ++Lines;
    std::string Err;
    EXPECT_TRUE(parseJson(Line, Err))
        << "line " << Lines << ": " << Err;
  }
  EXPECT_EQ(Lines, 1u + 2u * 200u);

  Trace.clear();
  Trace.seekg(0);
  std::string Err;
  auto Parsed = readJsonlTrace(Trace, Err);
  ASSERT_TRUE(Parsed) << Err;
  EXPECT_EQ(Parsed->Manifest.Seed, 6u);
  EXPECT_EQ(Parsed->Manifest.Chains, 2u);
  EXPECT_EQ(Parsed->Events.size(), 2u * 200u);

  // The metrics file is one valid JSON document whose counters agree
  // with the trace.
  std::ifstream Metrics(MetricsPath);
  ASSERT_TRUE(Metrics.is_open());
  std::ostringstream MetricsText;
  MetricsText << Metrics.rdbuf();
  auto MetricsJson = parseJson(MetricsText.str(), Err);
  ASSERT_TRUE(MetricsJson) << Err;
  const JsonValue *Counters = MetricsJson->get("counters");
  ASSERT_TRUE(Counters);
  EXPECT_EQ(Counters->getNumber("synth.proposed"), 400.0);
  ASSERT_TRUE(MetricsJson->get("gauges"));
  EXPECT_TRUE(MetricsJson->get("gauges")->getNumber("synth.rhat"));
}

TEST(DriverTest, TraceStatsSummarizesATrace) {
  std::string Prog = writeTemp("driver_ts_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_ts_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_ts.csv";
  std::string TracePath = ::testing::TempDir() + "/driver_ts.jsonl";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "40",
                      "--seed", "4", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto Synth = run({"synth", "--sketch", Sketch, "--data", Data,
                    "--iterations", "150", "--chains", "2", "--seed", "9",
                    "--trace-out", TracePath});
  ASSERT_EQ(Synth.Code, 0) << Synth.Err;

  auto R = run({"trace-stats", "--trace", TracePath});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("events: 300"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("chain 0:"), std::string::npos);
  EXPECT_NE(R.Out.find("chain 1:"), std::string::npos);
  EXPECT_NE(R.Out.find("best log-likelihood:"), std::string::npos);
}

TEST(DriverTest, TraceStatsRejectsMalformedTrace) {
  std::string Bad = writeTemp("driver_bad_trace.jsonl",
                              "{\"type\":\"manifest\"}\nnot json\n");
  auto R = run({"trace-stats", "--trace", Bad});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("line 1"), std::string::npos) << R.Err;
}

TEST(DriverTest, TraceStatsRejectsMissingFile) {
  auto R = run({"trace-stats", "--trace", "/nonexistent/trace.jsonl"});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("cannot open"), std::string::npos);
}

TEST(DriverTest, LintReportsDiagnosticsAndFails) {
  std::string Path = writeTemp("driver_lint_bad.psk", R"(
program Messy() {
  y: real;
  dead: real;
  x: real;
  dead = 3.0;
  x ~ Gaussian(0.0, -2.0);
  observe(y > 0.0);
  return x;
}
)");
  RunResult R = run({"lint", "--program", Path});
  EXPECT_EQ(R.Code, 1);
  EXPECT_NE(R.Out.find("unbound"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("never used"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("sigma"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("error(s)"), std::string::npos) << R.Out;
}

TEST(DriverTest, LintPassesCleanProgram) {
  std::string Path = writeTemp("driver_lint_clean.psk", TruthSource);
  RunResult R = run({"lint", "--program", Path});
  EXPECT_EQ(R.Code, 0) << R.Out << R.Err;
  EXPECT_NE(R.Out.find("0 error(s)"), std::string::npos) << R.Out;
}

TEST(DriverTest, TraceStatsMergesMultipleTraceFiles) {
  std::string Prog = writeTemp("driver_mt_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_mt_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_mt.csv";
  std::string TraceA = ::testing::TempDir() + "/driver_mt_a.jsonl";
  std::string TraceB = ::testing::TempDir() + "/driver_mt_b.jsonl";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "40",
                      "--seed", "4", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  for (const auto &Pair :
       {std::pair<std::string, std::string>{TraceA, "9"},
        std::pair<std::string, std::string>{TraceB, "10"}}) {
    auto Synth = run({"synth", "--sketch", Sketch, "--data", Data,
                      "--iterations", "100", "--chains", "2", "--seed",
                      Pair.second, "--trace-out", Pair.first});
    ASSERT_EQ(Synth.Code, 0) << Synth.Err;
  }

  auto R = run({"trace-stats", "--trace", TraceA, "--trace", TraceB});
  EXPECT_EQ(R.Code, 0) << R.Err;
  // Two 2-chain runs merge into one 4-chain summary over all events.
  EXPECT_NE(R.Out.find("traces: 2 files"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("events: 400"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("chain 0:"), std::string::npos);
  EXPECT_NE(R.Out.find("chain 3:"), std::string::npos);
}

TEST(DriverTest, SynthProfileFlagPrintsAttributionComment) {
  std::string Prog = writeTemp("driver_pf_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_pf_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_pf.csv";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "60",
                      "--seed", "8", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"synth", "--sketch", Sketch, "--data", Data,
                "--iterations", "300", "--chains", "2", "--seed", "6",
                "--profile"});
  ASSERT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("// profile: "), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("hot op "), std::string::npos) << R.Out;
  // Without the flag the comment is absent.
  auto Plain = run({"synth", "--sketch", Sketch, "--data", Data,
                    "--iterations", "300", "--chains", "2", "--seed",
                    "6"});
  ASSERT_EQ(Plain.Code, 0) << Plain.Err;
  EXPECT_EQ(Plain.Out.find("// profile: "), std::string::npos);
}

TEST(DriverTest, ProfileCommandWritesJsonAndFoldedStacks) {
  std::string Prog = writeTemp("driver_prof_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_prof_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_prof.csv";
  std::string JsonPath = ::testing::TempDir() + "/driver_prof.json";
  std::string FoldedPath = ::testing::TempDir() + "/driver_prof.folded";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "60",
                      "--seed", "8", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"profile", "--sketch", Sketch, "--data", Data,
                "--iterations", "300", "--chains", "2", "--seed", "6",
                "--out", JsonPath, "--folded", FoldedPath});
  ASSERT_EQ(R.Code, 0) << R.Err;
  // The human-readable report went to stdout.
  EXPECT_NE(R.Out.find("eval_batch attribution"), std::string::npos)
      << R.Out;

  // The JSON report parses and carries the schema and an opcode table.
  std::ifstream Json(JsonPath);
  ASSERT_TRUE(Json.is_open());
  std::ostringstream JsonText;
  JsonText << Json.rdbuf();
  std::string Err;
  auto V = parseJson(JsonText.str(), Err);
  ASSERT_TRUE(V) << Err;
  EXPECT_EQ(V->getString("report").value_or(""), "profile");
  EXPECT_EQ(V->getUInt64("schema_version").value_or(0),
            TelemetrySchemaVersion);
  const JsonValue *Attribution = V->get("eval_attribution");
  ASSERT_TRUE(Attribution);
  ASSERT_TRUE(Attribution->get("ops"));
  ASSERT_TRUE(V->get("perf_counters"));

  // The folded stacks are flamegraph.pl input: "stack;frames count".
  std::ifstream Folded(FoldedPath);
  ASSERT_TRUE(Folded.is_open());
  std::string Line;
  size_t OpLines = 0;
  while (std::getline(Folded, Line)) {
    EXPECT_EQ(Line.rfind("psketch;", 0), 0u) << Line;
    if (Line.find(";op:") != std::string::npos)
      ++OpLines;
  }
  EXPECT_GT(OpLines, 0u);
}

TEST(DriverTest, BenchDiffExitCodesCoverPassFailUsage) {
  std::string Base = writeTemp(
      "driver_bd_old.json",
      R"({"bench":"unit","schema_version":1,"mog_per_100s":100.0,)"
      R"("run_seconds":2.0})");
  std::string Regressed = writeTemp(
      "driver_bd_new.json",
      R"({"bench":"unit","schema_version":1,"mog_per_100s":70.0,)"
      R"("run_seconds":2.0})");

  // Identical inputs pass with exit 0 and a delta table.
  auto Same = run({"bench-diff", Base, Base});
  EXPECT_EQ(Same.Code, 0) << Same.Err;
  EXPECT_NE(Same.Out.find("PASS"), std::string::npos) << Same.Out;

  // A 30% throughput drop beyond the 15% tolerance exits 1.
  auto Bad = run({"bench-diff", Base, Regressed});
  EXPECT_EQ(Bad.Code, 1) << Bad.Out;
  EXPECT_NE(Bad.Out.find("REGRESSED"), std::string::npos) << Bad.Out;

  // ...but a wide-open tolerance lets the same delta pass.
  auto Loose = run({"bench-diff", Base, Regressed, "--tolerance", "0.5"});
  EXPECT_EQ(Loose.Code, 0) << Loose.Out;

  // Unreadable or incomparable inputs are usage errors: exit 2.
  auto Missing = run({"bench-diff", Base, "/nonexistent/new.json"});
  EXPECT_EQ(Missing.Code, 2);
  std::string Other = writeTemp("driver_bd_other.json",
                                R"({"bench":"different"})");
  auto Mismatch = run({"bench-diff", Base, Other});
  EXPECT_EQ(Mismatch.Code, 2);
  EXPECT_NE(Mismatch.Err.find("different"), std::string::npos)
      << Mismatch.Err;
}

TEST(DriverTest, SynthNoStaticAnalysisGivesIdenticalResults) {
  std::string Prog = writeTemp("driver_nsa_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_nsa_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_nsa.csv";
  RunResult S =
      run({"sample", "--program", Prog, "--rows", "80", "--seed", "21",
           "--out", Data});
  ASSERT_EQ(S.Code, 0) << S.Err;
  std::vector<std::string> Common = {"synth",  "--sketch",     Sketch,
                                     "--data", Data,           "--iterations",
                                     "400",    "--seed",       "5"};
  RunResult On = run(Common);
  std::vector<std::string> OffArgs = Common;
  OffArgs.push_back("--no-static-analysis");
  RunResult Off = run(OffArgs);
  ASSERT_EQ(On.Code, 0) << On.Err;
  ASSERT_EQ(Off.Code, 0) << Off.Err;
  // The walk, best program and score are bit-identical.  The `//`
  // summary comments legitimately differ between modes (wall-clock,
  // scored-candidate counts — off-mode scores statically-rejected
  // proposals before discarding them), so compare the program text and
  // the reported log-likelihood only.
  auto Strip = [](const std::string &Text) {
    std::istringstream IS(Text);
    std::string Line, Kept;
    while (std::getline(IS, Line)) {
      if (Line.rfind("//", 0) != 0) {
        Kept += Line + "\n";
      }
    }
    return Kept;
  };
  EXPECT_EQ(Strip(On.Out), Strip(Off.Out));
  size_t OnLL = On.Out.find("log-likelihood");
  size_t OffLL = Off.Out.find("log-likelihood");
  ASSERT_NE(OnLL, std::string::npos);
  ASSERT_NE(OffLL, std::string::npos);
  EXPECT_EQ(On.Out.substr(OnLL, On.Out.find('\n', OnLL) - OnLL),
            Off.Out.substr(OffLL, Off.Out.find('\n', OffLL) - OffLL));
}

TEST(DriverTest, AnalyzePrintsDependenceMatrix) {
  std::string Path = writeTemp("driver_an.psk", R"(
program An() {
  a: real;
  b: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(??, 1.0);
  observe(a > 0.0);
  return b;
}
)");
  auto R = run({"analyze", "--program", Path});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("program An: 2 hole(s), 1 observe(s), 1 output(s)"),
            std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("??0 ??1"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("rho (branch weights)"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("output b"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("dead holes: none"), std::string::npos) << R.Out;
}

TEST(DriverTest, AnalyzeWithDataMarksObservedColumns) {
  std::string Prog = writeTemp("driver_an_data.psk", R"(
program AnData() {
  a: real;
  drift: real;
  a ~ Gaussian(??, 1.0);
  drift ~ Gaussian(??, 1.0);
  return drift;
}
)");
  std::string Data = writeTemp("driver_an_data.csv", "a\n1.0\n2.0\n");
  auto R = run({"analyze", "--program", Prog, "--data", Data});
  EXPECT_EQ(R.Code, 0) << R.Err;
  // Column `a` becomes a density-term sink; `drift` stays the returned
  // output, so ??1 is live in this raw view.
  EXPECT_NE(R.Out.find("output a"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("output drift"), std::string::npos) << R.Out;
}

TEST(DriverTest, AnalyzeWritesDotFile) {
  std::string Prog = writeTemp("driver_an_dot.psk", R"(
program AnDot() {
  x: real;
  x ~ Gaussian(??, 1.0);
  observe(x > 0.0);
  return x;
}
)");
  std::string DotPath = ::testing::TempDir() + "/driver_an.dot";
  auto R = run({"analyze", "--program", Prog, "--dot-out", DotPath});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("wrote dependence graph to " + DotPath),
            std::string::npos)
      << R.Out;
  std::ifstream Dot(DotPath);
  ASSERT_TRUE(Dot.is_open());
  std::ostringstream DotText;
  DotText << Dot.rdbuf();
  EXPECT_EQ(DotText.str().rfind("digraph hole_observe_dependence {", 0), 0u)
      << DotText.str();
  EXPECT_NE(DotText.str().find("h0 -> o0;"), std::string::npos)
      << DotText.str();
}

TEST(DriverTest, AnalyzeRejectsMissingFile) {
  auto R = run({"analyze", "--program", "/nonexistent/nope.psk"});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("cannot open"), std::string::npos);
}

TEST(DriverTest, LintNewRulesWarnButExitZero) {
  // Warnings only — the lint gate reserves non-zero for errors.
  std::string Path = writeTemp("driver_lint_slice.psk", R"(
program SliceLint() {
  mean: real;
  obs: real;
  gate: bool;
  temp: real;
  mean = ??;
  obs ~ Gaussian(mean, 1.0);
  gate ~ Bernoulli(0.5);
  observe(gate);
  temp = obs * 2.0;
  temp = temp + 1.0;
  return obs;
}
)");
  RunResult R = run({"lint", "--program", Path});
  EXPECT_EQ(R.Code, 0) << R.Out << R.Err;
  EXPECT_NE(R.Out.find("depends on no hole"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("no effect on the program's distribution"),
            std::string::npos)
      << R.Out;
  EXPECT_NE(R.Out.find("0 error(s), 3 warning(s)"), std::string::npos)
      << R.Out;
}

TEST(DriverTest, SynthNoSliceFactoringGivesIdenticalResults) {
  std::string Prog = writeTemp("driver_nsf_truth.psk", R"(
program T() {
  a: real;
  b: real;
  a ~ Gaussian(3.0, 1.0);
  b ~ Gaussian(-2.0, 1.0);
  return a, b;
}
)");
  std::string Sketch = writeTemp("driver_nsf_sketch.psk", R"(
program S() {
  a: real;
  b: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(??, 1.0);
  return a;
}
)");
  std::string Data = ::testing::TempDir() + "/driver_nsf.csv";
  RunResult S = run({"sample", "--program", Prog, "--rows", "80", "--seed",
                     "31", "--out", Data});
  ASSERT_EQ(S.Code, 0) << S.Err;
  std::vector<std::string> Common = {"synth",  "--sketch",     Sketch,
                                     "--data", Data,           "--iterations",
                                     "400",    "--seed",       "5"};
  RunResult On = run(Common);
  std::vector<std::string> OffArgs = Common;
  OffArgs.push_back("--no-slice-factoring");
  RunResult Off = run(OffArgs);
  ASSERT_EQ(On.Code, 0) << On.Err;
  ASSERT_EQ(Off.Code, 0) << Off.Err;
  // Factoring is a pure cost optimization: program text and score are
  // identical; only `//` summary comments (wall-clock, cache counters)
  // may differ.
  auto Strip = [](const std::string &Text) {
    std::istringstream IS(Text);
    std::string Line, Kept;
    while (std::getline(IS, Line)) {
      if (Line.rfind("//", 0) != 0) {
        Kept += Line + "\n";
      }
    }
    return Kept;
  };
  EXPECT_EQ(Strip(On.Out), Strip(Off.Out));
  size_t OnLL = On.Out.find("log-likelihood");
  size_t OffLL = Off.Out.find("log-likelihood");
  ASSERT_NE(OnLL, std::string::npos);
  ASSERT_NE(OffLL, std::string::npos);
  EXPECT_EQ(On.Out.substr(OnLL, On.Out.find('\n', OnLL) - OnLL),
            Off.Out.substr(OffLL, Off.Out.find('\n', OffLL) - OffLL));
}
