//===- tests/tool/DriverTest.cpp - psketch driver end-to-end tests --------===//

#include "tool/Driver.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace psketch;

namespace {

/// Writes a temp file and returns its path.
std::string writeTemp(const std::string &Name, const std::string &Text) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

const char *TruthSource = R"(
program Truth() {
  x: real;
  x ~ Gaussian(5.0, 2.0);
  return x;
}
)";

const char *SketchSource = R"(
program Sketch() {
  x: real;
  x = ??;
  return x;
}
)";

struct RunResult {
  int Code;
  std::string Out;
  std::string Err;
};

RunResult run(const std::vector<std::string> &Args) {
  ToolOptions Opts = ToolOptions::parse(Args);
  std::ostringstream Out, Err;
  int Code = runTool(Opts, Out, Err);
  return {Code, Out.str(), Err.str()};
}

} // namespace

TEST(DriverTest, PrintRoundTripsProgram) {
  std::string Path = writeTemp("driver_print.psk", TruthSource);
  auto R = run({"print", "--program", Path});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("x ~ Gaussian(5.0, 2.0);"), std::string::npos);
}

TEST(DriverTest, PrintRejectsMissingFile) {
  auto R = run({"print", "--program", "/nonexistent/nope.psk"});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("cannot open"), std::string::npos);
}

TEST(DriverTest, PrintRejectsIllTypedProgram) {
  std::string Path = writeTemp("driver_bad.psk", R"(
program Bad() {
  x: real;
  x = y;
  return x;
}
)");
  auto R = run({"print", "--program", Path});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("undeclared"), std::string::npos);
}

TEST(DriverTest, SampleWritesCsv) {
  std::string Prog = writeTemp("driver_sample.psk", TruthSource);
  auto R = run({"sample", "--program", Prog, "--rows", "50", "--seed",
                "4"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  // Header plus 50 rows.
  size_t Lines = 0;
  for (char C : R.Out)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 51u);
  EXPECT_EQ(R.Out.rfind("x\n", 0), 0u);
}

TEST(DriverTest, SampleIsSeedDeterministic) {
  std::string Prog = writeTemp("driver_sample2.psk", TruthSource);
  auto R1 = run({"sample", "--program", Prog, "--rows", "10", "--seed",
                 "9"});
  auto R2 = run({"sample", "--program", Prog, "--rows", "10", "--seed",
                 "9"});
  EXPECT_EQ(R1.Out, R2.Out);
}

TEST(DriverTest, ScoreReportsLikelihood) {
  std::string Prog = writeTemp("driver_score.psk", TruthSource);
  std::string Data = writeTemp("driver_score.csv", "x\n5.0\n6.0\n4.0\n");
  auto R = run({"score", "--program", Prog, "--data", Data});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("rows: 3"), std::string::npos);
  EXPECT_NE(R.Out.find("log-likelihood: "), std::string::npos);
}

TEST(DriverTest, ReportShowsSymbolicEnvironment) {
  std::string Prog = writeTemp("driver_report.psk", TruthSource);
  std::string Data = writeTemp("driver_report.csv", "x\n5.0\n");
  auto R = run({"report", "--program", Prog, "--data", Data, "--slot",
                "x"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("x |-> MoG(1; 1 * N(5, 2))"), std::string::npos);
}

TEST(DriverTest, SynthRecoversGaussian) {
  std::string Prog = writeTemp("driver_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_synth.csv";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "150",
                      "--seed", "3", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"synth", "--sketch", Sketch, "--data", Data,
                "--iterations", "2500", "--chains", "2", "--seed", "6"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("// synthesized in "), std::string::npos);
  EXPECT_NE(R.Out.find("program Sketch()"), std::string::npos);
  EXPECT_EQ(R.Out.find("??"), std::string::npos) << "holes remain";
}

TEST(DriverTest, SynthWithInputsBindsParameters) {
  std::string Prog = writeTemp("driver_param.psk", R"(
program P(n: int) {
  a: real[n];
  for i in 0..n { a[i] ~ Gaussian(1.0, 1.0); }
  return a;
}
)");
  std::string SketchPath = writeTemp("driver_param_sketch.psk", R"(
program S(n: int) {
  a: real[n];
  for i in 0..n { a[i] = ??; }
  return a;
}
)");
  std::string Data = ::testing::TempDir() + "/driver_param.csv";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "60",
                      "--seed", "2", "--int", "n=2", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"synth", "--sketch", SketchPath, "--data", Data,
                "--iterations", "1500", "--int", "n=2"});
  EXPECT_EQ(R.Code, 0) << R.Err;
}

TEST(DriverTest, InvalidOptionsPrintUsage) {
  auto R = run({"bogus"});
  EXPECT_EQ(R.Code, 2);
  EXPECT_NE(R.Err.find("usage: psketch"), std::string::npos);
}

TEST(DriverTest, PosteriorExactForBooleanPrograms) {
  std::string Prog = writeTemp("driver_bool.psk", R"(
program B() {
  a: bool;
  b: bool;
  a ~ Bernoulli(0.5);
  b ~ Bernoulli(0.5);
  observe(a || b);
  return a, b;
}
)");
  auto R = run({"posterior", "--program", Prog, "--slot", "a"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("method: exact enumeration"), std::string::npos);
  EXPECT_NE(R.Out.find("Pr(true) 0.666667"), std::string::npos);
}

TEST(DriverTest, PosteriorSamplesContinuousPrograms) {
  std::string Prog = writeTemp("driver_cont.psk", TruthSource);
  auto R = run({"posterior", "--program", Prog, "--slot", "x",
                "--samples", "3000", "--seed", "2"});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("method: rejection sampling"), std::string::npos);
  EXPECT_NE(R.Out.find("x: mean "), std::string::npos);
}

TEST(DriverTest, PosteriorRequiresSlot) {
  auto R = run({"posterior", "--program", "whatever.psk"});
  EXPECT_EQ(R.Code, 2);
}

TEST(DriverTest, SynthTraceOutWritesValidJsonl) {
  std::string Prog = writeTemp("driver_trace_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_trace_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_trace.csv";
  std::string TracePath = ::testing::TempDir() + "/driver_trace.jsonl";
  std::string MetricsPath = ::testing::TempDir() + "/driver_metrics.json";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "50",
                      "--seed", "3", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto R = run({"synth", "--sketch", Sketch, "--data", Data,
                "--iterations", "200", "--chains", "2", "--seed", "6",
                "--trace-out", TracePath, "--metrics-out", MetricsPath});
  ASSERT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("split-R-hat"), std::string::npos);

  // Every line of the trace parses; the trace round-trips through the
  // reader; event count equals chains * iterations (one per proposal).
  std::ifstream Trace(TracePath);
  ASSERT_TRUE(Trace.is_open());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(Trace, Line)) {
    ++Lines;
    std::string Err;
    EXPECT_TRUE(parseJson(Line, Err))
        << "line " << Lines << ": " << Err;
  }
  EXPECT_EQ(Lines, 1u + 2u * 200u);

  Trace.clear();
  Trace.seekg(0);
  std::string Err;
  auto Parsed = readJsonlTrace(Trace, Err);
  ASSERT_TRUE(Parsed) << Err;
  EXPECT_EQ(Parsed->Manifest.Seed, 6u);
  EXPECT_EQ(Parsed->Manifest.Chains, 2u);
  EXPECT_EQ(Parsed->Events.size(), 2u * 200u);

  // The metrics file is one valid JSON document whose counters agree
  // with the trace.
  std::ifstream Metrics(MetricsPath);
  ASSERT_TRUE(Metrics.is_open());
  std::ostringstream MetricsText;
  MetricsText << Metrics.rdbuf();
  auto MetricsJson = parseJson(MetricsText.str(), Err);
  ASSERT_TRUE(MetricsJson) << Err;
  const JsonValue *Counters = MetricsJson->get("counters");
  ASSERT_TRUE(Counters);
  EXPECT_EQ(Counters->getNumber("synth.proposed"), 400.0);
  ASSERT_TRUE(MetricsJson->get("gauges"));
  EXPECT_TRUE(MetricsJson->get("gauges")->getNumber("synth.rhat"));
}

TEST(DriverTest, TraceStatsSummarizesATrace) {
  std::string Prog = writeTemp("driver_ts_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_ts_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_ts.csv";
  std::string TracePath = ::testing::TempDir() + "/driver_ts.jsonl";
  auto Sampled = run({"sample", "--program", Prog, "--rows", "40",
                      "--seed", "4", "--out", Data});
  ASSERT_EQ(Sampled.Code, 0) << Sampled.Err;
  auto Synth = run({"synth", "--sketch", Sketch, "--data", Data,
                    "--iterations", "150", "--chains", "2", "--seed", "9",
                    "--trace-out", TracePath});
  ASSERT_EQ(Synth.Code, 0) << Synth.Err;

  auto R = run({"trace-stats", "--trace", TracePath});
  EXPECT_EQ(R.Code, 0) << R.Err;
  EXPECT_NE(R.Out.find("events: 300"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("chain 0:"), std::string::npos);
  EXPECT_NE(R.Out.find("chain 1:"), std::string::npos);
  EXPECT_NE(R.Out.find("best log-likelihood:"), std::string::npos);
}

TEST(DriverTest, TraceStatsRejectsMalformedTrace) {
  std::string Bad = writeTemp("driver_bad_trace.jsonl",
                              "{\"type\":\"manifest\"}\nnot json\n");
  auto R = run({"trace-stats", "--trace", Bad});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("line 1"), std::string::npos) << R.Err;
}

TEST(DriverTest, TraceStatsRejectsMissingFile) {
  auto R = run({"trace-stats", "--trace", "/nonexistent/trace.jsonl"});
  EXPECT_NE(R.Code, 0);
  EXPECT_NE(R.Err.find("cannot open"), std::string::npos);
}

TEST(DriverTest, LintReportsDiagnosticsAndFails) {
  std::string Path = writeTemp("driver_lint_bad.psk", R"(
program Messy() {
  y: real;
  dead: real;
  x: real;
  dead = 3.0;
  x ~ Gaussian(0.0, -2.0);
  observe(y > 0.0);
  return x;
}
)");
  RunResult R = run({"lint", "--program", Path});
  EXPECT_EQ(R.Code, 1);
  EXPECT_NE(R.Out.find("unbound"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("never used"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("sigma"), std::string::npos) << R.Out;
  EXPECT_NE(R.Out.find("error(s)"), std::string::npos) << R.Out;
}

TEST(DriverTest, LintPassesCleanProgram) {
  std::string Path = writeTemp("driver_lint_clean.psk", TruthSource);
  RunResult R = run({"lint", "--program", Path});
  EXPECT_EQ(R.Code, 0) << R.Out << R.Err;
  EXPECT_NE(R.Out.find("0 error(s)"), std::string::npos) << R.Out;
}

TEST(DriverTest, SynthNoStaticAnalysisGivesIdenticalResults) {
  std::string Prog = writeTemp("driver_nsa_truth.psk", TruthSource);
  std::string Sketch = writeTemp("driver_nsa_sketch.psk", SketchSource);
  std::string Data = ::testing::TempDir() + "/driver_nsa.csv";
  RunResult S =
      run({"sample", "--program", Prog, "--rows", "80", "--seed", "21",
           "--out", Data});
  ASSERT_EQ(S.Code, 0) << S.Err;
  std::vector<std::string> Common = {"synth",  "--sketch",     Sketch,
                                     "--data", Data,           "--iterations",
                                     "400",    "--seed",       "5"};
  RunResult On = run(Common);
  std::vector<std::string> OffArgs = Common;
  OffArgs.push_back("--no-static-analysis");
  RunResult Off = run(OffArgs);
  ASSERT_EQ(On.Code, 0) << On.Err;
  ASSERT_EQ(Off.Code, 0) << Off.Err;
  // The walk, best program and score are bit-identical.  The `//`
  // summary comments legitimately differ between modes (wall-clock,
  // scored-candidate counts — off-mode scores statically-rejected
  // proposals before discarding them), so compare the program text and
  // the reported log-likelihood only.
  auto Strip = [](const std::string &Text) {
    std::istringstream IS(Text);
    std::string Line, Kept;
    while (std::getline(IS, Line)) {
      if (Line.rfind("//", 0) != 0) {
        Kept += Line + "\n";
      }
    }
    return Kept;
  };
  EXPECT_EQ(Strip(On.Out), Strip(Off.Out));
  size_t OnLL = On.Out.find("log-likelihood");
  size_t OffLL = Off.Out.find("log-likelihood");
  ASSERT_NE(OnLL, std::string::npos);
  ASSERT_NE(OffLL, std::string::npos);
  EXPECT_EQ(On.Out.substr(OnLL, On.Out.find('\n', OnLL) - OnLL),
            Off.Out.substr(OffLL, Off.Out.find('\n', OffLL) - OffLL));
}
