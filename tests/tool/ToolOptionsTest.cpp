//===- tests/tool/ToolOptionsTest.cpp - CLI option parsing tests ----------===//

#include "tool/ToolOptions.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(ToolOptionsTest, ParsesSynthCommand) {
  auto Opts = ToolOptions::parse({"synth", "--sketch", "s.psk", "--data",
                                  "d.csv", "--iterations", "500",
                                  "--chains", "3", "--seed", "9"});
  EXPECT_TRUE(Opts.valid()) << Opts.Errors.empty();
  EXPECT_EQ(Opts.Command, "synth");
  EXPECT_EQ(Opts.ProgramPath, "s.psk");
  EXPECT_EQ(Opts.DataPath, "d.csv");
  EXPECT_EQ(Opts.Iterations, 500u);
  EXPECT_EQ(Opts.Chains, 3u);
  EXPECT_EQ(Opts.Seed, 9u);
}

TEST(ToolOptionsTest, ParsesScalarBindings) {
  auto Opts = ToolOptions::parse({"sample", "--program", "p.psk", "--int",
                                  "n=3", "--real", "x=1.5", "--bool",
                                  "b=1"});
  ASSERT_TRUE(Opts.valid());
  const InputValue *N = Opts.Inputs.find("n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Ty, Type::integer());
  EXPECT_DOUBLE_EQ(N->scalar(), 3.0);
  const InputValue *X = Opts.Inputs.find("x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->Ty, Type::real());
  const InputValue *B = Opts.Inputs.find("b");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Ty, Type::boolean());
}

TEST(ToolOptionsTest, ParsesArrayBindings) {
  auto Opts = ToolOptions::parse({"sample", "--program", "p.psk", "--ints",
                                  "p1=0,1,0", "--reals", "day=8,15.5",
                                  "--bools", "r=1,0,1"});
  ASSERT_TRUE(Opts.valid());
  const InputValue *P1 = Opts.Inputs.find("p1");
  ASSERT_NE(P1, nullptr);
  EXPECT_EQ(P1->Ty, Type::array(ScalarKind::Int));
  EXPECT_EQ(P1->Values, (std::vector<double>{0, 1, 0}));
  const InputValue *Day = Opts.Inputs.find("day");
  ASSERT_NE(Day, nullptr);
  EXPECT_EQ(Day->Values, (std::vector<double>{8, 15.5}));
}

TEST(ToolOptionsTest, MissingCommand) {
  auto Opts = ToolOptions::parse({});
  EXPECT_FALSE(Opts.valid());
}

TEST(ToolOptionsTest, UnknownCommandRejected) {
  auto Opts = ToolOptions::parse({"frobnicate", "--program", "x"});
  EXPECT_FALSE(Opts.valid());
}

TEST(ToolOptionsTest, UnknownFlagRejected) {
  auto Opts = ToolOptions::parse({"print", "--program", "x", "--what"});
  EXPECT_FALSE(Opts.valid());
}

TEST(ToolOptionsTest, MissingRequiredDataRejected) {
  auto Opts = ToolOptions::parse({"score", "--program", "p.psk"});
  EXPECT_FALSE(Opts.valid());
  auto Opts2 = ToolOptions::parse({"sample", "--program", "p.psk"});
  EXPECT_TRUE(Opts2.valid()); // sample has no --data requirement
}

TEST(ToolOptionsTest, MalformedBindingsRejected) {
  EXPECT_FALSE(ToolOptions::parse(
                   {"sample", "--program", "p", "--int", "n"})
                   .valid());
  EXPECT_FALSE(ToolOptions::parse(
                   {"sample", "--program", "p", "--real", "x=abc"})
                   .valid());
  EXPECT_FALSE(ToolOptions::parse(
                   {"sample", "--program", "p", "--ints", "a=1,,2"})
                   .valid());
}

TEST(ToolOptionsTest, MissingFlagValueRejected) {
  auto Opts = ToolOptions::parse({"print", "--program"});
  EXPECT_FALSE(Opts.valid());
}

TEST(ToolOptionsTest, SlotListAccumulates) {
  auto Opts = ToolOptions::parse({"report", "--program", "p", "--data",
                                  "d", "--slot", "x", "--slot", "y"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_EQ(Opts.Slots, (std::vector<std::string>{"x", "y"}));
}

TEST(ToolOptionsTest, UsageIsNonEmpty) {
  EXPECT_NE(toolUsage().find("psketch"), std::string::npos);
}

TEST(ToolOptionsTest, SynthTelemetryFlagsParse) {
  auto Opts = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv", "--trace-out",
       "t.jsonl", "--metrics-out", "m.json", "--progress"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_EQ(Opts.TraceOutPath, "t.jsonl");
  EXPECT_EQ(Opts.MetricsOutPath, "m.json");
  EXPECT_TRUE(Opts.Progress);
}

TEST(ToolOptionsTest, TelemetryFlagsDefaultOff) {
  auto Opts = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_TRUE(Opts.TraceOutPath.empty());
  EXPECT_TRUE(Opts.MetricsOutPath.empty());
  EXPECT_FALSE(Opts.Progress);
}

TEST(ToolOptionsTest, TapeOptimizationFlagsParse) {
  auto Opts = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv", "--no-incremental",
       "--no-simplify", "--no-fuse", "--ffast-tape", "--column-cache-mb",
       "64"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_TRUE(Opts.NoIncremental);
  EXPECT_TRUE(Opts.NoSimplify);
  EXPECT_TRUE(Opts.NoFuse);
  EXPECT_TRUE(Opts.FastTape);
  EXPECT_EQ(Opts.ColumnCacheMB, 64u);
}

TEST(ToolOptionsTest, TapeOptimizationFlagsDefaultOn) {
  auto Opts = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_FALSE(Opts.NoIncremental);
  EXPECT_FALSE(Opts.NoSimplify);
  EXPECT_FALSE(Opts.NoFuse);
  EXPECT_FALSE(Opts.FastTape);
  EXPECT_EQ(Opts.ColumnCacheMB, 32u);
  EXPECT_FALSE(ToolOptions::parse({"synth", "--sketch", "s", "--data",
                                   "d", "--column-cache-mb", "x"})
                   .valid());
}

TEST(ToolOptionsTest, TraceStatsRequiresTraceOnly) {
  // --trace is required, --program/--sketch is not.
  auto Opts = ToolOptions::parse({"trace-stats", "--trace", "t.jsonl"});
  EXPECT_TRUE(Opts.valid());
  EXPECT_EQ(Opts.TracePaths, (std::vector<std::string>{"t.jsonl"}));
  EXPECT_FALSE(ToolOptions::parse({"trace-stats"}).valid());
}

TEST(ToolOptionsTest, TraceStatsAcceptsMultipleTraces) {
  auto Opts = ToolOptions::parse(
      {"trace-stats", "--trace", "a.jsonl", "--trace", "b.jsonl"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_EQ(Opts.TracePaths,
            (std::vector<std::string>{"a.jsonl", "b.jsonl"}));
}

TEST(ToolOptionsTest, ProfileFlagAndCommandParse) {
  // --profile on synth: off by default, a plain switch when given.
  auto Synth = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv"});
  ASSERT_TRUE(Synth.valid());
  EXPECT_FALSE(Synth.Profile);
  auto Profiled = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv", "--profile",
       "--profile-sample-every", "8"});
  ASSERT_TRUE(Profiled.valid());
  EXPECT_TRUE(Profiled.Profile);
  EXPECT_EQ(Profiled.ProfileSampleEvery, 8u);
  // 0 would divide by zero in the sampler; it clamps to 1.
  EXPECT_EQ(ToolOptions::parse({"synth", "--sketch", "s.psk", "--data",
                                "d.csv", "--profile-sample-every", "0"})
                .ProfileSampleEvery,
            1u);

  // The profile subcommand needs a sketch and data like synth, and
  // accepts report destinations.
  auto Cmd = ToolOptions::parse(
      {"profile", "--sketch", "s.psk", "--data", "d.csv", "--out",
       "p.json", "--folded", "p.folded"});
  ASSERT_TRUE(Cmd.valid()) << (Cmd.Errors.empty() ? "" : Cmd.Errors[0]);
  EXPECT_EQ(Cmd.Command, "profile");
  EXPECT_EQ(Cmd.OutPath, "p.json");
  EXPECT_EQ(Cmd.FoldedOutPath, "p.folded");
  EXPECT_FALSE(ToolOptions::parse({"profile", "--sketch", "s.psk"})
                   .valid());
}

TEST(ToolOptionsTest, BenchDiffParsesPositionalsAndTolerance) {
  auto Opts = ToolOptions::parse(
      {"bench-diff", "old.json", "new.json", "--tolerance", "0.2"});
  ASSERT_TRUE(Opts.valid()) << (Opts.Errors.empty() ? "" : Opts.Errors[0]);
  EXPECT_EQ(Opts.Command, "bench-diff");
  EXPECT_EQ(Opts.BenchOldPath, "old.json");
  EXPECT_EQ(Opts.BenchNewPath, "new.json");
  EXPECT_DOUBLE_EQ(Opts.Tolerance, 0.2);

  // Default tolerance, both positionals required, no third one.
  auto Defaults = ToolOptions::parse({"bench-diff", "a.json", "b.json"});
  ASSERT_TRUE(Defaults.valid());
  EXPECT_DOUBLE_EQ(Defaults.Tolerance, 0.15);
  EXPECT_FALSE(ToolOptions::parse({"bench-diff", "a.json"}).valid());
  EXPECT_FALSE(ToolOptions::parse({"bench-diff"}).valid());
  EXPECT_FALSE(
      ToolOptions::parse({"bench-diff", "a.json", "b.json", "c.json"})
          .valid());
  // Tolerance must be a non-negative number.
  EXPECT_FALSE(ToolOptions::parse(
                   {"bench-diff", "a.json", "b.json", "--tolerance", "-1"})
                   .valid());
  EXPECT_FALSE(ToolOptions::parse(
                   {"bench-diff", "a.json", "b.json", "--tolerance", "x"})
                   .valid());
}

TEST(ToolOptionsTest, StaticAnalysisFlagParsesAndDefaultsOn) {
  auto Opts = ToolOptions::parse({"synth", "--sketch", "s.psk", "--data",
                                  "d.csv", "--no-static-analysis"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_TRUE(Opts.NoStaticAnalysis);
  auto Default = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv"});
  ASSERT_TRUE(Default.valid());
  EXPECT_FALSE(Default.NoStaticAnalysis);
}

TEST(ToolOptionsTest, LintCommandParses) {
  auto Opts = ToolOptions::parse({"lint", "--program", "p.psk"});
  ASSERT_TRUE(Opts.valid()) << (Opts.Errors.empty() ? "" : Opts.Errors[0]);
  EXPECT_EQ(Opts.Command, "lint");
  EXPECT_EQ(Opts.ProgramPath, "p.psk");
  // Like every program-consuming command, lint requires --program.
  EXPECT_FALSE(ToolOptions::parse({"lint"}).valid());
}

TEST(ToolOptionsTest, AnalyzeCommandParses) {
  auto Opts = ToolOptions::parse({"analyze", "--program", "p.psk"});
  ASSERT_TRUE(Opts.valid()) << (Opts.Errors.empty() ? "" : Opts.Errors[0]);
  EXPECT_EQ(Opts.Command, "analyze");
  EXPECT_EQ(Opts.ProgramPath, "p.psk");
  EXPECT_TRUE(Opts.DotOutPath.empty());
  // The program is required; data is optional (it only marks columns
  // as observed in the report).
  EXPECT_FALSE(ToolOptions::parse({"analyze"}).valid());
  EXPECT_TRUE(ToolOptions::parse(
                  {"analyze", "--program", "p.psk", "--data", "d.csv"})
                  .valid());
}

TEST(ToolOptionsTest, AnalyzeDotOutParses) {
  auto Opts = ToolOptions::parse(
      {"analyze", "--program", "p.psk", "--dot-out", "dep.dot"});
  ASSERT_TRUE(Opts.valid()) << (Opts.Errors.empty() ? "" : Opts.Errors[0]);
  EXPECT_EQ(Opts.DotOutPath, "dep.dot");
  EXPECT_FALSE(
      ToolOptions::parse({"analyze", "--program", "p.psk", "--dot-out"})
          .valid());
}

TEST(ToolOptionsTest, DurabilityFlagsParse) {
  auto Opts = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv", "--checkpoint-out",
       "run.ckpt", "--checkpoint-every", "500", "--checkpoint-keep", "3",
       "--resume", "old.ckpt", "--deadline-s", "30.5",
       "--min-proposals-per-s", "100"});
  ASSERT_TRUE(Opts.valid()) << (Opts.Errors.empty() ? "" : Opts.Errors[0]);
  EXPECT_EQ(Opts.CheckpointOutPath, "run.ckpt");
  EXPECT_EQ(Opts.CheckpointEvery, 500u);
  EXPECT_EQ(Opts.CheckpointKeep, 3u);
  EXPECT_EQ(Opts.ResumePath, "old.ckpt");
  EXPECT_DOUBLE_EQ(Opts.DeadlineSeconds, 30.5);
  EXPECT_DOUBLE_EQ(Opts.MinProposalsPerSec, 100.0);
}

TEST(ToolOptionsTest, DurabilityFlagsDefaultOff) {
  auto Opts = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_TRUE(Opts.CheckpointOutPath.empty());
  EXPECT_EQ(Opts.CheckpointEvery, 0u);
  EXPECT_EQ(Opts.CheckpointKeep, 2u);
  EXPECT_TRUE(Opts.ResumePath.empty());
  EXPECT_DOUBLE_EQ(Opts.DeadlineSeconds, 0.0);
  EXPECT_DOUBLE_EQ(Opts.MinProposalsPerSec, 0.0);
  // Keeping zero rotated snapshots makes no sense; it clamps to 1.
  EXPECT_EQ(ToolOptions::parse({"synth", "--sketch", "s", "--data", "d",
                                "--checkpoint-keep", "0"})
                .CheckpointKeep,
            1u);
  // Malformed numerics are rejected like every other numeric flag.
  EXPECT_FALSE(ToolOptions::parse({"synth", "--sketch", "s", "--data", "d",
                                   "--deadline-s", "soon"})
                   .valid());
  EXPECT_FALSE(ToolOptions::parse({"synth", "--sketch", "s", "--data", "d",
                                   "--checkpoint-every", "x"})
                   .valid());
}

TEST(ToolOptionsTest, UsageListsDurabilityFlags) {
  std::string Usage = toolUsage();
  EXPECT_NE(Usage.find("--checkpoint-out"), std::string::npos);
  EXPECT_NE(Usage.find("--resume"), std::string::npos);
  EXPECT_NE(Usage.find("--deadline-s"), std::string::npos);
  EXPECT_NE(Usage.find("--min-proposals-per-s"), std::string::npos);
}

TEST(ToolOptionsTest, SliceFactoringFlagParsesAndDefaultsOn) {
  auto Opts = ToolOptions::parse({"synth", "--sketch", "s.psk", "--data",
                                  "d.csv", "--no-slice-factoring"});
  ASSERT_TRUE(Opts.valid());
  EXPECT_TRUE(Opts.NoSliceFactoring);
  auto Default = ToolOptions::parse(
      {"synth", "--sketch", "s.psk", "--data", "d.csv"});
  ASSERT_TRUE(Default.valid());
  EXPECT_FALSE(Default.NoSliceFactoring);
}
