//===- tests/support/CastingTest.cpp - isa/cast/dyn_cast unit tests -------===//

#include "support/Casting.h"

#include "ast/Expr.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

ExprPtr makeAdd() {
  return std::make_unique<BinaryExpr>(BinaryOp::Add, ConstExpr::real(1.0),
                                      ConstExpr::real(2.0));
}

} // namespace

TEST(CastingTest, IsaPositiveAndNegative) {
  ExprPtr E = makeAdd();
  EXPECT_TRUE(isa<BinaryExpr>(E.get()));
  EXPECT_FALSE(isa<ConstExpr>(E.get()));
  EXPECT_TRUE(isa<BinaryExpr>(*E));
}

TEST(CastingTest, CastReturnsTypedPointer) {
  ExprPtr E = makeAdd();
  BinaryExpr *B = cast<BinaryExpr>(E.get());
  EXPECT_EQ(B->getOp(), BinaryOp::Add);
  const Expr *CE = E.get();
  const BinaryExpr *CB = cast<BinaryExpr>(CE);
  EXPECT_EQ(CB, B);
}

TEST(CastingTest, CastReference) {
  ExprPtr E = makeAdd();
  BinaryExpr &B = cast<BinaryExpr>(*E);
  EXPECT_EQ(B.getOp(), BinaryOp::Add);
}

TEST(CastingTest, DynCastNullOnMismatch) {
  ExprPtr E = makeAdd();
  EXPECT_EQ(dyn_cast<ConstExpr>(E.get()), nullptr);
  EXPECT_NE(dyn_cast<BinaryExpr>(E.get()), nullptr);
}

TEST(CastingTest, DynCastOrNullHandlesNull) {
  Expr *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<ConstExpr>(Null), nullptr);
  ExprPtr E = makeAdd();
  EXPECT_NE(dyn_cast_or_null<BinaryExpr>(E.get()), nullptr);
}

TEST(CastingTest, WorksAcrossAllExprKinds) {
  ExprPtr V = std::make_unique<VarExpr>("x");
  ExprPtr H = std::make_unique<HoleExpr>(0, std::vector<ExprPtr>());
  ExprPtr S = std::make_unique<SampleExpr>(
      DistKind::Bernoulli, [] {
        std::vector<ExprPtr> Args;
        Args.push_back(ConstExpr::real(0.5));
        return Args;
      }());
  EXPECT_TRUE(isa<VarExpr>(V.get()));
  EXPECT_TRUE(isa<HoleExpr>(H.get()));
  EXPECT_TRUE(isa<SampleExpr>(S.get()));
  EXPECT_FALSE(isa<VarExpr>(H.get()));
}
