//===- tests/support/SpecialTest.cpp - Special-function unit tests --------===//

#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

TEST(SpecialTest, GaussianPdfStandardNormalAtZero) {
  EXPECT_NEAR(gaussianPdf(0.0, 0.0, 1.0), 0.3989422804014327, 1e-12);
}

TEST(SpecialTest, GaussianPdfScalesWithSigma) {
  EXPECT_NEAR(gaussianPdf(5.0, 5.0, 2.0), 0.3989422804014327 / 2.0, 1e-12);
}

TEST(SpecialTest, GaussianLogPdfMatchesLogOfPdf) {
  for (double X : {-3.0, -1.0, 0.0, 0.5, 2.0})
    EXPECT_NEAR(gaussianLogPdf(X, 1.0, 2.5),
                std::log(gaussianPdf(X, 1.0, 2.5)), 1e-12);
}

TEST(SpecialTest, GaussianLogPdfDegenerateSigmaIsFinite) {
  double LL = gaussianLogPdf(1.0, 1.0, 0.0);
  EXPECT_TRUE(std::isfinite(LL));
  EXPECT_LT(LL, -100);
}

TEST(SpecialTest, GaussianCdfAtMeanIsHalf) {
  EXPECT_NEAR(gaussianCdf(7.0, 7.0, 3.0), 0.5, 1e-12);
}

TEST(SpecialTest, GaussianCdfMonotone) {
  double Prev = 0;
  for (double X = -5; X <= 5; X += 0.25) {
    double C = gaussianCdf(X, 0.0, 1.0);
    EXPECT_GE(C, Prev);
    Prev = C;
  }
}

TEST(SpecialTest, GaussianCdfDegenerateSigmaIsStep) {
  EXPECT_EQ(gaussianCdf(1.0, 2.0, 0.0), 0.0);
  EXPECT_EQ(gaussianCdf(3.0, 2.0, 0.0), 1.0);
}

TEST(SpecialTest, GaussianGreaterProbSymmetricEqualMeans) {
  EXPECT_NEAR(gaussianGreaterProb(0, 1, 0, 1), 0.5, 1e-12);
}

TEST(SpecialTest, GaussianGreaterProbComplement) {
  double P = gaussianGreaterProb(1.0, 2.0, 3.0, 0.5);
  double Q = gaussianGreaterProb(3.0, 0.5, 1.0, 2.0);
  EXPECT_NEAR(P + Q, 1.0, 1e-12);
}

TEST(SpecialTest, GaussianGreaterProbDominantMean) {
  EXPECT_GT(gaussianGreaterProb(10.0, 1.0, 0.0, 1.0), 0.999);
  EXPECT_LT(gaussianGreaterProb(0.0, 1.0, 10.0, 1.0), 0.001);
}

TEST(SpecialTest, GaussianGreaterProbDegenerate) {
  EXPECT_EQ(gaussianGreaterProb(2.0, 0.0, 1.0, 0.0), 1.0);
  EXPECT_EQ(gaussianGreaterProb(1.0, 0.0, 2.0, 0.0), 0.0);
  EXPECT_EQ(gaussianGreaterProb(1.0, 0.0, 1.0, 0.0), 0.5);
}

TEST(SpecialTest, LogAddExpBasic) {
  EXPECT_NEAR(logAddExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
}

TEST(SpecialTest, LogAddExpHandlesNegInfinity) {
  double NegInf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(logAddExp(NegInf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(logAddExp(1.5, NegInf), 1.5);
}

TEST(SpecialTest, LogAddExpExtremeScales) {
  // Would overflow in linear space.
  EXPECT_NEAR(logAddExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
}

TEST(SpecialTest, LogSumExpMatchesDirectSum) {
  std::vector<double> V = {std::log(1.0), std::log(2.0), std::log(4.0)};
  EXPECT_NEAR(logSumExp(V), std::log(7.0), 1e-12);
}

TEST(SpecialTest, ClampProbBounds) {
  EXPECT_EQ(clampProb(-1.0), TinyProb);
  EXPECT_EQ(clampProb(2.0), 1.0 - 1e-15);
  EXPECT_EQ(clampProb(0.5), 0.5);
  EXPECT_EQ(clampProb(std::nan("")), TinyProb);
}

TEST(SpecialTest, BernoulliLogPmf) {
  EXPECT_NEAR(bernoulliLogPmf(true, 0.25), std::log(0.25), 1e-12);
  EXPECT_NEAR(bernoulliLogPmf(false, 0.25), std::log(0.75), 1e-12);
  EXPECT_TRUE(std::isfinite(bernoulliLogPmf(true, 0.0)));
}

TEST(SpecialTest, MixtureLogPdfSingleComponent) {
  EXPECT_NEAR(mixtureLogPdf(1.0, {1.0}, {0.0}, {2.0}),
              gaussianLogPdf(1.0, 0.0, 2.0), 1e-12);
}

TEST(SpecialTest, MixtureLogPdfTwoComponents) {
  double Direct = std::log(0.3 * gaussianPdf(1.0, 0.0, 1.0) +
                           0.7 * gaussianPdf(1.0, 5.0, 2.0));
  EXPECT_NEAR(mixtureLogPdf(1.0, {0.3, 0.7}, {0.0, 5.0}, {1.0, 2.0}),
              Direct, 1e-12);
}

TEST(SpecialTest, BetaMomentsUniform) {
  double Mean, Sd;
  betaMoments(1.0, 1.0, Mean, Sd);
  EXPECT_NEAR(Mean, 0.5, 1e-12);
  EXPECT_NEAR(Sd, std::sqrt(1.0 / 12.0), 1e-12);
}

TEST(SpecialTest, BetaMomentsSkewed) {
  double Mean, Sd;
  betaMoments(2.0, 6.0, Mean, Sd);
  EXPECT_NEAR(Mean, 0.25, 1e-12);
  EXPECT_NEAR(Sd, std::sqrt(2.0 * 6.0 / (64.0 * 9.0)), 1e-12);
}

TEST(SpecialTest, GammaMoments) {
  double Mean, Sd;
  gammaMoments(4.0, 0.5, Mean, Sd);
  EXPECT_NEAR(Mean, 2.0, 1e-12);
  EXPECT_NEAR(Sd, 1.0, 1e-12);
}

TEST(SpecialTest, PoissonMomentsMatchRate) {
  double Mean, Sd;
  poissonMoments(9.0, Mean, Sd);
  EXPECT_NEAR(Mean, 9.0, 1e-12);
  EXPECT_NEAR(Sd, 3.0, 1e-12);
}
