//===- tests/support/DiagTest.cpp - Diagnostics unit tests -----------------===//

#include "support/Diag.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(DiagTest, SourceLocValidity) {
  SourceLoc Unknown;
  EXPECT_FALSE(Unknown.isValid());
  EXPECT_EQ(Unknown.str(), "<unknown>");
  SourceLoc Loc{3, 7};
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "3:7");
}

TEST(DiagTest, ErrorCountsAndFlags) {
  DiagEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning({1, 1}, "just a warning");
  EXPECT_FALSE(D.hasErrors());
  D.error({2, 1}, "an error");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  D.error({3, 1}, "another");
  EXPECT_EQ(D.errorCount(), 2u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(DiagTest, RenderedFormat) {
  DiagEngine D;
  D.error({4, 2}, "expected ';'");
  EXPECT_EQ(D.diagnostics()[0].str(), "4:2: error: expected ';'");
  D.note({4, 3}, "see here");
  EXPECT_EQ(D.diagnostics()[1].str(), "4:3: note: see here");
  D.warning({1, 1}, "odd");
  EXPECT_EQ(D.diagnostics()[2].str(), "1:1: warning: odd");
}

TEST(DiagTest, StrJoinsAllDiagnostics) {
  DiagEngine D;
  D.error({1, 1}, "one");
  D.error({2, 2}, "two");
  EXPECT_EQ(D.str(), "1:1: error: one\n2:2: error: two\n");
}

TEST(DiagTest, ClearResets) {
  DiagEngine D;
  D.error({1, 1}, "boom");
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.diagnostics().empty());
  EXPECT_EQ(D.str(), "");
}
