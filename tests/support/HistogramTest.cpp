//===- tests/support/HistogramTest.cpp - Histogram unit tests -------------===//

#include "support/Histogram.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

TEST(HistogramTest, BinsAndRange) {
  Histogram H(0.0, 10.0, 5);
  EXPECT_EQ(H.bins(), 5u);
  EXPECT_EQ(H.lo(), 0.0);
  EXPECT_EQ(H.hi(), 10.0);
  EXPECT_EQ(H.total(), 0u);
}

TEST(HistogramTest, BinCenters) {
  Histogram H(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(H.binCenter(0), 1.0);
  EXPECT_DOUBLE_EQ(H.binCenter(4), 9.0);
}

TEST(HistogramTest, AddPlacesInCorrectBin) {
  Histogram H(0.0, 10.0, 5);
  H.add(2.5);
  EXPECT_DOUBLE_EQ(H.mass(1), 1.0);
  EXPECT_DOUBLE_EQ(H.mass(0), 0.0);
}

TEST(HistogramTest, OutOfRangeClampsToBoundaryBins) {
  Histogram H(0.0, 10.0, 5);
  H.add(-100.0);
  H.add(100.0);
  EXPECT_DOUBLE_EQ(H.mass(0), 0.5);
  EXPECT_DOUBLE_EQ(H.mass(4), 0.5);
  EXPECT_EQ(H.total(), 2u);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram H(-5.0, 5.0, 20);
  for (int I = 0; I < 1000; ++I)
    H.add(-4.9 + 9.8 * (I / 1000.0));
  double Width = 10.0 / 20.0;
  double Mass = 0;
  for (size_t I = 0; I < H.bins(); ++I)
    Mass += H.density(I) * Width;
  EXPECT_NEAR(Mass, 1.0, 1e-9);
}

TEST(HistogramTest, MeanAndStddev) {
  Histogram H(0.0, 10.0, 10);
  H.addAll({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(H.mean(), 5.0);
  EXPECT_NEAR(H.stddev(), std::sqrt(5.0), 1e-12);
}

TEST(HistogramTest, L1DistanceIdenticalIsZero) {
  Histogram A(0.0, 1.0, 4), B(0.0, 1.0, 4);
  A.addAll({0.1, 0.6});
  B.addAll({0.1, 0.6});
  EXPECT_DOUBLE_EQ(Histogram::l1Distance(A, B), 0.0);
}

TEST(HistogramTest, L1DistanceDisjointIsTwo) {
  Histogram A(0.0, 1.0, 4), B(0.0, 1.0, 4);
  A.add(0.1);
  B.add(0.9);
  EXPECT_DOUBLE_EQ(Histogram::l1Distance(A, B), 2.0);
}

TEST(HistogramTest, SeriesHasOneLinePerBin) {
  Histogram H(0.0, 1.0, 3);
  H.add(0.5);
  std::string S = H.series("label");
  size_t Lines = 0;
  for (char C : S)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 3u);
  EXPECT_EQ(S.rfind("label ", 0), 0u);
}

TEST(HistogramTest, EmptyHistogramHasZeroDensity) {
  Histogram H(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(H.density(0), 0.0);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);
  EXPECT_DOUBLE_EQ(H.stddev(), 0.0);
}
