//===- tests/support/ThreadPoolTest.cpp - Worker pool unit tests ----------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <gtest/gtest.h>

using namespace psketch;

TEST(ThreadPoolTest, RunsEveryJob) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoJobsReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  SUCCEED();
}

TEST(ThreadPoolTest, JobsWriteDisjointSlots) {
  // The synthesizer's usage pattern: each job owns one output slot;
  // after wait() every slot is filled.
  ThreadPool Pool(3);
  std::vector<int> Slots(64, 0);
  for (size_t I = 0; I != Slots.size(); ++I)
    Pool.submit([&Slots, I] { Slots[I] = int(I) + 1; });
  Pool.wait();
  for (size_t I = 0; I != Slots.size(); ++I)
    EXPECT_EQ(Slots[I], int(I) + 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Wave = 0; Wave != 3; ++Wave) {
    for (int I = 0; I != 10; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Wave + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingJobs) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 20; ++I)
      Pool.submit([&Count] { ++Count; });
  } // No wait(): the destructor must still run everything.
  EXPECT_EQ(Count.load(), 20);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolveThreadCount(5), 5u);
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
}

TEST(ThreadPoolTest, GroupWaitCoversOnlyItsOwnJobs) {
  // Two clients sharing one pool (the row-parallel evaluators of
  // concurrent chains): waiting on one group must see all of that
  // group's jobs done, whatever the other group is still running.
  ThreadPool Pool(3);
  std::atomic<int> A{0}, B{0};
  for (int Wave = 0; Wave != 20; ++Wave) {
    ThreadPool::Group GA, GB;
    for (int I = 0; I != 8; ++I)
      Pool.submit(GA, [&A] { ++A; });
    for (int I = 0; I != 5; ++I)
      Pool.submit(GB, [&B] { ++B; });
    Pool.wait(GA);
    EXPECT_EQ(A.load(), (Wave + 1) * 8);
    Pool.wait(GB);
    EXPECT_EQ(B.load(), (Wave + 1) * 5);
  }
  Pool.wait();
}

TEST(ThreadPoolTest, GroupWaitWithNoJobsReturnsImmediately) {
  ThreadPool Pool(2);
  ThreadPool::Group G;
  Pool.wait(G);
  SUCCEED();
}

TEST(ThreadPoolTest, GroupJobsAlsoCountTowardPoolWait) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  ThreadPool::Group G;
  for (int I = 0; I != 30; ++I)
    Pool.submit(G, [&Count] { ++Count; });
  Pool.wait(); // Pool-wide wait, not the group's.
  EXPECT_EQ(Count.load(), 30);
  Pool.wait(G); // Already drained; must not hang.
}
