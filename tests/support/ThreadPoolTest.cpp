//===- tests/support/ThreadPoolTest.cpp - Worker pool unit tests ----------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <gtest/gtest.h>

using namespace psketch;

TEST(ThreadPoolTest, RunsEveryJob) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoJobsReturnsImmediately) {
  ThreadPool Pool(2);
  Pool.wait();
  SUCCEED();
}

TEST(ThreadPoolTest, JobsWriteDisjointSlots) {
  // The synthesizer's usage pattern: each job owns one output slot;
  // after wait() every slot is filled.
  ThreadPool Pool(3);
  std::vector<int> Slots(64, 0);
  for (size_t I = 0; I != Slots.size(); ++I)
    Pool.submit([&Slots, I] { Slots[I] = int(I) + 1; });
  Pool.wait();
  for (size_t I = 0; I != Slots.size(); ++I)
    EXPECT_EQ(Slots[I], int(I) + 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int Wave = 0; Wave != 3; ++Wave) {
    for (int I = 0; I != 10; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Wave + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingJobs) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 20; ++I)
      Pool.submit([&Count] { ++Count; });
  } // No wait(): the destructor must still run everything.
  EXPECT_EQ(Count.load(), 20);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::resolveThreadCount(5), 5u);
  EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
}

TEST(ThreadPoolTest, GroupWaitCoversOnlyItsOwnJobs) {
  // Two clients sharing one pool (the row-parallel evaluators of
  // concurrent chains): waiting on one group must see all of that
  // group's jobs done, whatever the other group is still running.
  ThreadPool Pool(3);
  std::atomic<int> A{0}, B{0};
  for (int Wave = 0; Wave != 20; ++Wave) {
    ThreadPool::Group GA, GB;
    for (int I = 0; I != 8; ++I)
      Pool.submit(GA, [&A] { ++A; });
    for (int I = 0; I != 5; ++I)
      Pool.submit(GB, [&B] { ++B; });
    Pool.wait(GA);
    EXPECT_EQ(A.load(), (Wave + 1) * 8);
    Pool.wait(GB);
    EXPECT_EQ(B.load(), (Wave + 1) * 5);
  }
  Pool.wait();
}

TEST(ThreadPoolTest, GroupWaitWithNoJobsReturnsImmediately) {
  ThreadPool Pool(2);
  ThreadPool::Group G;
  Pool.wait(G);
  SUCCEED();
}

TEST(ThreadPoolTest, GroupJobsAlsoCountTowardPoolWait) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  ThreadPool::Group G;
  for (int I = 0; I != 30; ++I)
    Pool.submit(G, [&Count] { ++Count; });
  Pool.wait(); // Pool-wide wait, not the group's.
  EXPECT_EQ(Count.load(), 30);
  Pool.wait(G); // Already drained; must not hang.
}

TEST(ThreadPoolTest, NestedGroupWaits) {
  // A job running under an outer group submits and waits on an inner
  // group (a speculation worker driving row-parallel scoring does
  // exactly this).  Needs spare workers so the inner jobs can start
  // while the outer job blocks.
  ThreadPool Pool(4);
  std::atomic<int> Inner{0};
  std::atomic<int> InnerSeenByOuter{-1};
  ThreadPool::Group Outer;
  Pool.submit(Outer, [&] {
    ThreadPool::Group G;
    for (int I = 0; I != 16; ++I)
      Pool.submit(G, [&Inner] { ++Inner; });
    Pool.wait(G);
    InnerSeenByOuter = Inner.load();
  });
  Pool.wait(Outer);
  EXPECT_EQ(Inner.load(), 16);
  // The inner wait really completed inside the outer job.
  EXPECT_EQ(InnerSeenByOuter.load(), 16);
}

TEST(ThreadPoolTest, CancelDropsQueuedUnstartedJobs) {
  // One worker pinned on a gate job; everything queued behind it is
  // still unstarted when cancel() runs and must never execute.
  ThreadPool Pool(1);
  std::atomic<bool> Started{false}, Release{false};
  std::atomic<int> Ran{0};
  ThreadPool::Group G;
  Pool.submit(G, [&Started, &Release] {
    Started = true;
    while (!Release.load())
      std::this_thread::yield();
  });
  while (!Started.load()) // The gate must be running, not queued,
    std::this_thread::yield(); // or cancel() would drop it too.
  for (int I = 0; I != 10; ++I)
    Pool.submit(G, [&Ran] { ++Ran; });
  size_t Dropped = Pool.cancel(G);
  EXPECT_EQ(Dropped, 10u);
  EXPECT_EQ(ThreadPool::cancelled(G), 10u);
  Release = true;
  Pool.wait(G); // Blocks only on the gate job, which is running.
  EXPECT_EQ(Ran.load(), 0);
}

TEST(ThreadPoolTest, CancelLeavesOtherGroupsAlone) {
  ThreadPool Pool(1);
  std::atomic<bool> Started{false}, Release{false};
  std::atomic<int> A{0}, B{0};
  ThreadPool::Group GA, GB;
  Pool.submit(GA, [&Started, &Release] {
    Started = true;
    while (!Release.load())
      std::this_thread::yield();
  });
  while (!Started.load())
    std::this_thread::yield();
  for (int I = 0; I != 6; ++I)
    Pool.submit(GA, [&A] { ++A; });
  for (int I = 0; I != 7; ++I)
    Pool.submit(GB, [&B] { ++B; });
  EXPECT_EQ(Pool.cancel(GA), 6u);
  Release = true;
  Pool.wait();
  EXPECT_EQ(A.load(), 0);
  EXPECT_EQ(B.load(), 7); // GB's jobs survived GA's cancellation.
}

TEST(ThreadPoolTest, CancelOnEmptyGroupIsANoOp) {
  ThreadPool Pool(2);
  ThreadPool::Group G;
  EXPECT_EQ(Pool.cancel(G), 0u);
  EXPECT_EQ(ThreadPool::cancelled(G), 0u);
  Pool.wait(G);
}

TEST(ThreadPoolTest, DestructorDrainsGroupJobsInFlight) {
  // Shutdown with group-tracked tasks in flight (the speculation
  // teardown path): the destructor must run or drop everything without
  // deadlocking, and never lose the count.
  std::atomic<int> Ran{0};
  int Submitted = 40;
  {
    ThreadPool Pool(3);
    ThreadPool::Group G;
    for (int I = 0; I != Submitted; ++I)
      Pool.submit(G, [&Ran] {
        std::this_thread::yield();
        ++Ran;
      });
    Pool.wait(G); // The group must be idle before it is destroyed.
  }
  EXPECT_EQ(Ran.load(), Submitted);
}

TEST(ThreadPoolTest, WaitAfterCancelThenReuseGroup) {
  // A group survives a cancel/wait cycle and can track new jobs — the
  // speculation scheduler reuses one group across blocks this way.
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  ThreadPool::Group G;
  for (int Block = 0; Block != 5; ++Block) {
    for (int I = 0; I != 12; ++I)
      Pool.submit(G, [&Ran] { ++Ran; });
    Pool.cancel(G); // Whatever had not started is dropped.
    Pool.wait(G);
  }
  // Every job either ran to completion or was counted as cancelled.
  EXPECT_EQ(uint64_t(Ran.load()) + ThreadPool::cancelled(G), 60u);
}
