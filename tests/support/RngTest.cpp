//===- tests/support/RngTest.cpp - Rng unit tests --------------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace psketch;

TEST(RngTest, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_DOUBLE_EQ(A.uniform(), B.uniform());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Different = 0;
  for (int I = 0; I < 32; ++I)
    Different += A.uniform() != B.uniform();
  EXPECT_GT(Different, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng A(7);
  double First = A.uniform();
  A.uniform();
  A.seed(7);
  EXPECT_DOUBLE_EQ(A.uniform(), First);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng R(4);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-3.0, 5.0);
    EXPECT_GE(U, -3.0);
    EXPECT_LT(U, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng R(5);
  std::set<int> Seen;
  for (int I = 0; I < 1000; ++I) {
    int V = R.uniformInt(2, 5);
    EXPECT_GE(V, 2);
    EXPECT_LE(V, 5);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(RngTest, IndexStaysInRange) {
  Rng R(6);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.index(7), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng R(8);
  double Sum = 0, SumSq = 0;
  const int N = 200000;
  for (int I = 0; I < N; ++I) {
    double X = R.gaussian(10.0, 3.0);
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(Var), 3.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng R(9);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Hits += R.bernoulli(0.3);
  EXPECT_NEAR(double(Hits) / N, 0.3, 0.01);
}

TEST(RngTest, BernoulliClampsProbability) {
  Rng R(10);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.bernoulli(-0.5));
    EXPECT_TRUE(R.bernoulli(1.5));
  }
}

TEST(RngTest, BetaMoments) {
  Rng R(11);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I) {
    double X = R.beta(2.0, 6.0);
    EXPECT_GE(X, 0.0);
    EXPECT_LE(X, 1.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / N, 0.25, 0.01);
}

TEST(RngTest, GammaMoments) {
  Rng R(12);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I) {
    double X = R.gamma(3.0, 2.0);
    EXPECT_GE(X, 0.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / N, 6.0, 0.1);
}

TEST(RngTest, PoissonMoments) {
  Rng R(13);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I) {
    int X = R.poisson(4.5);
    EXPECT_GE(X, 0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / N, 4.5, 0.1);
}

TEST(RngTest, PoissonZeroRate) {
  Rng R(14);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(R.poisson(0.0), 0);
}

TEST(RngTest, GeometricSupportStartsAtOne) {
  Rng R(15);
  for (int I = 0; I < 1000; ++I)
    EXPECT_GE(R.geometric(0.5), 1);
}

TEST(RngTest, GeometricMean) {
  Rng R(16);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Sum += R.geometric(0.25);
  EXPECT_NEAR(Sum / N, 4.0, 0.1);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng R(17);
  std::vector<double> W = {1.0, 0.0, 3.0};
  int Counts[3] = {0, 0, 0};
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    ++Counts[R.weightedIndex(W)];
  EXPECT_EQ(Counts[1], 0);
  EXPECT_NEAR(double(Counts[0]) / N, 0.25, 0.01);
  EXPECT_NEAR(double(Counts[2]) / N, 0.75, 0.01);
}

TEST(RngTest, PickReturnsElement) {
  Rng R(18);
  std::vector<int> Items = {4, 8, 15};
  for (int I = 0; I < 100; ++I) {
    int V = R.pick(Items);
    EXPECT_TRUE(V == 4 || V == 8 || V == 15);
  }
}

TEST(RngTest, SplitMix64IsAWellMixedPermutation) {
  // A permutation never collides; consecutive inputs must still land
  // far apart (the property that makes counter-keyed streams safe).
  std::set<uint64_t> Seen;
  for (uint64_t I = 0; I != 4096; ++I)
    Seen.insert(splitMix64(I));
  EXPECT_EQ(Seen.size(), 4096u);
  // Every output differs from its neighbor in many bit positions.
  for (uint64_t I = 0; I != 256; ++I) {
    int Flipped = __builtin_popcountll(splitMix64(I) ^ splitMix64(I + 1));
    EXPECT_GE(Flipped, 8) << "inputs " << I << " and " << I + 1;
  }
}

TEST(RngTest, DeriveStreamSeedIsPure) {
  // Same triple, same seed — no hidden state, no order dependence.
  uint64_t A = deriveStreamSeed(99, 0x70726f706f7365ULL, 41);
  uint64_t B = deriveStreamSeed(99, 0x70726f706f7365ULL, 41);
  EXPECT_EQ(A, B);
}

TEST(RngTest, DeriveStreamSeedSeparatesStreamsAndCounters) {
  std::set<uint64_t> Seen;
  for (uint64_t Stream : {uint64_t(1), uint64_t(2), uint64_t(3)})
    for (uint64_t Counter = 0; Counter != 512; ++Counter)
      Seen.insert(deriveStreamSeed(7, Stream, Counter));
  EXPECT_EQ(Seen.size(), 3u * 512u); // No collisions across the grid.
  // Different root seeds give different sub-streams too.
  EXPECT_NE(deriveStreamSeed(7, 1, 0), deriveStreamSeed(8, 1, 0));
}

TEST(RngTest, DerivedStreamsFeedIndependentEngines) {
  // The speculation use: a fresh engine seeded per iteration replays
  // the identical draw sequence no matter which engine ran before.
  uint64_t S = deriveStreamSeed(23, 0xABCD, 17);
  Rng R1(S);
  Rng R2(deriveStreamSeed(23, 0xABCD, 16)); // Perturb: different counter,
  R2.uniform();                             // different position.
  R2.seed(S);
  for (int I = 0; I != 64; ++I)
    EXPECT_EQ(R1.uniform(), R2.uniform());
}

TEST(RngTest, CounterUniformIsPureAndInUnitInterval) {
  for (uint64_t C = 0; C != 2048; ++C) {
    double U = counterUniform(5, 0x616363657074ULL, C);
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
    EXPECT_EQ(U, counterUniform(5, 0x616363657074ULL, C));
  }
}

TEST(RngTest, CounterUniformLooksUniform) {
  // Coarse frequency check over 16 bins: enough to catch a botched
  // mantissa construction without being flaky.
  int Bins[16] = {};
  const int N = 65536;
  for (int C = 0; C != N; ++C)
    ++Bins[int(counterUniform(11, 99, uint64_t(C)) * 16)];
  for (int B = 0; B != 16; ++B)
    EXPECT_NEAR(double(Bins[B]) / N, 1.0 / 16, 0.01) << "bin " << B;
}
