//===- tests/support/LogTest.cpp - PSKETCH_LOG unit tests -----------------===//

#include "support/Log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

using namespace psketch;

namespace {

/// Redirects the log sink and restores level + sink on destruction.
struct LogCapture {
  std::ostringstream OS;
  std::ostream *PrevStream;
  LogLevel PrevLevel;

  LogCapture() : PrevStream(setLogStream(&OS)), PrevLevel(logLevel()) {}
  ~LogCapture() {
    setLogStream(PrevStream);
    setLogLevel(PrevLevel);
  }
  std::string text() const { return OS.str(); }
};

} // namespace

TEST(LogTest, DefaultLevelIsWarn) {
  LogCapture Cap;
  setLogLevel(LogLevel::Warn);
  EXPECT_FALSE(logEnabled(LogLevel::Debug));
  EXPECT_FALSE(logEnabled(LogLevel::Info));
  EXPECT_TRUE(logEnabled(LogLevel::Warn));
  EXPECT_TRUE(logEnabled(LogLevel::Error));
}

TEST(LogTest, OffSilencesEverything) {
  LogCapture Cap;
  setLogLevel(LogLevel::Off);
  EXPECT_FALSE(logEnabled(LogLevel::Error));
  PSKETCH_LOG(Error, "test", "should not appear");
  EXPECT_EQ(Cap.text(), "");
}

TEST(LogTest, MessagesCarrySeverityAndComponent) {
  LogCapture Cap;
  setLogLevel(LogLevel::Info);
  PSKETCH_LOG(Info, "synth", "chain " << 3 << " finished");
  EXPECT_EQ(Cap.text(), "[info] synth: chain 3 finished\n");
}

TEST(LogTest, FilteredMessagesSkipStreamEvaluation) {
  LogCapture Cap;
  setLogLevel(LogLevel::Warn);
  int Evaluations = 0;
  auto Probe = [&Evaluations]() {
    ++Evaluations;
    return 1;
  };
  PSKETCH_LOG(Debug, "test", "value " << Probe());
  EXPECT_EQ(Evaluations, 0);
  EXPECT_EQ(Cap.text(), "");
  PSKETCH_LOG(Warn, "test", "value " << Probe());
  EXPECT_EQ(Evaluations, 1);
  EXPECT_EQ(Cap.text(), "[warn] test: value 1\n");
}

TEST(LogTest, LevelNamesAreStable) {
  EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
  EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
  EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
  EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
}

TEST(LogTest, ConcurrentMessagesNeverInterleave) {
  LogCapture Cap;
  setLogLevel(LogLevel::Info);
  constexpr unsigned Threads = 4, PerThread = 50;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([T] {
      for (unsigned I = 0; I != PerThread; ++I)
        PSKETCH_LOG(Info, "worker", "t" << T << " message " << I);
    });
  for (std::thread &W : Workers)
    W.join();

  // Every line is complete: starts with the severity tag, ends cleanly.
  std::istringstream IS(Cap.text());
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(IS, Line)) {
    ++Lines;
    EXPECT_EQ(Line.rfind("[info] worker: t", 0), 0u) << Line;
  }
  EXPECT_EQ(Lines, Threads * PerThread);
}
