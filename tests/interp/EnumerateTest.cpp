//===- tests/interp/EnumerateTest.cpp - Exact enumeration tests -----------===//

#include "interp/Enumerate.h"

#include "interp/Interp.h"
#include "likelihood/Likelihood.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "suite/Prepare.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

std::unique_ptr<LoweredProgram> lowerSource(const std::string &Source,
                                            const InputBindings &Inputs) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, Inputs, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  return LP;
}

} // namespace

TEST(EnumerateTest, SingleBernoulliMarginal) {
  auto LP = lowerSource(R"(
program P() {
  z: bool;
  z ~ Bernoulli(0.3);
  return z;
}
)",
                        {});
  ASSERT_TRUE(LP);
  auto D = ExactDistribution::enumerate(*LP);
  ASSERT_TRUE(D);
  EXPECT_NEAR(D->evidence(), 1.0, 1e-12);
  EXPECT_NEAR(D->marginalTrue("z"), 0.3, 1e-12);
  EXPECT_EQ(D->outcomes().size(), 2u);
}

TEST(EnumerateTest, ObserveConditionsExactly) {
  // Two coins, conditioned on at least one head:
  // Pr(a | a || b) = 0.5 / 0.75 = 2/3.
  auto LP = lowerSource(R"(
program P() {
  a: bool;
  b: bool;
  a ~ Bernoulli(0.5);
  b ~ Bernoulli(0.5);
  observe(a || b);
  return a, b;
}
)",
                        {});
  ASSERT_TRUE(LP);
  auto D = ExactDistribution::enumerate(*LP);
  ASSERT_TRUE(D);
  EXPECT_NEAR(D->evidence(), 0.75, 1e-12);
  EXPECT_NEAR(D->marginalTrue("a"), 2.0 / 3.0, 1e-12);
}

TEST(EnumerateTest, IfBranchesAreWeighted) {
  auto LP = lowerSource(R"(
program P() {
  z: bool;
  y: bool;
  z ~ Bernoulli(0.25);
  if (z) {
    y ~ Bernoulli(0.9);
  } else {
    y ~ Bernoulli(0.1);
  }
  return z, y;
}
)",
                        {});
  ASSERT_TRUE(LP);
  auto D = ExactDistribution::enumerate(*LP);
  ASSERT_TRUE(D);
  // Pr(y) = 0.25*0.9 + 0.75*0.1 = 0.3.
  EXPECT_NEAR(D->marginalTrue("y"), 0.3, 1e-12);
}

TEST(EnumerateTest, ContradictoryObserveFails) {
  auto LP = lowerSource(R"(
program P() {
  z: bool;
  z ~ Bernoulli(0.5);
  observe(z && !z);
  return z;
}
)",
                        {});
  ASSERT_TRUE(LP);
  EXPECT_FALSE(ExactDistribution::enumerate(*LP));
}

TEST(EnumerateTest, ContinuousDrawsAreRejected) {
  auto LP = lowerSource(R"(
program P() {
  x: real;
  x ~ Gaussian(0.0, 1.0);
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  EXPECT_FALSE(ExactDistribution::enumerate(*LP));
}

TEST(EnumerateTest, DeterministicArithmeticIsExact) {
  auto LP = lowerSource(R"(
program P() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.5);
  x = ite(z, 2.0 + 3.0, 10.0);
  return z, x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  auto D = ExactDistribution::enumerate(*LP);
  ASSERT_TRUE(D);
  EXPECT_NEAR(D->mean("x"), 7.5, 1e-12);
}

TEST(EnumerateTest, RowProbabilityMatchesHand) {
  auto LP = lowerSource(R"(
program P() {
  a: bool;
  b: bool;
  a ~ Bernoulli(0.2);
  b ~ Bernoulli(0.7);
  return a, b;
}
)",
                        {});
  ASSERT_TRUE(LP);
  auto D = ExactDistribution::enumerate(*LP);
  ASSERT_TRUE(D);
  EXPECT_NEAR(D->logProbabilityOfRow({"a", "b"}, {1.0, 0.0}),
              std::log(0.2 * 0.3), 1e-12);
}

TEST(EnumerateTest, AgreesWithRejectionSamplerOnBurglary) {
  const Benchmark *B = findBenchmark("Burglary");
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  ASSERT_TRUE(P) << Diags.str();
  auto D = ExactDistribution::enumerate(*P->TargetLowered);
  ASSERT_TRUE(D);
  // Exact posterior marginals vs a large rejection sample.
  Rng R(2024);
  ForwardSampler Sampler(*P->TargetLowered);
  const int N = 200000;
  int Valid = 0;
  std::map<std::string, int> TrueCounts;
  for (int I = 0; I != N; ++I) {
    auto Slots = Sampler.runOnce(R);
    if (!Slots)
      continue;
    ++Valid;
    for (const char *Slot : {"earthquake", "burglary", "maryWakes"})
      TrueCounts[Slot] += (*Slots)[P->TargetLowered->slotId(Slot)] != 0.0;
  }
  ASSERT_GT(Valid, 10000);
  for (const char *Slot : {"earthquake", "burglary", "maryWakes"})
    EXPECT_NEAR(D->marginalTrue(Slot),
                double(TrueCounts[Slot]) / double(Valid), 0.01)
        << Slot;
}

TEST(EnumerateTest, MoGLikelihoodIsExactWithoutConditioning) {
  // On an observe-free Boolean network the MoG path's sequential
  // factorization (each observed variable scored given the data values
  // of its ancestors) is the exact chain rule, so the two likelihoods
  // must coincide.
  auto LP = lowerSource(R"(
program Chain() {
  a: bool;
  b: bool;
  c: bool;
  a ~ Bernoulli(0.3);
  if (a) { b ~ Bernoulli(0.9); } else { b ~ Bernoulli(0.2); }
  c = a && b;
  return a, b, c;
}
)",
                        {});
  ASSERT_TRUE(LP);
  auto D = ExactDistribution::enumerate(*LP);
  ASSERT_TRUE(D);
  Rng R(31);
  Dataset Data = generateDataset(*LP, 200, R);
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  EXPECT_NEAR(F->logLikelihood(Data), D->logLikelihood(Data), 1e-6);
}

TEST(EnumerateTest, ConditionedFactorizationUnderestimatesExact) {
  // Under observe-conditioning the MoG path multiplies prior-based
  // conditionals with a single global observe factor, which is a lower
  // bound style approximation of the true posterior likelihood; the
  // exact enumerated posterior must score the (posterior-sampled) data
  // at least as well.  This gap is also why the Burglary synthesis can
  // legitimately beat the hand-written target program under the
  // approximate score: the exact posterior likelihood (about -104 on
  // the shipped dataset) is what the search converges toward.
  const Benchmark *B = findBenchmark("Burglary");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  ASSERT_TRUE(P) << Diags.str();
  auto D = ExactDistribution::enumerate(*P->TargetLowered);
  ASSERT_TRUE(D);
  auto F = LikelihoodFunction::compile(*P->TargetLowered, P->Data);
  ASSERT_TRUE(F);
  double MoG = F->logLikelihood(P->Data);
  double Exact = D->logLikelihood(P->Data);
  EXPECT_GT(Exact, MoG);
  // And the exact posterior score sits near the paper-row synthesized
  // score (Table 1 in EXPERIMENTS.md).
  EXPECT_NEAR(Exact, -104.0, 5.0);
}

TEST(EnumerateTest, PathExplosionGuard) {
  auto LP = lowerSource(R"(
program P(n: int) {
  a: bool[n];
  for i in 0..n { a[i] ~ Bernoulli(0.5); }
  return a;
}
)",
                        [] {
                          InputBindings In;
                          In.setInt("n", 12);
                          return In;
                        }());
  ASSERT_TRUE(LP);
  // 4096 outcomes: fine with the default cap, rejected with a tiny one.
  EXPECT_TRUE(ExactDistribution::enumerate(*LP).has_value());
  EXPECT_FALSE(ExactDistribution::enumerate(*LP, 100).has_value());
}
