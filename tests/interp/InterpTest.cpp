//===- tests/interp/InterpTest.cpp - Forward sampler unit tests -----------===//

#include "interp/Interp.h"

#include "parse/Parser.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

std::unique_ptr<LoweredProgram> lowerSource(const std::string &Source,
                                            const InputBindings &Inputs) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, Inputs, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  return LP;
}

} // namespace

TEST(InterpTest, DeterministicProgramIsExact) {
  auto LP = lowerSource(R"(
program D() {
  x: real;
  y: real;
  b: bool;
  x = 2.0 + 3.0 * 4.0;
  y = ite(x > 10.0, x - 1.0, x + 1.0);
  b = !(x < y);
  return x, y, b;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(1);
  ForwardSampler S(*LP);
  auto Slots = S.runOnce(R);
  ASSERT_TRUE(Slots);
  EXPECT_DOUBLE_EQ((*Slots)[LP->slotId("x")], 14.0);
  EXPECT_DOUBLE_EQ((*Slots)[LP->slotId("y")], 13.0);
  EXPECT_DOUBLE_EQ((*Slots)[LP->slotId("b")], 1.0);
}

TEST(InterpTest, GaussianSampleMoments) {
  auto LP = lowerSource(R"(
program G() {
  x: real;
  x ~ Gaussian(10.0, 2.0);
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(2);
  ForwardSampler S(*LP);
  double Sum = 0, SumSq = 0;
  const int N = 50000;
  unsigned Id = LP->slotId("x");
  for (int I = 0; I < N; ++I) {
    auto Slots = S.runOnce(R);
    ASSERT_TRUE(Slots);
    Sum += (*Slots)[Id];
    SumSq += (*Slots)[Id] * (*Slots)[Id];
  }
  double Mean = Sum / N;
  EXPECT_NEAR(Mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(SumSq / N - Mean * Mean), 2.0, 0.05);
}

TEST(InterpTest, ObserveRejectsInvalidRuns) {
  auto LP = lowerSource(R"(
program O() {
  z: bool;
  z ~ Bernoulli(0.5);
  observe(z);
  return z;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(3);
  ForwardSampler S(*LP);
  // All surviving runs satisfy the observation.
  unsigned Id = LP->slotId("z");
  int Valid = 0;
  for (int I = 0; I < 1000; ++I) {
    auto Slots = S.runOnce(R);
    if (!Slots)
      continue;
    ++Valid;
    EXPECT_DOUBLE_EQ((*Slots)[Id], 1.0);
  }
  EXPECT_NEAR(double(Valid) / 1000.0, 0.5, 0.05);
}

TEST(InterpTest, AcceptanceRateMatchesObserveProbability) {
  auto LP = lowerSource(R"(
program O() {
  z: bool;
  z ~ Bernoulli(0.2);
  observe(z);
  return z;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(4);
  ForwardSampler S(*LP);
  EXPECT_NEAR(S.acceptanceRate(R, 20000), 0.2, 0.01);
}

TEST(InterpTest, IfTakesSampledBranch) {
  auto LP = lowerSource(R"(
program B() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.25);
  if (z) { x = 1.0; } else { x = 0.0; }
  return z, x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(5);
  ForwardSampler S(*LP);
  double SumX = 0;
  const int N = 40000;
  for (int I = 0; I < N; ++I) {
    auto Slots = S.runOnce(R);
    ASSERT_TRUE(Slots);
    EXPECT_EQ((*Slots)[LP->slotId("x")], (*Slots)[LP->slotId("z")]);
    SumX += (*Slots)[LP->slotId("x")];
  }
  EXPECT_NEAR(SumX / N, 0.25, 0.01);
}

TEST(InterpTest, GenerateDatasetShape) {
  auto LP = lowerSource(R"(
program G(n: int) {
  a: real[n];
  for i in 0..n { a[i] ~ Gaussian(0.0, 1.0); }
  return a;
}
)",
                        [] {
                          InputBindings In;
                          In.setInt("n", 3);
                          return In;
                        }());
  ASSERT_TRUE(LP);
  Rng R(6);
  Dataset Data = generateDataset(*LP, 25, R);
  EXPECT_EQ(Data.numRows(), 25u);
  EXPECT_EQ(Data.numColumns(), 3u);
  EXPECT_EQ(Data.columns()[1], "a[1]");
}

TEST(InterpTest, GenerateDatasetGivesUpGracefully) {
  auto LP = lowerSource(R"(
program Impossible() {
  z: bool;
  z ~ Bernoulli(0.5);
  observe(z && !z);
  return z;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(7);
  Dataset Data = generateDataset(*LP, 10, R, /*MaxAttempts=*/2000);
  EXPECT_EQ(Data.numRows(), 0u);
}

TEST(InterpTest, PosteriorShiftsTowardObservations) {
  // Conditioning on player 0 beating player 1 must raise player 0's
  // posterior mean above player 1's (the Figure 7 sanity property).
  const char *Source = R"(
program TS(p1: int, p2: int, result: bool) {
  skills: real[2];
  perf1: real;
  perf2: real;
  r: bool;
  skills[0] ~ Gaussian(100.0, 10.0);
  skills[1] ~ Gaussian(100.0, 10.0);
  perf1 ~ Gaussian(skills[p1], 15.0);
  perf2 ~ Gaussian(skills[p2], 15.0);
  r = perf1 > perf2;
  observe(result == r);
  return skills;
}
)";
  InputBindings In;
  In.setInt("p1", 0);
  In.setInt("p2", 1);
  In.setScalar("result", 1.0, ScalarKind::Bool);
  auto LP = lowerSource(Source, In);
  ASSERT_TRUE(LP);
  Rng R(8);
  auto S0 = posteriorSamples(*LP, "skills[0]", 4000, R);
  auto S1 = posteriorSamples(*LP, "skills[1]", 4000, R);
  ASSERT_EQ(S0.size(), 4000u);
  ASSERT_EQ(S1.size(), 4000u);
  double M0 = 0, M1 = 0;
  for (double X : S0)
    M0 += X;
  for (double X : S1)
    M1 += X;
  M0 /= double(S0.size());
  M1 /= double(S1.size());
  EXPECT_GT(M0, 100.0);
  EXPECT_LT(M1, 100.0);
  EXPECT_GT(M0 - M1, 3.0);
}

TEST(InterpTest, PosteriorSamplesUnknownSlotIsEmpty) {
  auto LP = lowerSource(R"(
program G() {
  x: real;
  x ~ Gaussian(0.0, 1.0);
  return x;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(9);
  EXPECT_TRUE(posteriorSamples(*LP, "nonexistent", 10, R).empty());
}

TEST(InterpTest, BetaGammaPoissonDrawsAreInSupport) {
  auto LP = lowerSource(R"(
program D() {
  a: real;
  b: real;
  c: int;
  a ~ Beta(2.0, 3.0);
  b ~ Gamma(2.0, 1.5);
  c ~ Poisson(4.0);
  return a, b, c;
}
)",
                        {});
  ASSERT_TRUE(LP);
  Rng R(10);
  ForwardSampler S(*LP);
  for (int I = 0; I < 500; ++I) {
    auto Slots = S.runOnce(R);
    ASSERT_TRUE(Slots);
    double A = (*Slots)[LP->slotId("a")];
    double B = (*Slots)[LP->slotId("b")];
    double C = (*Slots)[LP->slotId("c")];
    EXPECT_GE(A, 0.0);
    EXPECT_LE(A, 1.0);
    EXPECT_GE(B, 0.0);
    EXPECT_GE(C, 0.0);
    EXPECT_EQ(C, std::floor(C));
  }
}

TEST(InterpTest, ShortCircuitAvoidsUnnecessaryDraws) {
  // false && Bernoulli(...) must not consume a draw: two programs with
  // and without the right operand behave identically given one seed.
  auto LP = lowerSource(R"(
program SC() {
  z: bool;
  x: real;
  z = false && Bernoulli(0.5);
  x ~ Gaussian(0.0, 1.0);
  return z, x;
}
)",
                        {});
  auto Ref = lowerSource(R"(
program Ref() {
  z: bool;
  x: real;
  z = false;
  x ~ Gaussian(0.0, 1.0);
  return z, x;
}
)",
                         {});
  ASSERT_TRUE(LP && Ref);
  Rng R1(11), R2(11);
  auto A = ForwardSampler(*LP).runOnce(R1);
  auto B = ForwardSampler(*Ref).runOnce(R2);
  ASSERT_TRUE(A && B);
  EXPECT_DOUBLE_EQ((*A)[LP->slotId("x")], (*B)[Ref->slotId("x")]);
}
