//===- tests/sem/DefiniteAssignmentTest.cpp - Definite assignment ---------===//

#include "parse/Parser.h"
#include "sem/Lower.h"
#include "sem/TypeCheck.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

/// Lowers and runs the definite-assignment check.
bool defAssignOk(const std::string &Source,
                 const InputBindings &Inputs = {}) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return false;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, Inputs, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  if (!LP)
    return false;
  DiagEngine CheckDiags;
  return checkDefiniteAssignment(*LP, CheckDiags);
}

} // namespace

TEST(DefiniteAssignmentTest, AcceptsStraightLine) {
  EXPECT_TRUE(defAssignOk(R"(
program P() {
  x: real;
  y: real;
  x = 1.0;
  y = x + 1.0;
  return y;
}
)"));
}

TEST(DefiniteAssignmentTest, RejectsReadBeforeWrite) {
  EXPECT_FALSE(defAssignOk(R"(
program P() {
  x: real;
  y: real;
  y = x + 1.0;
  x = 1.0;
  return y;
}
)"));
}

TEST(DefiniteAssignmentTest, RejectsSelfReferenceBeforeDefinition) {
  EXPECT_FALSE(defAssignOk(R"(
program P() {
  x: real;
  x = x + 1.0;
  return x;
}
)"));
}

TEST(DefiniteAssignmentTest, RejectsUnassignedReturn) {
  EXPECT_FALSE(defAssignOk(R"(
program P() {
  x: real;
  y: real;
  x = 1.0;
  return x, y;
}
)"));
}

TEST(DefiniteAssignmentTest, AcceptsDefinitionOnBothBranches) {
  EXPECT_TRUE(defAssignOk(R"(
program P() {
  b: bool;
  x: real;
  b ~ Bernoulli(0.5);
  if (b) { x = 1.0; } else { x = 2.0; }
  return x;
}
)"));
}

TEST(DefiniteAssignmentTest, RejectsOneSidedDefinition) {
  // The identity assignment injected by branch normalization reads the
  // undefined slot, so the candidate is rejected — exactly the class
  // of mutants the paper's quick check filters out.
  EXPECT_FALSE(defAssignOk(R"(
program P() {
  b: bool;
  x: real;
  b ~ Bernoulli(0.5);
  if (b) { x = 1.0; }
  return x;
}
)"));
}

TEST(DefiniteAssignmentTest, AcceptsOneSidedUpdateOfDefinedSlot) {
  EXPECT_TRUE(defAssignOk(R"(
program P() {
  b: bool;
  x: real;
  b ~ Bernoulli(0.5);
  x = 0.0;
  if (b) { x = 1.0; }
  return x;
}
)"));
}

TEST(DefiniteAssignmentTest, RejectsUseInObserveBeforeDefinition) {
  EXPECT_FALSE(defAssignOk(R"(
program P() {
  x: real;
  observe(x > 0.0);
  x = 1.0;
  return x;
}
)"));
}

TEST(DefiniteAssignmentTest, RejectsUseInConditionBeforeDefinition) {
  EXPECT_FALSE(defAssignOk(R"(
program P() {
  b: bool;
  x: real;
  x = 0.0;
  if (b) { x = 1.0; } else { x = 2.0; }
  b ~ Bernoulli(0.5);
  return x;
}
)"));
}

TEST(DefiniteAssignmentTest, LoopCarriedDefinitionsAreSequential) {
  InputBindings In;
  In.setInt("n", 3);
  EXPECT_TRUE(defAssignOk(R"(
program P(n: int) {
  a: real[n];
  a[0] = 0.0;
  for i in 1..n { a[i] = a[i - 1] + 1.0; }
  return a;
}
)",
                          In));
}

TEST(DefiniteAssignmentTest, RejectsLoopReadOfUnwrittenElement) {
  InputBindings In;
  In.setInt("n", 3);
  EXPECT_FALSE(defAssignOk(R"(
program P(n: int) {
  a: real[n];
  for i in 0..n { a[i] = a[i] + 1.0; }
  return a;
}
)",
                           In));
}
