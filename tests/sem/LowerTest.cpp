//===- tests/sem/LowerTest.cpp - Lowering unit tests ----------------------===//

#include "sem/Lower.h"

#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<LoweredProgram> lower(const std::string &Source,
                                      const InputBindings &Inputs,
                                      std::string *Errors = nullptr) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return nullptr;
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, Inputs, Diags);
  if (Errors)
    *Errors = Diags.str();
  return LP;
}

size_t countAssigns(const std::vector<StmtPtr> &Stmts) {
  size_t N = 0;
  for (const StmtPtr &S : Stmts) {
    if (isa<AssignStmt>(S.get()))
      ++N;
    else if (const auto *I = dyn_cast<IfStmt>(S.get()))
      N += countAssigns(I->getThen().getStmts()) +
           countAssigns(I->getElse().getStmts());
  }
  return N;
}

} // namespace

TEST(LowerTest, UnrollsLoopFully) {
  InputBindings In;
  In.setInt("n", 4);
  auto LP = lower(R"(
program P(n: int) {
  a: real[n];
  for i in 0..n { a[i] ~ Gaussian(0.0, 1.0); }
  return a;
}
)",
                  In);
  ASSERT_TRUE(LP);
  EXPECT_EQ(LP->Stmts.size(), 4u);
  EXPECT_EQ(LP->Slots.size(), 4u);
  EXPECT_EQ(LP->Slots[2], "a[2]");
  EXPECT_EQ(LP->ReturnSlots.size(), 4u);
}

TEST(LowerTest, SlotIdsAreDense) {
  InputBindings In;
  In.setInt("n", 2);
  auto LP = lower(R"(
program P(n: int) {
  x: real;
  a: bool[n];
  x = 1.0;
  for i in 0..n { a[i] = x > 0.0; }
  return x, a;
}
)",
                  In);
  ASSERT_TRUE(LP);
  EXPECT_EQ(LP->slotId("x"), 0u);
  EXPECT_EQ(LP->slotId("a[0]"), 1u);
  EXPECT_EQ(LP->slotId("a[1]"), 2u);
  EXPECT_EQ(LP->slotId("nope"), ~0u);
  EXPECT_EQ(LP->SlotKinds[1], ScalarKind::Bool);
}

TEST(LowerTest, FoldsInputScalarsAndArrays) {
  InputBindings In;
  In.setInt("n", 1);
  In.setArray("data", {7.5});
  auto LP = lower(R"(
program P(n: int, data: real[]) {
  x: real;
  x = data[0] + 1.0;
  return x;
}
)",
                  In);
  ASSERT_TRUE(LP);
  const auto &A = cast<AssignStmt>(*LP->Stmts[0]);
  const auto &Add = cast<BinaryExpr>(A.getValue());
  EXPECT_DOUBLE_EQ(cast<ConstExpr>(Add.getLHS()).getValue(), 7.5);
}

TEST(LowerTest, FoldsIndirectIndexing) {
  InputBindings In;
  In.setInt("n", 1);
  In.setIntArray("idx", {2});
  auto LP = lower(R"(
program P(n: int, idx: int[]) {
  a: real[3];
  for i in 0..3 { a[i] = 0.0; }
  a[idx[0]] = 1.0;
  return a;
}
)",
                  In);
  ASSERT_TRUE(LP);
  const auto &Last = cast<AssignStmt>(*LP->Stmts.back());
  EXPECT_EQ(Last.getTarget().Name, "a[2]");
}

TEST(LowerTest, LoopBoundsFromInputExpressions) {
  InputBindings In;
  In.setInt("rows", 2);
  In.setInt("cols", 3);
  auto LP = lower(R"(
program P(rows: int, cols: int) {
  m: real[rows * cols];
  for r in 0..rows {
    for c in 0..cols {
      m[r * cols + c] = 1.0;
    }
  }
  return m;
}
)",
                  In);
  ASSERT_TRUE(LP);
  EXPECT_EQ(LP->Stmts.size(), 6u);
  EXPECT_EQ(LP->Slots.size(), 6u);
  const auto &Last = cast<AssignStmt>(*LP->Stmts.back());
  EXPECT_EQ(Last.getTarget().Name, "m[5]");
}

TEST(LowerTest, EmptyLoopLowersToNothing) {
  InputBindings In;
  In.setInt("n", 0);
  auto LP = lower(R"(
program P(n: int) {
  x: real;
  x = 1.0;
  for i in 0..n { x = 2.0; }
  return x;
}
)",
                  In);
  ASSERT_TRUE(LP);
  EXPECT_EQ(LP->Stmts.size(), 1u);
}

TEST(LowerTest, BranchNormalizationAddsIdentityAssigns) {
  InputBindings In;
  auto LP = lower(R"(
program P() {
  x: real;
  y: real;
  b: bool;
  b ~ Bernoulli(0.5);
  x = 0.0;
  y = 0.0;
  if (b) { x = 1.0; } else { y = 2.0; }
  return x, y;
}
)",
                  In);
  ASSERT_TRUE(LP);
  const auto &I = cast<IfStmt>(*LP->Stmts.back());
  // Both branches must update {x, y} after normalization.
  EXPECT_EQ(countAssigns(I.getThen().getStmts()), 2u);
  EXPECT_EQ(countAssigns(I.getElse().getStmts()), 2u);
  // The identity assignment is literally `y = y`.
  bool FoundIdentity = false;
  for (const StmtPtr &S : I.getThen().getStmts()) {
    const auto &A = cast<AssignStmt>(*S);
    if (A.getTarget().Name == "y")
      if (const auto *V = dyn_cast<VarExpr>(&A.getValue()))
        FoundIdentity = V->getName() == "y";
  }
  EXPECT_TRUE(FoundIdentity);
}

TEST(LowerTest, ErrorNonConstantLoopBound) {
  InputBindings In;
  std::string Errors;
  auto LP = lower(R"(
program P() {
  x: real;
  k: int;
  k = 3;
  x = 0.0;
  for i in 0..k { x = x + 1.0; }
  return x;
}
)",
                  In, &Errors);
  EXPECT_FALSE(LP);
  EXPECT_NE(Errors.find("loop bounds"), std::string::npos);
}

TEST(LowerTest, ErrorOutOfBoundsConstantIndex) {
  InputBindings In;
  In.setInt("n", 2);
  std::string Errors;
  auto LP = lower(R"(
program P(n: int) {
  a: real[n];
  a[5] = 1.0;
  return a;
}
)",
                  In, &Errors);
  EXPECT_FALSE(LP);
  EXPECT_NE(Errors.find("out of bounds"), std::string::npos);
}

TEST(LowerTest, ErrorUnboundInput) {
  InputBindings In; // n missing
  std::string Errors;
  auto LP = lower(R"(
program P(n: int) {
  a: real[n];
  a[0] = 1.0;
  return a;
}
)",
                  In, &Errors);
  EXPECT_FALSE(LP);
}

TEST(LowerTest, ErrorResidualHole) {
  InputBindings In;
  std::string Errors;
  auto LP = lower(R"(
program P() {
  x: real;
  x = ??;
  return x;
}
)",
                  In, &Errors);
  EXPECT_FALSE(LP);
  EXPECT_NE(Errors.find("holes"), std::string::npos);
}

TEST(LowerTest, ErrorAssignToInput) {
  InputBindings In;
  In.setInt("n", 1);
  std::string Errors;
  // `n` is a parameter; the type checker does not declare it writable,
  // so parse-level assignment to it is caught at lowering.
  DiagEngine Diags;
  auto P = parseProgramSource(R"(
program P(n: int) {
  x: real;
  x = 1.0;
  return x;
}
)",
                              Diags);
  ASSERT_TRUE(P);
  // Inject an assignment to the input after parsing.
  P->getBody().append(std::make_unique<AssignStmt>(
      LValue("n"), ConstExpr::integer(3)));
  auto LP = lowerProgram(*P, In, Diags);
  EXPECT_FALSE(LP);
}

TEST(LowerTest, NegativeLoopRangeIsEmpty) {
  InputBindings In;
  In.setInt("n", 3);
  auto LP = lower(R"(
program P(n: int) {
  x: real;
  x = 0.0;
  for i in n..0 { x = 1.0; }
  return x;
}
)",
                  In);
  ASSERT_TRUE(LP);
  EXPECT_EQ(LP->Stmts.size(), 1u);
}
