//===- tests/sem/TypeCheckTest.cpp - Type checker unit tests --------------===//

#include "sem/TypeCheck.h"

#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::optional<std::vector<HoleSignature>>
check(const std::string &Source, std::string *Errors = nullptr) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  if (!P)
    return std::nullopt;
  auto Result = typeCheck(*P, Diags);
  if (Errors)
    *Errors = Diags.str();
  return Result;
}

bool checks(const std::string &Source) { return check(Source).has_value(); }

ExprPtr completion(const std::string &Source) {
  DiagEngine Diags;
  auto E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

} // namespace

TEST(TypeCheckTest, AcceptsWellTypedProgram) {
  EXPECT_TRUE(checks(R"(
program P(n: int, data: real[]) {
  x: real;
  flags: bool[n];
  x ~ Gaussian(data[0], 1.0);
  for i in 0..n {
    flags[i] = x > data[i];
  }
  observe(flags[0]);
  return x, flags;
}
)"));
}

TEST(TypeCheckTest, RejectsUndeclaredVariable) {
  EXPECT_FALSE(checks("program P() { x: real; x = y; return x; }"));
}

TEST(TypeCheckTest, RejectsArrayWithoutIndex) {
  EXPECT_FALSE(checks(
      "program P(a: real[]) { x: real; x = a; return x; }"));
}

TEST(TypeCheckTest, RejectsIndexingScalar) {
  EXPECT_FALSE(checks(
      "program P() { x: real; y: real; y = x[0]; x = 0.0; return x; }"));
}

TEST(TypeCheckTest, RejectsNonIntegerIndex) {
  EXPECT_FALSE(checks(
      "program P(a: real[]) { x: real; x = a[1.5]; return x; }"));
}

TEST(TypeCheckTest, RejectsBoolRealMixInArithmetic) {
  EXPECT_FALSE(checks(R"(
program P() {
  x: real;
  b: bool;
  b ~ Bernoulli(0.5);
  x = b + 1.0;
  return x;
}
)"));
}

TEST(TypeCheckTest, RejectsNumericOperandsOfLogicalOps) {
  EXPECT_FALSE(checks(R"(
program P() {
  b: bool;
  b = 1.0 && 2.0;
  return b;
}
)"));
}

TEST(TypeCheckTest, RejectsBoolComparison) {
  EXPECT_FALSE(checks(R"(
program P() {
  a: bool;
  b: bool;
  c: bool;
  a ~ Bernoulli(0.5);
  b ~ Bernoulli(0.5);
  c = a > b;
  return c;
}
)"));
}

TEST(TypeCheckTest, EqualityOnBoolsAndNumericsOnly) {
  EXPECT_TRUE(checks(R"(
program P() {
  a: bool;
  b: bool;
  c: bool;
  a ~ Bernoulli(0.5);
  b ~ Bernoulli(0.5);
  c = a == b;
  return c;
}
)"));
  EXPECT_FALSE(checks(R"(
program P() {
  a: bool;
  x: real;
  c: bool;
  a ~ Bernoulli(0.5);
  x = 1.0;
  c = a == x;
  return c;
}
)"));
}

TEST(TypeCheckTest, RejectsNonBooleanObserve) {
  EXPECT_FALSE(checks(
      "program P() { x: real; x = 1.0; observe(x); return x; }"));
}

TEST(TypeCheckTest, RejectsNonBooleanIfCondition) {
  EXPECT_FALSE(checks(R"(
program P() {
  x: real;
  x = 0.0;
  if (x) { x = 1.0; }
  return x;
}
)"));
}

TEST(TypeCheckTest, RejectsRealLoopBounds) {
  EXPECT_FALSE(checks(R"(
program P() {
  x: real;
  x = 0.0;
  for i in 0..2.5 { x = x + 1.0; }
  return x;
}
)"));
}

TEST(TypeCheckTest, RejectsLoopVarShadowingDeclaration) {
  EXPECT_FALSE(checks(R"(
program P(n: int) {
  i: real;
  i = 0.0;
  for i in 0..n { skip; }
  return i;
}
)"));
}

TEST(TypeCheckTest, AllowsLoopVarReuseInSiblingLoops) {
  EXPECT_TRUE(checks(R"(
program P(n: int) {
  x: real;
  x = 0.0;
  for g in 0..n { x = x + 1.0; }
  for g in 0..n { x = x + 1.0; }
  return x;
}
)"));
}

TEST(TypeCheckTest, RejectsDuplicateDeclaration) {
  EXPECT_FALSE(checks(
      "program P() { x: real; x: real; x = 1.0; return x; }"));
}

TEST(TypeCheckTest, RejectsUnknownReturn) {
  EXPECT_FALSE(checks("program P() { x: real; x = 1.0; return z; }"));
}

TEST(TypeCheckTest, RejectsAssignToWholeArray) {
  EXPECT_FALSE(checks(
      "program P(n: int) { a: real[n]; a = 1.0; return a; }"));
}

TEST(TypeCheckTest, RejectsBooleanDistributionParameter) {
  EXPECT_FALSE(checks(R"(
program P() {
  b: bool;
  x: real;
  b ~ Bernoulli(0.5);
  x ~ Gaussian(b, 1.0);
  return x;
}
)"));
}

TEST(TypeCheckTest, HoleSignaturesRecordKinds) {
  auto Sigs = check(R"(
program S(n: int) {
  x: real;
  flag: bool;
  x = ??;
  flag = ??(x, n);
  return x, flag;
}
)");
  ASSERT_TRUE(Sigs);
  ASSERT_EQ(Sigs->size(), 2u);
  EXPECT_EQ((*Sigs)[0].ResultKind, ScalarKind::Real);
  EXPECT_TRUE((*Sigs)[0].ArgKinds.empty());
  EXPECT_EQ((*Sigs)[1].ResultKind, ScalarKind::Bool);
  ASSERT_EQ((*Sigs)[1].ArgKinds.size(), 2u);
  EXPECT_EQ((*Sigs)[1].ArgKinds[0], ScalarKind::Real);
  EXPECT_EQ((*Sigs)[1].ArgKinds[1], ScalarKind::Int);
}

TEST(TypeCheckTest, HoleExpectedKindFromAssignmentTarget) {
  auto Sigs = check(R"(
program S() {
  b: bool;
  b = ??;
  return b;
}
)");
  ASSERT_TRUE(Sigs);
  EXPECT_EQ((*Sigs)[0].ResultKind, ScalarKind::Bool);
}

TEST(CompletionCheckTest, AcceptsWellTypedRealCompletion) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Real}};
  EXPECT_TRUE(checkCompletion(*completion("Gaussian(%0, 15.0)"), Sig));
  EXPECT_TRUE(checkCompletion(*completion("%0 + 1.0"), Sig));
  EXPECT_TRUE(checkCompletion(
      *completion("ite(%0 > 0.0, Gaussian(1.0, 1.0), 2.0)"), Sig));
}

TEST(CompletionCheckTest, AcceptsWellTypedBoolCompletion) {
  HoleSignature Sig{0, ScalarKind::Bool,
                    {ScalarKind::Real, ScalarKind::Real}};
  EXPECT_TRUE(checkCompletion(
      *completion("Gaussian(%0, 15.0) > Gaussian(%1, 15.0)"), Sig));
  EXPECT_TRUE(checkCompletion(*completion("Bernoulli(0.5)"), Sig));
}

TEST(CompletionCheckTest, RejectsKindMismatch) {
  HoleSignature RealSig{0, ScalarKind::Real, {}};
  EXPECT_FALSE(checkCompletion(*completion("true"), RealSig));
  HoleSignature BoolSig{0, ScalarKind::Bool, {}};
  EXPECT_FALSE(checkCompletion(*completion("1.0 + 2.0"), BoolSig));
}

TEST(CompletionCheckTest, RejectsOutOfRangeFormal) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Real}};
  EXPECT_FALSE(checkCompletion(*completion("%1"), Sig));
}

TEST(CompletionCheckTest, RejectsProgramVariables) {
  HoleSignature Sig{0, ScalarKind::Real, {}};
  EXPECT_FALSE(checkCompletion(*completion("someVar + 1.0"), Sig));
}

TEST(CompletionCheckTest, EnforcesDistributionParameterRestriction) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Real}};
  // Section 4.1: distribution parameters must be variables/constants.
  EXPECT_FALSE(checkCompletion(*completion("Gaussian(%0 + 1.0, 2.0)"), Sig));
  EXPECT_TRUE(checkCompletion(*completion("Gaussian(%0, 2.0)"), Sig));
}

TEST(CompletionCheckTest, BoolFormalUsableAsCondition) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Bool}};
  EXPECT_TRUE(checkCompletion(
      *completion("ite(%0, Gaussian(0.0, 1.0), Gaussian(10.0, 2.0))"),
      Sig));
  // ... but not as a numeric operand.
  EXPECT_FALSE(checkCompletion(*completion("%0 + 1.0"), Sig));
}

TEST(TypeCheckTest, HoleInDistributionParameterPositionIsRealKinded) {
  // A hole used as a distribution parameter type-checks and is
  // expected to complete to a real (the STATIC-REJECT analyzer keys
  // off this annotation).
  auto Sigs = check(R"(
program P(m: real) {
  x: real;
  b: bool;
  x ~ Gaussian(??(m), ??);
  b ~ Bernoulli(??);
  observe(b);
  return x;
}
)");
  ASSERT_TRUE(Sigs.has_value());
  ASSERT_EQ(Sigs->size(), 3u);
  for (const HoleSignature &Sig : *Sigs)
    EXPECT_EQ(Sig.ResultKind, ScalarKind::Real);
  ASSERT_EQ((*Sigs)[0].ArgKinds.size(), 1u);
  EXPECT_EQ((*Sigs)[0].ArgKinds[0], ScalarKind::Real);
}

TEST(TypeCheckTest, NestedTernariesOverHoles) {
  // Ternaries nesting through hole and draw positions stay well-kinded;
  // the hole under the inner ternary is real-kinded.
  auto Sigs = check(R"(
program P(c: bool, d: bool) {
  x: real;
  x = ite(c, ite(d, ??, 1.0), ite(d, 2.0, ?? + 3.0));
  return x;
}
)");
  ASSERT_TRUE(Sigs.has_value());
  ASSERT_EQ(Sigs->size(), 2u);
  EXPECT_EQ((*Sigs)[0].ResultKind, ScalarKind::Real);
  EXPECT_EQ((*Sigs)[1].ResultKind, ScalarKind::Real);

  // A bool-kinded branch in a real ternary is rejected even with the
  // other branch a hole.
  EXPECT_FALSE(checks(R"(
program P(c: bool) {
  x: real;
  x = ite(c, ??, c);
  return x;
}
)"));
}

TEST(TypeCheckTest, ObserveOverBernoulliDraws) {
  // Drawing a bool and observing it (possibly through logic) is the
  // canonical conditioning pattern; observing a real draw is an error.
  EXPECT_TRUE(checks(R"(
program P() {
  a: bool;
  b: bool;
  a ~ Bernoulli(0.3);
  b ~ Bernoulli(0.9);
  observe(a && !b);
  return a;
}
)"));
  EXPECT_FALSE(checks(R"(
program P() {
  x: real;
  x ~ Gaussian(0.0, 1.0);
  observe(x);
  return x;
}
)"));
}
