//===- tests/sem/BindingsTest.cpp - InputBindings unit tests --------------===//

#include "sem/Bindings.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(BindingsTest, ScalarBindings) {
  InputBindings In;
  In.setScalar("x", 2.5);
  In.setInt("n", 7);
  In.setScalar("flag", 1.0, ScalarKind::Bool);
  ASSERT_TRUE(In.has("x"));
  EXPECT_EQ(In.find("x")->Ty, Type::real());
  EXPECT_DOUBLE_EQ(In.find("x")->scalar(), 2.5);
  EXPECT_EQ(In.find("n")->Ty, Type::integer());
  EXPECT_DOUBLE_EQ(In.find("n")->scalar(), 7.0);
  EXPECT_EQ(In.find("flag")->Ty, Type::boolean());
}

TEST(BindingsTest, ArrayBindings) {
  InputBindings In;
  In.setArray("day", {8.0, 15.0, 22.0});
  In.setIntArray("p1", {0, 1, 0});
  In.setBoolArray("result", {true, false, true});
  ASSERT_TRUE(In.find("day")->isArray());
  EXPECT_EQ(In.find("day")->Values.size(), 3u);
  EXPECT_EQ(In.find("p1")->Ty, Type::array(ScalarKind::Int));
  EXPECT_DOUBLE_EQ(In.find("p1")->Values[1], 1.0);
  EXPECT_EQ(In.find("result")->Ty, Type::array(ScalarKind::Bool));
  EXPECT_DOUBLE_EQ(In.find("result")->Values[1], 0.0);
}

TEST(BindingsTest, MissingNamesReturnNull) {
  InputBindings In;
  EXPECT_FALSE(In.has("nope"));
  EXPECT_EQ(In.find("nope"), nullptr);
}

TEST(BindingsTest, RebindingReplaces) {
  InputBindings In;
  In.setInt("n", 3);
  In.setInt("n", 9);
  EXPECT_DOUBLE_EQ(In.find("n")->scalar(), 9.0);
  In.setArray("n", {1.0, 2.0});
  EXPECT_TRUE(In.find("n")->isArray());
}

TEST(BindingsTest, CopySemantics) {
  InputBindings In;
  In.setInt("n", 3);
  InputBindings Copy = In;
  In.setInt("n", 5);
  EXPECT_DOUBLE_EQ(Copy.find("n")->scalar(), 3.0);
  EXPECT_EQ(Copy.all().size(), 1u);
}
