//===- tests/integration/PipelineTest.cpp - Whole-pipeline smoke ----------===//
//
// Parse -> typecheck -> lower -> sample -> compile likelihood ->
// evaluate, end to end on the paper's running example.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "likelihood/Likelihood.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "suite/Benchmarks.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

TEST(PipelineTest, TrueSkillEndToEnd) {
  const Benchmark *B = findBenchmark("TrueSkill");
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = parseProgramSource(B->TargetSource, Diags);
  ASSERT_TRUE(P) << Diags.str();
  auto Sigs = typeCheck(*P, Diags);
  ASSERT_TRUE(Sigs) << Diags.str();
  EXPECT_TRUE(Sigs->empty()); // Target has no holes.

  InputBindings In = B->MakeInputs();
  auto LP = lowerProgram(*P, In, Diags);
  ASSERT_TRUE(LP) << Diags.str();
  EXPECT_TRUE(checkDefiniteAssignment(*LP, Diags)) << Diags.str();

  // 3 skills + 3 results + 2 perf slots.
  EXPECT_EQ(LP->Slots.size(), 8u);
  EXPECT_EQ(LP->ReturnSlots.size(), 6u);

  Rng R(42);
  Dataset Data = generateDataset(*LP, 100, R);
  ASSERT_EQ(Data.numRows(), 100u);
  EXPECT_EQ(Data.numColumns(), 6u);

  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double LL = F->logLikelihood(Data);
  EXPECT_TRUE(std::isfinite(LL));
  EXPECT_LT(LL, 0.0);

  // Game outcomes must correlate with skill gaps: among rows where
  // player 0 beat player 1, the average skill gap is positive.
  unsigned R0 = Data.columnId("r[0]");
  unsigned S0 = Data.columnId("skills[0]"), S1 = Data.columnId("skills[1]");
  ASSERT_NE(R0, ~0u);
  double WinGap = 0, LossGap = 0;
  size_t Wins = 0, Losses = 0;
  for (const auto &Row : Data.rows()) {
    if (Row[R0] != 0.0) {
      WinGap += Row[S0] - Row[S1];
      ++Wins;
    } else {
      LossGap += Row[S0] - Row[S1];
      ++Losses;
    }
  }
  ASSERT_GT(Wins, 0u);
  ASSERT_GT(Losses, 0u);
  EXPECT_GT(WinGap / double(Wins), LossGap / double(Losses));
}

TEST(PipelineTest, SymbolicReportMentionsKeyStructure) {
  const Benchmark *B = findBenchmark("TrueSkill");
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = parseProgramSource(B->TargetSource, Diags);
  ASSERT_TRUE(P);
  ASSERT_TRUE(typeCheck(*P, Diags));
  auto LP = lowerProgram(*P, B->MakeInputs(), Diags);
  ASSERT_TRUE(LP);
  Dataset Data(LP->ReturnSlots);
  Data.addRow({105.0, 95.0, 90.0, 1.0, 1.0, 1.0});
  std::string Report =
      symbolicReport(*LP, Data, {"skills[0]", "perf1", "r[0]"});
  // Figure 4's shape: prior, symbolic-mean performance, erf-based
  // result probability.
  EXPECT_NE(Report.find("skills[0] |-> MoG(1; 1 * N(100, 10))"),
            std::string::npos);
  EXPECT_NE(Report.find("perf1 |-> MoG(1; 1 * N($0, 15))"),
            std::string::npos);
  EXPECT_NE(Report.find("erf"), std::string::npos);
  EXPECT_NE(Report.find("log Pr(D | P[H]) per row"), std::string::npos);
}

TEST(PipelineTest, LikelihoodPrefersGeneratingProgram) {
  // For each of three simple models, the generating model must beat the
  // other two on its own data (the basic premise of ML-driven search).
  const char *Sources[3] = {
      R"(program A() { x: real; x ~ Gaussian(0.0, 1.0); return x; })",
      R"(program B() { x: real; x ~ Gaussian(8.0, 1.0); return x; })",
      R"(program C() { x: real; x = ite(Bernoulli(0.5), Gaussian(0.0, 1.0),
                                        Gaussian(8.0, 1.0)); return x; })",
  };
  std::vector<std::unique_ptr<LoweredProgram>> Programs;
  for (const char *S : Sources) {
    DiagEngine Diags;
    auto P = parseProgramSource(S, Diags);
    ASSERT_TRUE(P) << Diags.str();
    ASSERT_TRUE(typeCheck(*P, Diags));
    auto LP = lowerProgram(*P, {}, Diags);
    ASSERT_TRUE(LP);
    Programs.push_back(std::move(LP));
  }
  Rng R(77);
  for (size_t Gen = 0; Gen != 3; ++Gen) {
    Dataset Data = generateDataset(*Programs[Gen], 300, R);
    double Best = -1e300;
    size_t BestIdx = 99;
    for (size_t Model = 0; Model != 3; ++Model) {
      auto F = LikelihoodFunction::compile(*Programs[Model], Data);
      ASSERT_TRUE(F);
      double LL = F->logLikelihood(Data);
      if (LL > Best) {
        Best = LL;
        BestIdx = Model;
      }
    }
    EXPECT_EQ(BestIdx, Gen) << "generator " << Gen;
  }
}
