//===- tests/integration/SynthesisEndToEndTest.cpp - Table 1 rows ---------===//
//
// Fast end-to-end synthesis checks on a subset of benchmarks: the
// synthesized program's data log-likelihood must come close to (or
// beat) the target program's, the paper's Table 1 success criterion.
// Iteration budgets are reduced to keep the test suite quick; the full
// budgets run in bench/table1_synthesis.
//
//===----------------------------------------------------------------------===//

#include "suite/Prepare.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

/// Runs one benchmark with a reduced iteration budget and checks the
/// synthesized LL is within \p Slack nats of the target LL.
void expectSynthClose(const char *Name, unsigned Iterations,
                      double Slack) {
  const Benchmark *B = findBenchmark(Name);
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  ASSERT_TRUE(P) << Diags.str();
  SynthesisConfig Config = B->Synth;
  Config.Iterations = Iterations;
  BenchmarkRunResult Row = runBenchmark(*P, &Config);
  ASSERT_TRUE(Row.Succeeded) << Name;
  EXPECT_TRUE(std::isfinite(Row.SynthesizedLL));
  EXPECT_GT(Row.SynthesizedLL, Row.TargetLL - Slack)
      << Name << ": target " << Row.TargetLL << " synthesized "
      << Row.SynthesizedLL << "\n"
      << Row.BestProgramSource;
}

} // namespace

TEST(SynthesisEndToEndTest, Gaussian) {
  expectSynthClose("Gaussian", 2000, 10.0);
}

TEST(SynthesisEndToEndTest, Handedness) {
  expectSynthClose("Handedness", 2500, 10.0);
}

TEST(SynthesisEndToEndTest, Clickthrough2) {
  expectSynthClose("Clickthrough2", 2500, 15.0);
}

TEST(SynthesisEndToEndTest, TrueSkill) {
  expectSynthClose("TrueSkill", 4000, 80.0);
}

TEST(SynthesisEndToEndTest, MoG1) { expectSynthClose("MoG1", 8000, 25.0); }

TEST(SynthesisEndToEndTest, SynthesizedProgramSamplesPlausibly) {
  // The synthesized Gaussian model must produce samples whose moments
  // match the data (not just score well symbolically).
  const Benchmark *B = findBenchmark("Gaussian");
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  ASSERT_TRUE(P) << Diags.str();
  SynthesisConfig Config = B->Synth;
  Config.Iterations = 2500;
  Synthesizer Synth(*P->Sketch, P->Inputs, P->Data, Config);
  auto Result = Synth.run();
  ASSERT_TRUE(Result.Succeeded);
  ASSERT_TRUE(Result.BestProgram);

  auto LP = lowerProgram(*Result.BestProgram, P->Inputs, Diags);
  ASSERT_TRUE(LP) << Diags.str();
  Rng R(123);
  Dataset Samples = generateDataset(*LP, 2000, R);
  ASSERT_GT(Samples.numRows(), 500u);
  double DataMean = 0, SampleMean = 0;
  for (const auto &Row : P->Data.rows())
    DataMean += Row[0];
  DataMean /= double(P->Data.numRows());
  for (const auto &Row : Samples.rows())
    SampleMean += Row[0];
  SampleMean /= double(Samples.numRows());
  EXPECT_NEAR(SampleMean, DataMean, 2.0);
}
