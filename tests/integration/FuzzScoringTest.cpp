//===- tests/integration/FuzzScoringTest.cpp - Randomized robustness ------===//
//
// Robustness sweep: random completions for every benchmark sketch are
// spliced and scored.  Whatever the mutation machinery can produce,
// scoring must never crash, and every reported likelihood must be a
// finite number (invalid candidates must be reported as invalid, not
// as NaN or +inf scores the MH ratio would then consume).
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "suite/Prepare.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

class FuzzScoring : public ::testing::TestWithParam<const Benchmark *> {};

std::vector<const Benchmark *> fuzzTargets() {
  // A representative slice; running all 16 here would double the test
  // suite's wall clock for little extra coverage.
  std::vector<const Benchmark *> Out;
  for (const char *Name :
       {"TrueSkill", "Burglary", "Clinical", "RATS", "MoG3"})
    Out.push_back(findBenchmark(Name));
  return Out;
}

} // namespace

TEST_P(FuzzScoring, RandomCompletionsNeverYieldNonFiniteScores) {
  const Benchmark *B = GetParam();
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  ASSERT_TRUE(P) << Diags.str();
  // Score with a small dataset slice: fuzzing exercises code paths,
  // not statistics.
  Dataset Slice = P->Data;
  Slice.truncate(5);

  SynthesisConfig Config = B->Synth;
  Synthesizer Synth(*P->Sketch, P->Inputs, Slice, Config);
  ASSERT_TRUE(Synth.valid());
  const auto &Sigs = Synth.holeSignatures();

  Rng R(0xF022 + Sigs.size());
  GeneratorConfig WildGen = Config.Gen;
  // Open the grammar wider than the synthesis default so the fuzz also
  // covers products of random values and all distributions.
  WildGen.ArithOps = {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul};
  WildGen.Dists = {DistKind::Gaussian, DistKind::Bernoulli, DistKind::Beta,
                   DistKind::Gamma, DistKind::Poisson};
  WildGen.MaxDepth = 6;
  WildGen.TerminalBias = 0.35;

  unsigned Valid = 0, Invalid = 0;
  for (int Trial = 0; Trial < 400; ++Trial) {
    std::vector<ExprPtr> Completions;
    bool TupleOk = true;
    for (const HoleSignature &Sig : Sigs) {
      ExprGenerator Gen(Sig, WildGen, R);
      Completions.push_back(Gen.generate());
      TupleOk &= checkCompletion(*Completions.back(), Sig);
    }
    if (!TupleOk) {
      ++Invalid;
      continue;
    }
    auto Candidate = spliceCompletions(*P->Sketch, Completions);
    auto Score = Synth.scoreWithMoG(*Candidate);
    if (!Score) {
      ++Invalid;
      continue;
    }
    EXPECT_TRUE(std::isfinite(*Score)) << toString(*Candidate);
    ++Valid;
  }
  // The generator is correct-by-construction most of the time.
  EXPECT_GT(Valid, 100u) << "valid " << Valid << " invalid " << Invalid;
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, FuzzScoring, ::testing::ValuesIn(fuzzTargets()),
    [](const ::testing::TestParamInfo<const Benchmark *> &Info) {
      return Info.param->Name;
    });
