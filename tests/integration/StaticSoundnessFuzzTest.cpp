//===- tests/integration/StaticSoundnessFuzzTest.cpp - STATIC-REJECT fuzz -===//
//
// Differential soundness fuzz for the STATIC-REJECT pre-filter over
// whole candidates (ISSUE acceptance: >= 10k random completion tuples).
// For every tuple, classification with static analysis ON must agree
// exactly with classification OFF — same rejection reason, and for
// accepted candidates a bit-identical log-likelihood — because the
// analyzer's verdict defines domain validity in both modes; the flag
// only decides whether the verdict is applied before or after the
// scoring pipeline runs.  A divergence here would mean the pre-filter
// changed which candidates the MH walk can accept, i.e. an unsoundness.
//
// A targeted companion checks the verdict against the ground-truth
// sampling semantics: a Beta draw whose parameters the analyzer proves
// invalid makes *every* concrete forward run abort.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "parse/Parser.h"
#include "synth/Generator.h"
#include "synth/Splice.h"
#include "synth/Synthesizer.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

bool sameDouble(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

struct FuzzTotals {
  unsigned Tuples = 0;
  unsigned Accepted = 0;
  unsigned Static = 0;
  unsigned Domain = 0;
  unsigned Type = 0;
};

/// Classifies \p TuplesToTry random completion tuples of \p SketchSrc
/// under both modes and accumulates agreement totals.
void fuzzSketch(const std::string &SketchSrc, const Dataset &Data,
                unsigned TuplesToTry, uint64_t Seed, FuzzTotals &Totals) {
  auto SketchOn = parseP(SketchSrc);
  auto SketchOff = parseP(SketchSrc);
  SynthesisConfig On, Off;
  On.StaticAnalysis = true;
  Off.StaticAnalysis = false;
  Synthesizer SOn(*SketchOn, {}, Data, On);
  Synthesizer SOff(*SketchOff, {}, Data, Off);
  ASSERT_TRUE(SOn.valid()) << SOn.diagnostics().str();
  ASSERT_TRUE(SOff.valid());

  const std::vector<HoleSignature> &Sigs = SOn.holeSignatures();
  GeneratorConfig GenCfg;
  Rng R(Seed);
  for (unsigned Iter = 0; Iter != TuplesToTry; ++Iter) {
    std::vector<ExprPtr> Tuple;
    for (const HoleSignature &Sig : Sigs)
      Tuple.push_back(ExprGenerator(Sig, GenCfg, R).generate());

    CachedScore A = SOn.classifyCompletions(Tuple);
    CachedScore B = SOff.classifyCompletions(Tuple);
    ASSERT_EQ(A.Reason, B.Reason)
        << "mode divergence on tuple " << Iter << " of sketch:\n"
        << SketchSrc;
    ASSERT_EQ(A.valid(), B.valid());
    if (A.valid())
      ASSERT_TRUE(sameDouble(*A.LL, *B.LL))
          << "accepted candidate scored differently on vs off: " << *A.LL
          << " != " << *B.LL;

    ++Totals.Tuples;
    switch (A.Reason) {
    case RejectReason::None:
      ++Totals.Accepted;
      break;
    case RejectReason::Static:
      ++Totals.Static;
      break;
    case RejectReason::Domain:
      ++Totals.Domain;
      break;
    case RejectReason::Type:
      ++Totals.Type;
      break;
    }
  }
}

} // namespace

TEST(StaticSoundnessFuzz, TenThousandTuplesClassifyIdenticallyOnAndOff) {
  FuzzTotals Totals;

  // Scale-position holes: generated constants are drawn from the
  // value range, so negative scales (STATIC-REJECT fodder) abound.
  fuzzSketch(R"(
program S1() {
  x: real;
  x ~ Gaussian(??, ??);
  return x;
}
)",
             makeData(R"(
program T1() {
  x: real;
  x ~ Gaussian(3.0, 1.5);
  return x;
}
)",
                      60, 51),
             3500, 101, Totals);

  // Beta-parameter holes feeding a downstream Gaussian.
  fuzzSketch(R"(
program S2() {
  b: real;
  x: real;
  b ~ Beta(??, ??);
  x ~ Gaussian(b, 1.0);
  return x;
}
)",
             makeData(R"(
program T2() {
  b: real;
  x: real;
  b ~ Beta(2.0, 3.0);
  x ~ Gaussian(b, 1.0);
  return x;
}
)",
                      60, 52),
             3500, 102, Totals);

  // Bernoulli probability hole plus a mean hole under an observe.
  fuzzSketch(R"(
program S3() {
  c: bool;
  x: real;
  c ~ Bernoulli(??);
  x ~ Gaussian(??, 2.0);
  observe(c);
  return x;
}
)",
             makeData(R"(
program T3() {
  c: bool;
  x: real;
  c ~ Bernoulli(0.7);
  x ~ Gaussian(1.0, 2.0);
  observe(c);
  return x;
}
)",
                      60, 53),
             3500, 103, Totals);

  EXPECT_GE(Totals.Tuples, 10000u);
  // The fuzz only has teeth if every classification class was hit.
  EXPECT_GT(Totals.Accepted, 0u);
  EXPECT_GT(Totals.Static, 0u);
  RecordProperty("tuples", int(Totals.Tuples));
  RecordProperty("static_rejects", int(Totals.Static));
  RecordProperty("accepted", int(Totals.Accepted));
}

TEST(StaticSoundnessFuzz, StaticRejectImpliesEveryConcreteRunAborts) {
  // Ground truth for the verdict: a Beta whose shape the analyzer
  // proves non-positive must make the forward sampler abort every run
  // (Interp returns nullopt on !(alpha > 0)).  Gaussian deliberately
  // excluded — its runtime clamps sigma via fabs, which is exactly why
  // the analyzer's verdict, not the sampler, defines domain validity.
  auto Sketch = parseP(R"(
program S() {
  b: real;
  b ~ Beta(??, ??);
  return b;
}
)");
  Dataset Data = makeData(R"(
program T() {
  b: real;
  b ~ Beta(2.0, 2.0);
  return b;
}
)",
                          40, 54);
  SynthesisConfig Config;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid());

  std::vector<ExprPtr> Bad;
  Bad.push_back(ConstExpr::real(-1.0));
  Bad.push_back(ConstExpr::real(2.0));
  CachedScore S = Synth.classifyCompletions(Bad);
  ASSERT_EQ(S.Reason, RejectReason::Static);

  std::unique_ptr<Program> Spliced = spliceCompletions(*Sketch, Bad);
  DiagEngine Diags;
  ASSERT_TRUE(typeCheck(*Spliced, Diags)) << Diags.str();
  auto LP = lowerProgram(*Spliced, {}, Diags);
  ASSERT_TRUE(LP) << Diags.str();
  ForwardSampler Sampler(*LP);
  Rng R(9001);
  for (unsigned Run = 0; Run != 200; ++Run)
    EXPECT_FALSE(Sampler.runOnce(R).has_value())
        << "run " << Run << " survived a statically-invalid Beta draw";
}
