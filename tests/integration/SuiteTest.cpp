//===- tests/integration/SuiteTest.cpp - Benchmark suite validation -------===//
//
// Every one of the 16 paper benchmarks must parse, type check, lower,
// generate its full dataset, and compile a finite target likelihood —
// the preconditions of every Table 1 row.
//
//===----------------------------------------------------------------------===//

#include "suite/Prepare.h"

#include "ast/ASTUtil.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

class SuiteTest : public ::testing::TestWithParam<const Benchmark *> {};

std::vector<const Benchmark *> benchmarkPointers() {
  std::vector<const Benchmark *> Out;
  for (const Benchmark &B : allBenchmarks())
    Out.push_back(&B);
  return Out;
}

} // namespace

TEST(SuiteInventoryTest, HasAllSixteenPaperBenchmarks) {
  EXPECT_EQ(allBenchmarks().size(), 16u);
  for (const char *Name :
       {"Burglary", "TrueSkill", "Clinical", "Clickthrough1",
        "Clickthrough2", "Clickthrough3", "Clickthrough4", "Conference",
        "Grading", "Handedness", "GenderHeight", "MoG1", "MoG2", "MoG3",
        "RATS", "Gaussian"})
    EXPECT_NE(findBenchmark(Name), nullptr) << Name;
  EXPECT_EQ(findBenchmark("NoSuchBenchmark"), nullptr);
}

TEST(SuiteInventoryTest, PaperRowsMatchTable1) {
  // Spot-check the transcription of Table 1.
  const Benchmark *TS = findBenchmark("TrueSkill");
  ASSERT_NE(TS, nullptr);
  EXPECT_DOUBLE_EQ(TS->Paper.TargetLL, -718.33);
  EXPECT_DOUBLE_EQ(TS->Paper.SynthesizedLL, -697.68);
  EXPECT_EQ(TS->Paper.DatasetSize, 400u);
  const Benchmark *G = findBenchmark("Gaussian");
  ASSERT_NE(G, nullptr);
  EXPECT_DOUBLE_EQ(G->Paper.TargetLL, -1483.67);
}

TEST_P(SuiteTest, PreparesSuccessfully) {
  DiagEngine Diags;
  auto P = prepareBenchmark(*GetParam(), Diags);
  ASSERT_TRUE(P) << Diags.str();
  EXPECT_EQ(P->Data.numRows(), GetParam()->DatasetSize);
  EXPECT_TRUE(std::isfinite(P->TargetLL));
  EXPECT_LT(P->TargetLL, 0.0);
}

TEST_P(SuiteTest, SketchHasHolesAndTargetHasNone) {
  DiagEngine Diags;
  auto P = prepareBenchmark(*GetParam(), Diags);
  ASSERT_TRUE(P) << Diags.str();
  EXPECT_TRUE(collectHoles(*P->Target).empty());
  EXPECT_FALSE(collectHoles(*P->Sketch).empty());
}

TEST_P(SuiteTest, SketchAndTargetShareInterface) {
  DiagEngine Diags;
  auto P = prepareBenchmark(*GetParam(), Diags);
  ASSERT_TRUE(P) << Diags.str();
  // Same returns (the observable interface the data covers).
  EXPECT_EQ(P->Target->getReturns(), P->Sketch->getReturns());
  EXPECT_EQ(P->Target->getParams().size(), P->Sketch->getParams().size());
}

TEST_P(SuiteTest, DatasetIsReproducibleFromSeed) {
  DiagEngine D1, D2;
  auto P1 = prepareBenchmark(*GetParam(), D1);
  auto P2 = prepareBenchmark(*GetParam(), D2);
  ASSERT_TRUE(P1 && P2);
  ASSERT_EQ(P1->Data.numRows(), P2->Data.numRows());
  for (size_t I = 0; I < P1->Data.numRows(); ++I)
    EXPECT_EQ(P1->Data.row(I), P2->Data.row(I));
  EXPECT_DOUBLE_EQ(P1->TargetLL, P2->TargetLL);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteTest, ::testing::ValuesIn(benchmarkPointers()),
    [](const ::testing::TestParamInfo<const Benchmark *> &Info) {
      return Info.param->Name;
    });
