//===- tests/integration/CrossValidationTest.cpp - Path agreement ---------===//
//
// Cross-validates the three likelihood paths on benchmark programs:
// the compiled MoG likelihood (fast path), the grid numeric-integration
// baseline (exact up to resolution), and — where the program is finite
// — exact enumeration.  The paper's empirical claim is that the MoG
// approximation "does not affect the quality of the synthesized
// programs"; these tests pin down where the paths agree tightly (MoG
// closure), approximately (moment-matched Beta), and systematically
// (conditioned programs score below their exact posterior).
//
//===----------------------------------------------------------------------===//

#include "baseline/GridLikelihood.h"
#include "interp/Enumerate.h"
#include "suite/Prepare.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

struct CrossCase {
  const char *Name;
  double RelTolerance; ///< |MoG - grid| <= RelTolerance * |grid| + 1.
  size_t Rows;         ///< Grid path rows (it is slow by design).
};

class CrossValidation : public ::testing::TestWithParam<CrossCase> {};

} // namespace

TEST_P(CrossValidation, MoGAgreesWithGridBaseline) {
  const CrossCase &C = GetParam();
  const Benchmark *B = findBenchmark(C.Name);
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Dataset Slice = P->Data;
  Slice.truncate(C.Rows);

  auto F = LikelihoodFunction::compile(*P->TargetLowered, Slice);
  ASSERT_TRUE(F);
  GridLikelihoodEvaluator Grid(*P->TargetLowered, Slice);
  auto GridLL = Grid.logLikelihood();
  ASSERT_TRUE(GridLL);
  double MoG = F->logLikelihood(Slice);
  EXPECT_NEAR(MoG, *GridLL, C.RelTolerance * std::abs(*GridLL) + 1.0)
      << C.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, CrossValidation,
    ::testing::Values(
        // Pure MoG-closure models: tight agreement.
        CrossCase{"Gaussian", 0.01, 25},
        CrossCase{"MoG1", 0.02, 25},
        CrossCase{"MoG2", 0.02, 25},
        CrossCase{"GenderHeight", 0.02, 15},
        CrossCase{"TrueSkill", 0.03, 10},
        // Beta priors are moment-matched on the MoG side: looser.
        CrossCase{"Handedness", 0.10, 25},
        CrossCase{"Clickthrough2", 0.10, 25},
        // Hierarchical compounding; grid resolution dominates.
        CrossCase{"RATS", 0.05, 4}),
    [](const ::testing::TestParamInfo<CrossCase> &Info) {
      return Info.param.Name;
    });

TEST(CrossValidationExact, BooleanBenchmarksAgreeWithEnumerationUnconditioned) {
  // Clickthrough's examination chain has a continuous Beta latent, and
  // Burglary is conditioned, so build the canonical fully-Boolean
  // check from the Burglary network without its observe.
  const Benchmark *B = findBenchmark("Burglary");
  ASSERT_NE(B, nullptr);
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  ASSERT_TRUE(P) << Diags.str();
  // Strip the observe by rebuilding the statement list.
  auto Unconditioned = P->Target->clone();
  auto &Stmts = Unconditioned->getBody().getStmts();
  std::vector<StmtPtr> Kept;
  for (StmtPtr &S : Stmts)
    if (S->getKind() != Stmt::Kind::Observe)
      Kept.push_back(std::move(S));
  Stmts = std::move(Kept);
  auto LP = lowerProgram(*Unconditioned, P->Inputs, Diags);
  ASSERT_TRUE(LP) << Diags.str();

  Rng R(55);
  Dataset Data = generateDataset(*LP, 100, R);
  ASSERT_EQ(Data.numRows(), 100u);
  auto D = ExactDistribution::enumerate(*LP);
  ASSERT_TRUE(D);
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  // Without conditioning, the factorized MoG score is the exact chain
  // rule for this network.
  EXPECT_NEAR(F->logLikelihood(Data), D->logLikelihood(Data), 1e-6);
}
