//===- tests/synth/MHTest.cpp - MCMC-SYN (Algorithm 1) unit tests ---------===//

#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

/// Generates a dataset from a target source under empty inputs.
Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

} // namespace

TEST(MHTest, RecoversGaussianParameters) {
  Dataset Data = makeData(GaussTarget, 200, 31);
  ASSERT_EQ(Data.numRows(), 200u);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 4000;
  Config.Seed = 17;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  SynthesisResult Result = Synth.run();
  ASSERT_TRUE(Result.Succeeded);

  // Compare against the target's own likelihood on the same data.
  DiagEngine Diags;
  auto Target = parseP(GaussTarget);
  ASSERT_TRUE(typeCheck(*Target, Diags));
  auto TargetLP = lowerProgram(*Target, {}, Diags);
  auto F = LikelihoodFunction::compile(*TargetLP, Data);
  ASSERT_TRUE(F);
  double TargetLL = F->logLikelihood(Data);
  EXPECT_GT(Result.BestLogLikelihood, TargetLL - 10.0)
      << toString(*Result.BestProgram);
}

TEST(MHTest, SameSeedSameResult) {
  Dataset Data = makeData(GaussTarget, 100, 32);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 500;
  Config.Seed = 5;
  Synthesizer S1(*Sketch, {}, Data, Config);
  Synthesizer S2(*Sketch, {}, Data, Config);
  auto R1 = S1.run();
  auto R2 = S2.run();
  ASSERT_TRUE(R1.Succeeded && R2.Succeeded);
  EXPECT_DOUBLE_EQ(R1.BestLogLikelihood, R2.BestLogLikelihood);
  ASSERT_EQ(R1.BestCompletions.size(), R2.BestCompletions.size());
  EXPECT_EQ(toString(*R1.BestCompletions[0]),
            toString(*R2.BestCompletions[0]));
}

TEST(MHTest, DifferentSeedsExploreDifferently) {
  Dataset Data = makeData(GaussTarget, 100, 33);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig C1, C2;
  C1.Iterations = C2.Iterations = 300;
  C1.Seed = 1;
  C2.Seed = 2;
  auto R1 = Synthesizer(*Sketch, {}, Data, C1).run();
  auto R2 = Synthesizer(*Sketch, {}, Data, C2).run();
  ASSERT_TRUE(R1.Succeeded && R2.Succeeded);
  EXPECT_NE(toString(*R1.BestCompletions[0]),
            toString(*R2.BestCompletions[0]));
}

TEST(MHTest, BestTraceIsMonotone) {
  Dataset Data = makeData(GaussTarget, 100, 34);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 800;
  Config.Seed = 9;
  Config.TrackBestTrace = true;
  auto Result = Synthesizer(*Sketch, {}, Data, Config).run();
  ASSERT_TRUE(Result.Succeeded);
  ASSERT_EQ(Result.BestTrace.size(), 800u);
  for (size_t I = 1; I < Result.BestTrace.size(); ++I)
    EXPECT_GE(Result.BestTrace[I], Result.BestTrace[I - 1]);
  EXPECT_DOUBLE_EQ(Result.BestTrace.back(), Result.BestLogLikelihood);
}

TEST(MHTest, StatsAreConsistent) {
  Dataset Data = makeData(GaussTarget, 100, 35);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 600;
  Config.Seed = 10;
  auto Result = Synthesizer(*Sketch, {}, Data, Config).run();
  ASSERT_TRUE(Result.Succeeded);
  EXPECT_EQ(Result.Stats.Proposed, 600u);
  EXPECT_LE(Result.Stats.Accepted, Result.Stats.Proposed);
  EXPECT_LE(Result.Stats.Invalid, Result.Stats.Proposed);
  EXPECT_GT(Result.Stats.Scored, 0u);
  EXPECT_GT(Result.Stats.acceptanceRate(), 0.0);
  EXPECT_LT(Result.Stats.acceptanceRate(), 1.0);
  EXPECT_GT(Result.Stats.Seconds, 0.0);
  EXPECT_GT(Result.Stats.candidatesPer100Sec(), 0.0);
}

TEST(MHTest, BestProgramIsHoleFreeAndScoresAsReported) {
  Dataset Data = makeData(GaussTarget, 100, 36);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 500;
  Config.Seed = 11;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  auto Result = Synth.run();
  ASSERT_TRUE(Result.Succeeded);
  ASSERT_TRUE(Result.BestProgram);
  auto Rescored = Synth.scoreWithMoG(*Result.BestProgram);
  ASSERT_TRUE(Rescored);
  EXPECT_NEAR(*Rescored, Result.BestLogLikelihood, 1e-9);
}

TEST(MHTest, InvalidSketchReportsDiagnostics) {
  auto Sketch = parseP(R"(
program Bad() {
  x: real;
  x = undeclared + ??;
  return x;
}
)");
  Dataset Data({"x"});
  Data.addRow({0.0});
  Synthesizer Synth(*Sketch, {}, Data, {});
  EXPECT_FALSE(Synth.valid());
  EXPECT_TRUE(Synth.diagnostics().hasErrors());
  auto Result = Synth.run();
  EXPECT_FALSE(Result.Succeeded);
}

TEST(MHTest, CustomScorerIsUsed) {
  Dataset Data = makeData(GaussTarget, 50, 37);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 50;
  Config.Seed = 12;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  int Calls = 0;
  Synth.setScorer([&](const Program &) -> std::optional<double> {
    ++Calls;
    return -1.0;
  });
  auto Result = Synth.run();
  ASSERT_TRUE(Result.Succeeded);
  EXPECT_GT(Calls, 0);
  EXPECT_DOUBLE_EQ(Result.BestLogLikelihood, -1.0);
}

TEST(MHTest, AllInvalidScorerFailsGracefully) {
  Dataset Data = makeData(GaussTarget, 50, 38);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 20;
  Config.MaxInitTries = 10;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  Synth.setScorer(
      [](const Program &) -> std::optional<double> { return std::nullopt; });
  auto Result = Synth.run();
  EXPECT_FALSE(Result.Succeeded);
}

TEST(MHTest, MultiHoleSketchSynthesizesBothHoles) {
  const char *Target = R"(
program T() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.5);
  x = ite(z, Gaussian(0.0, 1.0), Gaussian(20.0, 1.0));
  return z, x;
}
)";
  const char *SketchSource = R"(
program S() {
  z: bool;
  x: real;
  z = ??;
  x = ??(z);
  return z, x;
}
)";
  Dataset Data = makeData(Target, 150, 39);
  ASSERT_EQ(Data.numRows(), 150u);
  auto Sketch = parseP(SketchSource);
  SynthesisConfig Config;
  Config.Iterations = 6000;
  Config.Seed = 13;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_EQ(Synth.holeSignatures().size(), 2u);
  auto Result = Synth.run();
  ASSERT_TRUE(Result.Succeeded);

  // The synthesized model must separate the two modes: its likelihood
  // should beat a single-Gaussian fit by a wide margin.
  DiagEngine Diags;
  auto Single = parseP(R"(
program Single() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.5);
  x ~ Gaussian(10.0, 10.5);
  return z, x;
}
)");
  ASSERT_TRUE(typeCheck(*Single, Diags));
  auto SingleLP = lowerProgram(*Single, {}, Diags);
  auto F = LikelihoodFunction::compile(*SingleLP, Data);
  ASSERT_TRUE(F);
  EXPECT_GT(Result.BestLogLikelihood, F->logLikelihood(Data) + 20.0)
      << toString(*Result.BestProgram);
}
