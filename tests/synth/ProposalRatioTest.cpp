//===- tests/synth/ProposalRatioTest.cpp - Asymmetric MH ratio tests ------===//

#include "synth/Mutate.h"
#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

ExprPtr parse(const std::string &Source) {
  DiagEngine Diags;
  auto E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

} // namespace

TEST(ProposalRatioTest, RatioIsResetPerProposal) {
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(3);
  Mutator M(Sigs, Gen, Cfg, R);
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0)"));
  double Previous = 0;
  bool SawDifferent = false;
  for (int I = 0; I < 50; ++I) {
    (void)M.propose(Current);
    double Ratio = M.lastProposalLogQRatio();
    EXPECT_TRUE(std::isfinite(Ratio) || Ratio == -INFINITY ||
                Ratio == INFINITY);
    SawDifferent |= I > 0 && Ratio != Previous;
    Previous = Ratio;
  }
  EXPECT_TRUE(SawDifferent);
}

TEST(ProposalRatioTest, VariableSwapIsSymmetric) {
  std::vector<HoleSignature> Sigs = {
      {0, ScalarKind::Real, {ScalarKind::Real, ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(4);
  Mutator M(Sigs, Gen, Cfg, R);
  ExprPtr E = parse("%0");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  (void)M.propose([&] {
    std::vector<ExprPtr> C;
    C.push_back(parse("%0"));
    return C;
  }()); // reset
  ASSERT_TRUE(M.applyVariableSwap(Slots[0], Sigs[0]));
  // applyVariableSwap adds nothing beyond whatever propose() left; use
  // a fresh check: swapping formals contributes no density terms.
  // (The propose() call above may have mutated; re-verify directly.)
  Rng R2(5);
  Mutator M2(Sigs, Gen, Cfg, R2);
  ExprPtr E2 = parse("%1");
  std::vector<TypedSlot> Slots2;
  collectTypedSlots(E2, ScalarKind::Real, Slots2);
  double Before = M2.lastProposalLogQRatio();
  ASSERT_TRUE(M2.applyVariableSwap(Slots2[0], Sigs[0]));
  EXPECT_DOUBLE_EQ(M2.lastProposalLogQRatio(), Before);
}

TEST(ProposalRatioTest, ConstantPerturbNearlySymmetric) {
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real, {}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Cfg.ConstRelSd = 0.0; // With a fixed sigma the move is exactly
                        // symmetric.
  Rng R(6);
  Mutator M(Sigs, Gen, Cfg, R);
  ExprPtr E = parse("11.3");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  ASSERT_TRUE(M.applyConstantPerturb(Slots[0]));
  EXPECT_NEAR(M.lastProposalLogQRatio(), 0.0, 1e-12);
}

TEST(ProposalRatioTest, RegenerateRatioMatchesGrammarDensities) {
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(7);
  Mutator M(Sigs, Gen, Cfg, R);
  ExprPtr E = parse("Gaussian(%0, 15.0)");
  double OldLP = grammarLogProb(*E, Sigs[0], Gen, ScalarKind::Real);
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  ASSERT_TRUE(M.applyRegenerate(Slots[0], Sigs[0]));
  double NewLP = grammarLogProb(*E, Sigs[0], Gen, ScalarKind::Real);
  EXPECT_NEAR(M.lastProposalLogQRatio(), OldLP - NewLP, 1e-9);
}

TEST(ProposalRatioTest, GrowShrinkAreInverseMoves) {
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(8);
  Mutator M(Sigs, Gen, Cfg, R);
  ExprPtr E = parse("Gaussian(%0, 15.0)");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  ASSERT_TRUE(M.applyGrow(Slots[0], Sigs[0]));
  double GrowRatio = M.lastProposalLogQRatio();
  // Growing adds fresh subtrees, so the reverse (a 1/2 shrink) is
  // more likely than the forward generation: ratio > 0... in log
  // terms, -[density of generated parts] which is typically positive
  // because densities of non-trivial trees are << 1.
  EXPECT_TRUE(std::isfinite(GrowRatio));
  // Now shrink back: its contribution is +[density of dropped parts].
  std::vector<TypedSlot> GrownSlots;
  collectTypedSlots(E, ScalarKind::Real, GrownSlots);
  ASSERT_TRUE(M.applyShrink(GrownSlots[0]));
  // After a grow followed by the exact inverse shrink, the summed
  // ratio cancels (up to the branch the shrink kept).
  EXPECT_TRUE(std::isfinite(M.lastProposalLogQRatio()));
}

TEST(ProposalRatioTest, SynthesisWithRatioStillConverges) {
  const char *Target = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";
  const char *SketchSource = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";
  DiagEngine Diags;
  auto TargetP = parseProgramSource(Target, Diags);
  ASSERT_TRUE(typeCheck(*TargetP, Diags));
  auto LP = lowerProgram(*TargetP, {}, Diags);
  Rng R(41);
  Dataset Data = generateDataset(*LP, 150, R);
  auto F = LikelihoodFunction::compile(*LP, Data);
  ASSERT_TRUE(F);
  double TargetLL = F->logLikelihood(Data);

  auto Sketch = parseProgramSource(SketchSource, Diags);
  SynthesisConfig Config;
  Config.Iterations = 4000;
  Config.Chains = 2;
  Config.Seed = 23;
  Config.UseProposalRatio = true;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  auto Result = Synth.run();
  ASSERT_TRUE(Result.Succeeded);
  EXPECT_GT(Result.BestLogLikelihood, TargetLL - 10.0);
}
