//===- tests/synth/TelemetryTest.cpp - Synthesis telemetry tests ----------===//
//
// The telemetry knobs (trace, metrics, stage timers, diagnostics) must
// be result-neutral, mutually consistent with SynthesisStats, and — like
// every other synthesis output — a pure function of the seeds,
// independent of the Threads knob.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "interp/Interp.h"
#include "obs/Json.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

SynthesisResult runTelemetry(const Dataset &Data, unsigned Threads,
                             unsigned Chains = 2,
                             unsigned Iterations = 150,
                             bool SliceFactoring = true) {
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = Iterations;
  Config.Chains = Chains;
  Config.Threads = Threads;
  Config.Seed = 5;
  Config.CollectTrace = true;
  Config.Metrics = true;
  Config.StageTimers = true;
  Config.Diagnostics = true;
  Config.SliceFactoring = SliceFactoring;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  return Synth.run();
}

} // namespace

TEST(TelemetryTest, StatsMergeSumsEveryField) {
  SynthesisStats A, B;
  A.Proposed = 10;
  A.Accepted = 4;
  A.Invalid = 1;
  A.Scored = 8;
  A.CacheHits = 2;
  A.CacheMisses = 6;
  A.Seconds = 1.5;
  A.Stage.Ns[unsigned(Stage::EvalBatch)] = 100;
  A.Stage.Calls[unsigned(Stage::EvalBatch)] = 3;
  B.Proposed = 5;
  B.Accepted = 1;
  B.Invalid = 2;
  B.Scored = 3;
  B.CacheHits = 1;
  B.CacheMisses = 2;
  B.Seconds = 0.5;
  B.Stage.Ns[unsigned(Stage::EvalBatch)] = 50;
  B.Stage.Calls[unsigned(Stage::EvalBatch)] = 1;

  A.merge(B);
  EXPECT_EQ(A.Proposed, 15u);
  EXPECT_EQ(A.Accepted, 5u);
  EXPECT_EQ(A.Invalid, 3u);
  EXPECT_EQ(A.Scored, 11u);
  EXPECT_EQ(A.CacheHits, 3u);
  EXPECT_EQ(A.CacheMisses, 8u);
  EXPECT_DOUBLE_EQ(A.Seconds, 2.0);
  EXPECT_EQ(A.Stage.Ns[unsigned(Stage::EvalBatch)], 150u);
  EXPECT_EQ(A.Stage.calls(Stage::EvalBatch), 4u);
}

TEST(TelemetryTest, TraceEventCountEqualsProposed) {
  Dataset Data = makeData(GaussTarget, 60, 21);
  SynthesisResult R = runTelemetry(Data, 1);
  EXPECT_EQ(R.TraceEvents.size(), size_t(R.Stats.Proposed));

  // Chain-major ordering with per-chain iteration numbering.
  unsigned PrevChain = 0, Accepted = 0, Invalid = 0, CacheHits = 0;
  unsigned NextIter = 0;
  for (const TraceEvent &E : R.TraceEvents) {
    if (E.Chain != PrevChain) {
      EXPECT_EQ(E.Chain, PrevChain + 1);
      PrevChain = E.Chain;
      NextIter = 0;
    }
    EXPECT_EQ(E.Iter, NextIter++);
    Accepted += E.Outcome == TraceOutcome::Accept;
    Invalid += isInvalidOutcome(E.Outcome);
    CacheHits += E.CacheHit;
  }
  EXPECT_EQ(Accepted, R.Stats.Accepted);
  EXPECT_EQ(Invalid, R.Stats.Invalid);
  EXPECT_EQ(CacheHits, R.Stats.CacheHits);
}

TEST(TelemetryTest, BestLLIsMonotoneWithinTheMergedTrace) {
  Dataset Data = makeData(GaussTarget, 60, 22);
  SynthesisResult R = runTelemetry(Data, 1);
  // The merged trace interleaves chains in chain order; within the
  // whole sequence best-so-far only improves (each chain starts from
  // the -inf floor but the merge keeps per-chain subsequences intact).
  unsigned Chain = 0;
  double Best = -std::numeric_limits<double>::infinity();
  for (const TraceEvent &E : R.TraceEvents) {
    if (E.Chain != Chain) {
      Chain = E.Chain;
      Best = -std::numeric_limits<double>::infinity();
    }
    EXPECT_GE(E.BestLL, Best);
    Best = E.BestLL;
  }
}

TEST(TelemetryTest, MetricsAgreeWithStats) {
  Dataset Data = makeData(GaussTarget, 60, 23);
  SynthesisResult R = runTelemetry(Data, 1);
  ASSERT_TRUE(R.Metrics);
  EXPECT_EQ(R.Metrics->counter("synth.proposed").value(),
            uint64_t(R.Stats.Proposed));
  EXPECT_EQ(R.Metrics->counter("synth.accepted").value(),
            uint64_t(R.Stats.Accepted));
  EXPECT_EQ(R.Metrics->counter("synth.invalid").value(),
            uint64_t(R.Stats.Invalid));
  EXPECT_EQ(R.Metrics->counter("synth.scored").value(),
            uint64_t(R.Stats.Scored));
  EXPECT_EQ(R.Metrics->counter("synth.cache.hits").value(),
            uint64_t(R.Stats.CacheHits));
  EXPECT_EQ(R.Metrics->counter("synth.cache.misses").value(),
            uint64_t(R.Stats.CacheMisses));
  EXPECT_EQ(R.Metrics->gauge("synth.best_ll").value(),
            R.BestLogLikelihood);

  // One histogram observation per proposal.
  Histogram H = R.Metrics
                    ->histogram("synth.mutations_per_proposal", 0, 16, 16)
                    .snapshot();
  EXPECT_EQ(H.total(), size_t(R.Stats.Proposed));

  // The whole registry renders as parsable JSON.
  std::string Err;
  EXPECT_TRUE(parseJson(R.Metrics->toJson(), Err)) << Err;
}

TEST(TelemetryTest, StageTimersChargeTheHotStages) {
  Dataset Data = makeData(GaussTarget, 60, 24);
  // Monolithic pipeline: one batched tape eval per scored candidate.
  SynthesisResult R = runTelemetry(Data, 1, 2, 150,
                                   /*SliceFactoring=*/false);
  EXPECT_EQ(R.Stats.Stage.calls(Stage::EvalBatch),
            uint64_t(R.Stats.Scored));
  // Every proposal probes the cache (capacity is on by default).
  EXPECT_EQ(R.Stats.Stage.calls(Stage::CacheProbe),
            uint64_t(R.Stats.CacheHits + R.Stats.CacheMisses));
  EXPECT_GT(R.Stats.Stage.seconds(Stage::EvalBatch), 0.0);
}

TEST(TelemetryTest, StageTimersChargeFactoredGroupEvals) {
  Dataset Data = makeData(GaussTarget, 60, 24);
  // Factored pipeline (DESIGN.md §14): one batched eval per *missed*
  // slice group — hit groups replay cached rows, no tape runs at all.
  SynthesisResult R = runTelemetry(Data, 1);
  ASSERT_GT(R.Stats.SliceGroupHits, 0u);
  EXPECT_EQ(R.Stats.Stage.calls(Stage::EvalBatch),
            uint64_t(R.Stats.SliceGroupMisses));
  EXPECT_EQ(R.Stats.Stage.calls(Stage::CacheProbe),
            uint64_t(R.Stats.CacheHits + R.Stats.CacheMisses));
}

TEST(TelemetryTest, DiagnosticsCoverEveryChain) {
  Dataset Data = makeData(GaussTarget, 60, 25);
  SynthesisResult R = runTelemetry(Data, 1, /*Chains=*/3);
  ASSERT_EQ(R.ChainLLTraces.size(), 3u);
  for (const auto &Trace : R.ChainLLTraces)
    EXPECT_EQ(Trace.size(), 150u);
  ASSERT_TRUE(R.Convergence.Computed);
  EXPECT_EQ(R.Convergence.WindowedAcceptRate.size(), 3u);
  EXPECT_FALSE(std::isnan(R.Convergence.SplitRHat));
  EXPECT_FALSE(std::isnan(R.Convergence.ESS));
}

TEST(TelemetryTest, TelemetryIsThreadCountInvariant) {
  Dataset Data = makeData(GaussTarget, 60, 26);
  SynthesisResult Serial = runTelemetry(Data, 1, /*Chains=*/4);
  SynthesisResult Parallel = runTelemetry(Data, 4, /*Chains=*/4);

  ASSERT_EQ(Serial.TraceEvents.size(), Parallel.TraceEvents.size());
  for (size_t I = 0; I != Serial.TraceEvents.size(); ++I) {
    const TraceEvent &A = Serial.TraceEvents[I];
    const TraceEvent &B = Parallel.TraceEvents[I];
    EXPECT_EQ(A.Chain, B.Chain);
    EXPECT_EQ(A.Iter, B.Iter);
    EXPECT_EQ(A.Mutation, B.Mutation);
    EXPECT_EQ(A.Outcome, B.Outcome);
    EXPECT_EQ(A.CacheHit, B.CacheHit);
    if (std::isnan(A.CandidateLL))
      EXPECT_TRUE(std::isnan(B.CandidateLL));
    else
      EXPECT_EQ(A.CandidateLL, B.CandidateLL);
    EXPECT_EQ(A.BestLL, B.BestLL);
  }

  EXPECT_EQ(Serial.ChainLLTraces, Parallel.ChainLLTraces);
  EXPECT_EQ(Serial.Convergence.SplitRHat, Parallel.Convergence.SplitRHat);
  EXPECT_EQ(Serial.Convergence.ESS, Parallel.Convergence.ESS);
  EXPECT_EQ(Serial.Convergence.StuckChains,
            Parallel.Convergence.StuckChains);

  ASSERT_TRUE(Serial.Metrics && Parallel.Metrics);
  EXPECT_EQ(Serial.Metrics->counter("synth.proposed").value(),
            Parallel.Metrics->counter("synth.proposed").value());
  EXPECT_EQ(Serial.Metrics->counter("synth.accepted").value(),
            Parallel.Metrics->counter("synth.accepted").value());
}

TEST(TelemetryTest, TelemetryOffLeavesResultsUntouched) {
  Dataset Data = makeData(GaussTarget, 60, 27);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Plain;
  Plain.Iterations = 150;
  Plain.Chains = 2;
  Plain.Seed = 5;
  Synthesizer PlainSynth(*Sketch, {}, Data, Plain);
  ASSERT_TRUE(PlainSynth.valid());
  SynthesisResult Off = PlainSynth.run();

  SynthesisResult On = runTelemetry(Data, 1);

  // Telemetry never perturbs the walk.
  EXPECT_EQ(Off.BestLogLikelihood, On.BestLogLikelihood);
  EXPECT_EQ(Off.Stats.Proposed, On.Stats.Proposed);
  EXPECT_EQ(Off.Stats.Accepted, On.Stats.Accepted);
  EXPECT_EQ(Off.Stats.Scored, On.Stats.Scored);

  // And off means off: no buffers, no registry, no timings.
  EXPECT_TRUE(Off.TraceEvents.empty());
  EXPECT_TRUE(Off.ChainLLTraces.empty());
  EXPECT_FALSE(Off.Convergence.Computed);
  EXPECT_FALSE(Off.Metrics);
  EXPECT_TRUE(Off.Stats.Stage.empty());
}

TEST(TelemetryTest, ProgressCallbackFiresPerChain) {
  Dataset Data = makeData(GaussTarget, 40, 28);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 100;
  Config.Chains = 2;
  Config.Seed = 5;
  Config.ProgressEvery = 25;
  std::vector<SynthesisConfig::ProgressUpdate> Updates;
  Config.Progress = [&Updates](const SynthesisConfig::ProgressUpdate &U) {
    Updates.push_back(U);
  };
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid());
  Synth.run();

  // 100 / 25 = 4 periodic updates per chain; the final iteration
  // coincides with a period so there is no extra end-of-chain call.
  ASSERT_EQ(Updates.size(), 8u);
  EXPECT_EQ(Updates.front().Chain, 0u);
  EXPECT_EQ(Updates.front().Iter, 25u);
  EXPECT_EQ(Updates.back().Chain, 1u);
  EXPECT_EQ(Updates.back().Iter, 100u);
  for (const auto &U : Updates)
    EXPECT_EQ(U.Iterations, 100u);
}

TEST(TelemetryTest, ManifestDescribesTheRun) {
  Dataset Data = makeData(GaussTarget, 40, 29);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 123;
  Config.Chains = 3;
  Config.Threads = 1;
  Config.Seed = 77;
  Config.ScoreCacheSize = 512;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid());
  RunManifest M = Synth.makeManifest("gauss.psk");
  EXPECT_EQ(M.Seed, 77u);
  EXPECT_EQ(M.Iterations, 123u);
  EXPECT_EQ(M.Chains, 3u);
  EXPECT_EQ(M.Threads, 1u);
  EXPECT_EQ(M.Sketch, "gauss.psk");
  EXPECT_EQ(M.DatasetRows, Data.numRows());
  EXPECT_EQ(M.DatasetCols, Data.numColumns());
  EXPECT_EQ(M.DatasetFingerprint, Data.fingerprint());
  EXPECT_EQ(M.ScoreCacheSize, 512u);
  EXPECT_FALSE(M.UseProposalRatio);
}
