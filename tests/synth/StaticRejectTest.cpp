//===- tests/synth/StaticRejectTest.cpp - STATIC-REJECT integration -------===//
//
// The pre-filter contract (DESIGN.md §10): the abstract interpreter's
// verdict defines domain validity whether StaticAnalysis is on or off —
// the flag only moves the verdict before or after scoring.  So the two
// modes must produce bit-identical walks, traces and best scores, while
// the on-mode skips the scoring pipeline for rejected proposals.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *ScaleTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(3.0, 1.5);
  return x;
}
)";

/// Both Gaussian parameters are holes; mutation walks the scale hole
/// through negative constants, so the static pre-filter has real work.
const char *ScaleSketch = R"(
program S() {
  x: real;
  x ~ Gaussian(??, ??);
  return x;
}
)";

bool sameDouble(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

} // namespace

TEST(StaticRejectTest, PrefilterFiresOnScaleHoleSketch) {
  Dataset Data = makeData(ScaleTarget, 120, 41);
  auto Sketch = parseP(ScaleSketch);
  SynthesisConfig Config;
  Config.Iterations = 2000;
  Config.Seed = 11;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  SynthesisResult R = Synth.run();
  ASSERT_TRUE(R.Succeeded);
  EXPECT_GT(R.Stats.InvalidStatic, 0u)
      << "a scale-position hole should produce statically-invalid "
         "proposals";
  EXPECT_EQ(R.Stats.Invalid,
            R.Stats.InvalidType + R.Stats.InvalidDomain +
                R.Stats.InvalidStatic);
}

TEST(StaticRejectTest, OnAndOffModesAreBitIdentical) {
  Dataset Data = makeData(ScaleTarget, 120, 42);
  auto Sketch = parseP(ScaleSketch);
  SynthesisConfig On, Off;
  On.Iterations = Off.Iterations = 1500;
  On.Seed = Off.Seed = 23;
  On.CollectTrace = Off.CollectTrace = true;
  On.StaticAnalysis = true;
  Off.StaticAnalysis = false;

  Synthesizer SOn(*Sketch, {}, Data, On);
  Synthesizer SOff(*Sketch, {}, Data, Off);
  SynthesisResult ROn = SOn.run();
  SynthesisResult ROff = SOff.run();
  ASSERT_TRUE(ROn.Succeeded && ROff.Succeeded);

  EXPECT_TRUE(
      sameDouble(ROn.BestLogLikelihood, ROff.BestLogLikelihood));
  ASSERT_EQ(ROn.BestCompletions.size(), ROff.BestCompletions.size());
  for (size_t I = 0; I != ROn.BestCompletions.size(); ++I)
    EXPECT_EQ(toString(*ROn.BestCompletions[I]),
              toString(*ROff.BestCompletions[I]));

  // Same rejection counts either way; only *when* the verdict is
  // applied differs, which shows up as scored-candidate count.
  EXPECT_EQ(ROn.Stats.InvalidStatic, ROff.Stats.InvalidStatic);
  EXPECT_EQ(ROn.Stats.InvalidDomain, ROff.Stats.InvalidDomain);
  EXPECT_EQ(ROn.Stats.InvalidType, ROff.Stats.InvalidType);
  EXPECT_EQ(ROn.Stats.Accepted, ROff.Stats.Accepted);
  EXPECT_GT(ROn.Stats.InvalidStatic, 0u);
  EXPECT_LT(ROn.Stats.Scored, ROff.Stats.Scored)
      << "on-mode must not score statically-rejected proposals";

  // Event-identical traces.
  ASSERT_EQ(ROn.TraceEvents.size(), ROff.TraceEvents.size());
  for (size_t I = 0; I != ROn.TraceEvents.size(); ++I) {
    const TraceEvent &A = ROn.TraceEvents[I];
    const TraceEvent &B = ROff.TraceEvents[I];
    EXPECT_EQ(A.Chain, B.Chain);
    EXPECT_EQ(A.Iter, B.Iter);
    EXPECT_EQ(A.Mutation, B.Mutation);
    EXPECT_EQ(A.Outcome, B.Outcome) << "event " << I;
    EXPECT_TRUE(sameDouble(A.CandidateLL, B.CandidateLL)) << "event " << I;
    EXPECT_TRUE(sameDouble(A.BestLL, B.BestLL)) << "event " << I;
    EXPECT_EQ(A.CacheHit, B.CacheHit) << "event " << I;
  }
}

TEST(StaticRejectTest, ClassifyCompletionsReportsReasons) {
  Dataset Data = makeData(ScaleTarget, 60, 43);
  auto Sketch = parseP(ScaleSketch);
  SynthesisConfig Config;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid());

  std::vector<ExprPtr> BadScale;
  BadScale.push_back(ConstExpr::real(3.0));
  BadScale.push_back(ConstExpr::real(-1.0));
  CachedScore S = Synth.classifyCompletions(BadScale);
  EXPECT_FALSE(S.valid());
  EXPECT_EQ(S.Reason, RejectReason::Static);

  std::vector<ExprPtr> Good;
  Good.push_back(ConstExpr::real(3.0));
  Good.push_back(ConstExpr::real(1.5));
  CachedScore G = Synth.classifyCompletions(Good);
  EXPECT_TRUE(G.valid());
  EXPECT_TRUE(std::isfinite(*G.LL));

  std::vector<ExprPtr> WrongArity;
  WrongArity.push_back(ConstExpr::real(3.0));
  CachedScore W = Synth.classifyCompletions(WrongArity);
  EXPECT_EQ(W.Reason, RejectReason::Type);
}

TEST(StaticRejectTest, StaticVerdictsAreCachedAndReplayed) {
  // With a tiny iteration budget over a two-hole sketch the walk
  // revisits tuples; cached STATIC-REJECT verdicts must replay as the
  // same outcome (the debug-build assert in the cache-hit path checks
  // the reason is still reproducible from the analyzer).
  Dataset Data = makeData(ScaleTarget, 60, 44);
  auto Sketch = parseP(ScaleSketch);
  SynthesisConfig Config;
  Config.Iterations = 3000;
  Config.Seed = 7;
  Config.CollectTrace = true;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid());
  SynthesisResult R = Synth.run();
  ASSERT_TRUE(R.Succeeded);

  // Every InvalidStatic event, cached or not, carries a NaN LL: the
  // scoring pipeline never ran for it.
  unsigned StaticEvents = 0, CachedStatic = 0;
  for (const TraceEvent &E : R.TraceEvents) {
    if (E.Outcome != TraceOutcome::InvalidStatic)
      continue;
    ++StaticEvents;
    CachedStatic += E.CacheHit;
    EXPECT_TRUE(std::isnan(E.CandidateLL));
  }
  EXPECT_EQ(StaticEvents, R.Stats.InvalidStatic);
  EXPECT_GT(CachedStatic, 0u)
      << "expected at least one static verdict to be served from the "
         "score cache";
}

TEST(StaticRejectTest, MetricsCarryTheInvalidBreakdown) {
  Dataset Data = makeData(ScaleTarget, 60, 45);
  auto Sketch = parseP(ScaleSketch);
  SynthesisConfig Config;
  Config.Iterations = 1200;
  Config.Seed = 13;
  Config.Metrics = true;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid());
  SynthesisResult R = Synth.run();
  ASSERT_TRUE(R.Succeeded);
  ASSERT_TRUE(R.Metrics);
  EXPECT_EQ(R.Metrics->counter("synth.invalid_static").value(),
            R.Stats.InvalidStatic);
  EXPECT_EQ(R.Metrics->counter("synth.static_reject").value(),
            R.Stats.InvalidStatic);
  EXPECT_EQ(R.Metrics->counter("synth.invalid_domain").value(),
            R.Stats.InvalidDomain);
  EXPECT_EQ(R.Metrics->counter("synth.invalid_type").value(),
            R.Stats.InvalidType);
}

TEST(StaticRejectTest, ProgressReportsStaticRejects) {
  Dataset Data = makeData(ScaleTarget, 60, 46);
  auto Sketch = parseP(ScaleSketch);
  SynthesisConfig Config;
  Config.Iterations = 1000;
  Config.Seed = 3;
  Config.ProgressEvery = 250;
  unsigned FinalStaticRejects = 0;
  Config.Progress = [&](const SynthesisConfig::ProgressUpdate &U) {
    FinalStaticRejects = U.StaticRejects;
  };
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid());
  SynthesisResult R = Synth.run();
  ASSERT_TRUE(R.Succeeded);
  EXPECT_EQ(FinalStaticRejects, R.Stats.InvalidStatic);
}
