//===- tests/synth/GrammarLogProbTest.cpp - Grammar density tests ---------===//
//
// grammarLogProb must be the exact density of ExprGenerator::generate:
// closed-form cases are checked by hand, and the structure marginal is
// validated against Monte Carlo frequencies of generated trees.
//
//===----------------------------------------------------------------------===//

#include "synth/Generator.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "parse/Parser.h"
#include "support/Casting.h"
#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>

using namespace psketch;

namespace {

ExprPtr parse(const std::string &Source) {
  DiagEngine Diags;
  auto E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

/// A coarse structural fingerprint used to bucket generated trees for
/// the Monte Carlo check (constants collapse, so each bucket's
/// probability is the *structure* marginal — integrating the constant
/// densities out gives exactly the discrete part of grammarLogProb).
std::string shapeOf(const Expr &E) {
  switch (E.getKind()) {
  case Expr::Kind::Const:
    return "c";
  case Expr::Kind::HoleArg:
    return "%" + std::to_string(cast<HoleArgExpr>(E).getArgIndex());
  case Expr::Kind::Unary:
    return "!" + shapeOf(cast<UnaryExpr>(E).getSub());
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    return std::string("(") + shapeOf(B.getLHS()) +
           binaryOpName(B.getOp()) + shapeOf(B.getRHS()) + ")";
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(E);
    return "ite(" + shapeOf(I.getCond()) + "," + shapeOf(I.getThen()) +
           "," + shapeOf(I.getElse()) + ")";
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(E);
    std::string Shape = distKindName(S.getDist());
    Shape += "(";
    for (unsigned I = 0; I != S.getNumArgs(); ++I)
      Shape += shapeOf(S.getArg(I)) + ",";
    return Shape + ")";
  }
  default:
    return "?";
  }
}

/// The discrete (structure-only) part of grammarLogProb: recompute the
/// log density and strip each constant's continuous contribution by
/// integrating it out — equivalently, re-evaluate with the constants'
/// density replaced by 1.  We do this by summing grammarLogProb over
/// the tree and subtracting each constant's density term; simplest is
/// to compute directly with a visitor mirror, but replacing constants
/// with a fixed probe value and correcting is error-prone.  Instead we
/// exploit linearity: logP(tree) = logP(structure) + sum of constant
/// densities, so logP(structure) = logP(tree) - sum(density(c_i)).
double structureLogProb(const Expr &E, const HoleSignature &Sig,
                        const GeneratorConfig &Cfg, ScalarKind Kind) {
  double LogP = grammarLogProb(E, Sig, Cfg, Kind);
  // Subtract continuous constant densities; they are the only
  // non-discrete factors.  Identify each constant's role the same way
  // the generator does: dist args have dist-specific roles, everything
  // else is Value.
  std::function<void(const Expr &, GenRole)> Visit =
      [&](const Expr &Node, GenRole Role) {
        if (const auto *C = dyn_cast<ConstExpr>(&Node)) {
          if (C->getScalarKind() == ScalarKind::Bool)
            return; // discrete
          double V = C->getValue();
          switch (Role) {
          case GenRole::DistProb:
            LogP -= -std::log(0.96);
            return;
          case GenRole::DistScale:
            LogP -= std::log(2.0) +
                    gaussianLogPdf(V - 0.5, 0.0, Cfg.ConstSd);
            return;
          default:
            LogP -= gaussianLogPdf(V, 0.0, Cfg.ConstSd);
            return;
          }
        }
        if (const auto *S = dyn_cast<SampleExpr>(&Node)) {
          for (unsigned I = 0; I != S->getNumArgs(); ++I) {
            GenRole ArgRole =
                (S->getDist() == DistKind::Gaussian && I == 0)
                    ? GenRole::DistMean
                    : (S->getDist() == DistKind::Bernoulli
                           ? GenRole::DistProb
                           : GenRole::DistScale);
            Visit(S->getArg(I), ArgRole);
          }
          return;
        }
        forEachChildSlot(const_cast<Expr &>(Node), [&](ExprPtr &Child) {
          Visit(*Child, GenRole::Value);
        });
      };
  Visit(E, GenRole::Value);
  return LogP;
}

} // namespace

TEST(GrammarLogProbTest, TerminalFormalClosedForm) {
  HoleSignature Sig{0, ScalarKind::Real,
                    {ScalarKind::Real, ScalarKind::Real}};
  GeneratorConfig Cfg;
  // P = TerminalBias * 0.6 * (1/2) for %0 at depth 0.
  double Expected = std::log(Cfg.TerminalBias * 0.6 * 0.5);
  EXPECT_NEAR(grammarLogProb(*parse("%0"), Sig, Cfg, ScalarKind::Real),
              Expected, 1e-12);
}

TEST(GrammarLogProbTest, TerminalConstantClosedForm) {
  HoleSignature Sig{0, ScalarKind::Real, {}};
  GeneratorConfig Cfg;
  // No formals: the constant branch has probability 1; density is the
  // Gaussian(0, ConstSd) pdf.
  double Expected = std::log(Cfg.TerminalBias) +
                    gaussianLogPdf(7.0, 0.0, Cfg.ConstSd);
  EXPECT_NEAR(grammarLogProb(*parse("7.0"), Sig, Cfg, ScalarKind::Real),
              Expected, 1e-12);
}

TEST(GrammarLogProbTest, UnproducibleTreesHaveZeroDensity) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Real}};
  GeneratorConfig Cfg;
  // %1 is out of range for a single-formal hole.
  EXPECT_EQ(grammarLogProb(*parse("%1"), Sig, Cfg, ScalarKind::Real),
            -std::numeric_limits<double>::infinity());
  // Mul is excluded from the default arithmetic set.
  EXPECT_EQ(grammarLogProb(*parse("%0 * %0"), Sig, Cfg, ScalarKind::Real),
            -std::numeric_limits<double>::infinity());
  // Poisson is not in the default distribution set.
  EXPECT_EQ(
      grammarLogProb(*parse("Poisson(4.0)"), Sig, Cfg, ScalarKind::Real),
      -std::numeric_limits<double>::infinity());
  // A DistScale constant below the 0.5 floor cannot be generated.
  EXPECT_EQ(grammarLogProb(*parse("Gaussian(%0, 0.1)"), Sig, Cfg,
                           ScalarKind::Real),
            -std::numeric_limits<double>::infinity());
}

TEST(GrammarLogProbTest, GeneratedTreesAlwaysHavePositiveDensity) {
  HoleSignature Sig{0, ScalarKind::Bool,
                    {ScalarKind::Real, ScalarKind::Bool}};
  GeneratorConfig Cfg;
  Rng R(321);
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 2000; ++I) {
    ExprPtr E = Gen.generate();
    double LogP = grammarLogProb(*E, Sig, Cfg, Sig.ResultKind);
    EXPECT_TRUE(std::isfinite(LogP)) << toString(*E);
  }
}

TEST(GrammarLogProbTest, StructureMarginalMatchesMonteCarlo) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Real}};
  GeneratorConfig Cfg;
  Cfg.MaxDepth = 3; // Small space so buckets get solid counts.
  Rng R(777);
  ExprGenerator Gen(Sig, Cfg, R);
  const int N = 200000;
  std::map<std::string, int> Counts;
  std::map<std::string, ExprPtr> Representatives;
  for (int I = 0; I < N; ++I) {
    ExprPtr E = Gen.generate();
    std::string Shape = shapeOf(*E);
    ++Counts[Shape];
    if (!Representatives.count(Shape))
      Representatives[Shape] = std::move(E);
  }
  // Check the most frequent structures against the analytic marginal.
  int Checked = 0;
  for (const auto &[Shape, Count] : Counts) {
    if (Count < 5000)
      continue;
    double Analytic = std::exp(structureLogProb(
        *Representatives[Shape], Sig, Cfg, ScalarKind::Real));
    double Empirical = double(Count) / N;
    EXPECT_NEAR(Analytic, Empirical, 0.1 * Empirical + 0.002)
        << Shape << " count " << Count;
    ++Checked;
  }
  EXPECT_GE(Checked, 3);
}

TEST(GrammarLogProbTest, DeeperTreesAreLessLikely) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Real}};
  GeneratorConfig Cfg;
  double Leaf = grammarLogProb(*parse("%0"), Sig, Cfg, ScalarKind::Real);
  double OneOp =
      grammarLogProb(*parse("%0 + %0"), Sig, Cfg, ScalarKind::Real);
  double TwoOps = grammarLogProb(*parse("%0 + (%0 - %0)"), Sig, Cfg,
                                 ScalarKind::Real);
  EXPECT_GT(Leaf, OneOp);
  EXPECT_GT(OneOp, TwoOps);
}

TEST(GrammarLogProbTest, DepthLimitForbidsDeepTrees) {
  HoleSignature Sig{0, ScalarKind::Real, {ScalarKind::Real}};
  GeneratorConfig Cfg;
  Cfg.MaxDepth = 2;
  // Depth-2 trees: the children are at the depth limit, so a nested
  // binary is unproducible.
  EXPECT_TRUE(std::isfinite(
      grammarLogProb(*parse("%0 + %0"), Sig, Cfg, ScalarKind::Real)));
  EXPECT_EQ(grammarLogProb(*parse("%0 + (%0 + %0)"), Sig, Cfg,
                           ScalarKind::Real),
            -std::numeric_limits<double>::infinity());
}
