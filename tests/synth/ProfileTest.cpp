//===- tests/synth/ProfileTest.cpp - Profiler neutrality & attribution ----===//
//
// The --profile knob only *reads* clocks and counters; it must never
// change what the synthesizer computes.  These tests pin that contract
// (bitwise-identical results with profiling on/off, serial/parallel,
// sampled/unsampled) and the attribution quality the report promises:
// on the TrueSkill quick workload with the full tape evaluated (no
// incremental cache), >= 95% of the eval_batch wall time lands in
// specific opcode buckets.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "interp/Interp.h"
#include "likelihood/Tape.h"
#include "parse/Parser.h"
#include "suite/Prepare.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

struct RunKnobs {
  bool Profile = false;
  unsigned SampleEvery = 1;
  unsigned Threads = 1;
  unsigned RowThreads = 1;
};

SynthesisResult runWith(const Dataset &Data, const RunKnobs &K) {
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 400;
  Config.Chains = 4;
  Config.Seed = 23;
  Config.Threads = K.Threads;
  Config.RowThreads = K.RowThreads;
  Config.ScoreCacheSize = 4096;
  Config.TrackBestTrace = true;
  Config.Profile = K.Profile;
  Config.ProfileSampleEvery = K.SampleEvery;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  return Synth.run();
}

void expectIdentical(const SynthesisResult &A, const SynthesisResult &B) {
  ASSERT_TRUE(A.Succeeded && B.Succeeded);
  // Bitwise: both runs walked the exact same chains.
  EXPECT_EQ(A.BestLogLikelihood, B.BestLogLikelihood);
  ASSERT_EQ(A.BestCompletions.size(), B.BestCompletions.size());
  for (size_t I = 0; I != A.BestCompletions.size(); ++I) {
    EXPECT_TRUE(
        structurallyEqual(*A.BestCompletions[I], *B.BestCompletions[I]));
    EXPECT_EQ(toString(*A.BestCompletions[I]),
              toString(*B.BestCompletions[I]));
  }
  EXPECT_EQ(A.Stats.Proposed, B.Stats.Proposed);
  EXPECT_EQ(A.Stats.Accepted, B.Stats.Accepted);
  EXPECT_EQ(A.Stats.Invalid, B.Stats.Invalid);
  EXPECT_EQ(A.Stats.Scored, B.Stats.Scored);
  EXPECT_EQ(A.Stats.CacheHits, B.Stats.CacheHits);
  EXPECT_EQ(A.Stats.CacheMisses, B.Stats.CacheMisses);
  ASSERT_EQ(A.BestTrace.size(), B.BestTrace.size());
  for (size_t I = 0; I != A.BestTrace.size(); ++I)
    EXPECT_EQ(A.BestTrace[I], B.BestTrace[I]) << "trace index " << I;
}

} // namespace

TEST(ProfileNeutralityTest, OffByDefaultAndEmpty) {
  Dataset Data = makeData(GaussTarget, 120, 51);
  SynthesisResult R = runWith(Data, {});
  ASSERT_TRUE(R.Succeeded);
  EXPECT_FALSE(R.Profile.Enabled);
  EXPECT_TRUE(R.Profile.Tape.empty());
  EXPECT_EQ(R.Profile.Tape.BlocksTotal, 0u);
}

TEST(ProfileNeutralityTest, ProfileOnIsBitNeutral) {
  Dataset Data = makeData(GaussTarget, 120, 52);
  SynthesisResult Off = runWith(Data, {});
  RunKnobs On;
  On.Profile = true;
  SynthesisResult WithProfile = runWith(Data, On);
  expectIdentical(Off, WithProfile);
  EXPECT_TRUE(WithProfile.Profile.Enabled);
  EXPECT_GT(WithProfile.Profile.Tape.BlocksTotal, 0u);
  EXPECT_GT(WithProfile.Profile.Tape.opNs(), 0u);
}

TEST(ProfileNeutralityTest, ProfileOnIsBitNeutralAcrossThreads) {
  Dataset Data = makeData(GaussTarget, 120, 53);
  SynthesisResult Off = runWith(Data, {});
  RunKnobs K;
  K.Profile = true;
  K.Threads = 4;
  SynthesisResult Threaded = runWith(Data, K);
  expectIdentical(Off, Threaded);
  K.Threads = 1;
  K.RowThreads = 4;
  SynthesisResult RowThreaded = runWith(Data, K);
  expectIdentical(Off, RowThreaded);
}

TEST(ProfileNeutralityTest, SamplingSkipsBlocksButNotResults) {
  Dataset Data = makeData(GaussTarget, 120, 54);
  RunKnobs Full;
  Full.Profile = true;
  SynthesisResult Every = runWith(Data, Full);
  RunKnobs Sampled = Full;
  Sampled.SampleEvery = 4;
  SynthesisResult OneInFour = runWith(Data, Sampled);
  expectIdentical(Every, OneInFour);
  // Sampling changes what is *measured*, never what ran: both runs saw
  // the same blocks, the sampled one profiled only ~1/4 of them and
  // charged the rest to the unsampled cost center.
  EXPECT_EQ(Every.Profile.Tape.BlocksTotal,
            OneInFour.Profile.Tape.BlocksTotal);
  EXPECT_EQ(Every.Profile.Tape.RowsTotal, OneInFour.Profile.Tape.RowsTotal);
  EXPECT_EQ(Every.Profile.Tape.BlocksProfiled,
            Every.Profile.Tape.BlocksTotal);
  EXPECT_LT(OneInFour.Profile.Tape.BlocksProfiled,
            OneInFour.Profile.Tape.BlocksTotal);
  EXPECT_GT(
      OneInFour.Profile.Tape.Center[unsigned(ProfileCostCenter::Unsampled)]
          .Ns,
      0u);
}

TEST(ProfileNeutralityTest, RowParallelMergeCountsMatchSerial) {
  Dataset Data = makeData(GaussTarget, 120, 55);
  RunKnobs Serial;
  Serial.Profile = true;
  RunKnobs Parallel = Serial;
  Parallel.RowThreads = 4;
  SynthesisResult A = runWith(Data, Serial);
  SynthesisResult B = runWith(Data, Parallel);
  expectIdentical(A, B);
  // Block/row accounting is exact regardless of which worker evaluated
  // which block: the per-slot profiles merge in slot order.
  EXPECT_EQ(A.Profile.Tape.BlocksTotal, B.Profile.Tape.BlocksTotal);
  EXPECT_EQ(A.Profile.Tape.RowsTotal, B.Profile.Tape.RowsTotal);
  EXPECT_EQ(A.Profile.Tape.BlocksProfiled, B.Profile.Tape.BlocksProfiled);
}

TEST(ProfileAttributionTest, TrueSkillQuickAttributesEvalToOpcodes) {
  const Benchmark *TS = findBenchmark("TrueSkill");
  ASSERT_NE(TS, nullptr);
  DiagEngine Diags;
  auto Prepared = prepareBenchmark(*TS, Diags);
  ASSERT_TRUE(Prepared) << Diags.str();

  SynthesisConfig Config = TS->Synth;
  Config.Iterations = 200;
  Config.Chains = 2;
  Config.Threads = 1;
  Config.RowThreads = 1;
  Config.Profile = true;
  // Disable the incremental column cache so every scored candidate
  // walks the full tape: the acceptance bar is about opcode coverage of
  // eval_batch, and cache probes are (correctly) not opcode work.
  Config.Incremental = false;

  // The fractions are wall-clock measurements: a heavily oversubscribed
  // test machine can preempt the chain mid-segment and shift a few
  // percent between buckets, so take the best of a few observations
  // (each one a complete, deterministic synthesis run).
  SynthesisResult R;
  double OpFraction = 0, Attributed = 0;
  for (int Attempt = 0; Attempt != 3 && OpFraction < 0.95; ++Attempt) {
    Synthesizer Synth(*Prepared->Sketch, Prepared->Inputs, Prepared->Data,
                      Config);
    ASSERT_TRUE(Synth.valid()) << Synth.diagnostics().str();
    R = Synth.run();
    OpFraction = opcodeEvalFraction(R.Profile.Tape, R.Stats.Stage);
    Attributed = attributedEvalFraction(R.Profile.Tape, R.Stats.Stage);
  }
  ASSERT_TRUE(R.Profile.Enabled);
  ASSERT_GT(R.Profile.Tape.BlocksTotal, 0u);

  // Every block the tape evaluated was profiled (SampleEvery=1)...
  EXPECT_EQ(R.Profile.Tape.BlocksProfiled, R.Profile.Tape.BlocksTotal);
  EXPECT_EQ(R.Profile.Tape.RowsProfiled, R.Profile.Tape.RowsTotal);

  // ...and >= 95% of the eval_batch wall time is attributed to specific
  // opcodes (the rest is cross-block reduction, dispatch glue, and span
  // overhead).
  EXPECT_GE(OpFraction, 0.95) << "attributed total " << Attributed;
  EXPECT_GE(Attributed, OpFraction);
  EXPECT_LE(Attributed, 1.05); // CPU time == wall time at RowThreads=1.

  // The top opcode is a real, named instruction.
  uint64_t TopNs = 0;
  int Top = R.Profile.Tape.topOp(&TopNs);
  ASSERT_GE(Top, 0);
  ASSERT_LT(unsigned(Top), NumProfiledTapeOps);
  EXPECT_GT(TopNs, 0u);
  EXPECT_NE(profiledTapeOpName(unsigned(Top)), nullptr);
}

TEST(ProfileAttributionTest, RowAccountingMatchesRowsScored) {
  // With the score cache and incremental evaluation both off, every
  // scored row passes through exactly one profiled block evaluation.
  Dataset Data = makeData(GaussTarget, 120, 56);
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 200;
  Config.Chains = 2;
  Config.Seed = 23;
  Config.ScoreCacheSize = 0;
  Config.Incremental = false;
  Config.Profile = true;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  SynthesisResult R = Synth.run();
  ASSERT_TRUE(R.Profile.Enabled);
  EXPECT_EQ(R.Profile.Tape.RowsTotal, R.Stats.RowsScored);
}
