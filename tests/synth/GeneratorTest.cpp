//===- tests/synth/GeneratorTest.cpp - Random generator unit tests --------===//

#include "synth/Generator.h"

#include "ast/ASTUtil.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

HoleSignature realHole(std::vector<ScalarKind> Args = {}) {
  return HoleSignature{0, ScalarKind::Real, std::move(Args)};
}

HoleSignature boolHole(std::vector<ScalarKind> Args = {}) {
  return HoleSignature{0, ScalarKind::Bool, std::move(Args)};
}

} // namespace

TEST(GeneratorTest, GeneratedRealCompletionsAlwaysTypeCheck) {
  Rng R(100);
  GeneratorConfig Cfg;
  HoleSignature Sig = realHole({ScalarKind::Real, ScalarKind::Real});
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 2000; ++I) {
    ExprPtr E = Gen.generate();
    ASSERT_TRUE(E);
    EXPECT_TRUE(checkCompletion(*E, Sig)) << "iteration " << I;
  }
}

TEST(GeneratorTest, GeneratedBoolCompletionsAlwaysTypeCheck) {
  Rng R(101);
  GeneratorConfig Cfg;
  HoleSignature Sig = boolHole({ScalarKind::Real, ScalarKind::Bool});
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 2000; ++I) {
    ExprPtr E = Gen.generate();
    ASSERT_TRUE(E);
    EXPECT_TRUE(checkCompletion(*E, Sig)) << "iteration " << I;
  }
}

TEST(GeneratorTest, DepthIsBounded) {
  Rng R(102);
  GeneratorConfig Cfg;
  Cfg.MaxDepth = 3;
  Cfg.TerminalBias = 0.0; // Force recursion until the limit.
  HoleSignature Sig = realHole({ScalarKind::Real});
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 500; ++I) {
    ExprPtr E = Gen.generate();
    // Distribution parameters are terminals, so a draw at the depth
    // limit adds one more level at most.
    EXPECT_LE(exprDepth(*E), 4u);
  }
}

TEST(GeneratorTest, DistributionParamsAreTerminals) {
  Rng R(103);
  GeneratorConfig Cfg;
  Cfg.TerminalBias = 0.1;
  HoleSignature Sig = realHole({ScalarKind::Real});
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 1000; ++I) {
    ExprPtr E = Gen.generate();
    forEachNode(*E, [](const Expr &N) {
      if (const auto *S = dyn_cast<SampleExpr>(&N)) {
        for (const ExprPtr &A : S->getArgs())
          EXPECT_TRUE(isa<ConstExpr>(A.get()) ||
                      isa<HoleArgExpr>(A.get()));
      }
    });
  }
}

TEST(GeneratorTest, BernoulliProbabilityConstantsInUnitInterval) {
  Rng R(104);
  GeneratorConfig Cfg;
  HoleSignature Sig = boolHole();
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 1000; ++I) {
    ExprPtr E = Gen.generate();
    forEachNode(*E, [](const Expr &N) {
      const auto *S = dyn_cast<SampleExpr>(&N);
      if (!S || S->getDist() != DistKind::Bernoulli)
        return;
      if (const auto *C = dyn_cast<ConstExpr>(&S->getArg(0))) {
        EXPECT_GE(C->getValue(), 0.0);
        EXPECT_LE(C->getValue(), 1.0);
      }
    });
  }
}

TEST(GeneratorTest, FormalsOfKindFiltersByBoolVsNumeric) {
  Rng R(105);
  GeneratorConfig Cfg;
  HoleSignature Sig{0, ScalarKind::Real,
                    {ScalarKind::Real, ScalarKind::Bool, ScalarKind::Int}};
  ExprGenerator Gen(Sig, Cfg, R);
  auto RealFormals = Gen.formalsOfKind(ScalarKind::Real);
  ASSERT_EQ(RealFormals.size(), 2u);
  EXPECT_EQ(RealFormals[0], 0u);
  EXPECT_EQ(RealFormals[1], 2u);
  auto BoolFormals = Gen.formalsOfKind(ScalarKind::Bool);
  ASSERT_EQ(BoolFormals.size(), 1u);
  EXPECT_EQ(BoolFormals[0], 1u);
}

TEST(GeneratorTest, FormalsAppearInGeneratedCode) {
  Rng R(106);
  GeneratorConfig Cfg;
  HoleSignature Sig = realHole({ScalarKind::Real});
  ExprGenerator Gen(Sig, Cfg, R);
  int WithFormal = 0;
  for (int I = 0; I < 500; ++I) {
    ExprPtr E = Gen.generate();
    bool Found = false;
    forEachNode(*E, [&](const Expr &N) { Found |= isa<HoleArgExpr>(N); });
    WithFormal += Found;
  }
  // Holes with dependences should usually use them.
  EXPECT_GT(WithFormal, 150);
}

TEST(GeneratorTest, RespectsDistWhitelist) {
  Rng R(107);
  GeneratorConfig Cfg;
  Cfg.Dists = {DistKind::Gaussian};
  HoleSignature Sig = realHole();
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 500; ++I) {
    ExprPtr E = Gen.generate();
    forEachNode(*E, [](const Expr &N) {
      if (const auto *S = dyn_cast<SampleExpr>(&N)) {
        EXPECT_EQ(S->getDist(), DistKind::Gaussian);
      }
    });
  }
}

TEST(GeneratorTest, NoSampleWhenDisabled) {
  Rng R(108);
  GeneratorConfig Cfg;
  Cfg.AllowSample = false;
  HoleSignature Sig = realHole({ScalarKind::Real});
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 500; ++I)
    EXPECT_FALSE(containsSample(*Gen.generate()));
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  GeneratorConfig Cfg;
  HoleSignature Sig = realHole({ScalarKind::Real});
  Rng R1(42), R2(42);
  ExprGenerator G1(Sig, Cfg, R1), G2(Sig, Cfg, R2);
  for (int I = 0; I < 50; ++I)
    EXPECT_TRUE(structurallyEqual(*G1.generate(), *G2.generate()));
}

TEST(GeneratorTest, TerminalsRespectRole) {
  Rng R(109);
  GeneratorConfig Cfg;
  HoleSignature Sig = realHole();
  ExprGenerator Gen(Sig, Cfg, R);
  for (int I = 0; I < 500; ++I) {
    ExprPtr P = Gen.generateConstant(ScalarKind::Real, GenRole::DistProb);
    auto &C = cast<ConstExpr>(*P);
    EXPECT_GE(C.getValue(), 0.0);
    EXPECT_LE(C.getValue(), 1.0);
    ExprPtr S = Gen.generateConstant(ScalarKind::Real, GenRole::DistScale);
    EXPECT_GT(cast<ConstExpr>(*S).getValue(), 0.0);
  }
}
