//===- tests/synth/SpliceTest.cpp - Completion splicing unit tests --------===//

#include "synth/Splice.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

ExprPtr parseE(const std::string &Source) {
  DiagEngine Diags;
  auto E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

} // namespace

TEST(SpliceTest, ReplacesIndependentHole) {
  auto Sketch = parseP(R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)");
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseE("Gaussian(100.0, 10.0)"));
  auto P = spliceCompletions(*Sketch, Completions);
  EXPECT_TRUE(collectHoles(*P).empty());
  EXPECT_NE(toString(*P).find("x ~ Gaussian(100.0, 10.0);"),
            std::string::npos);
}

TEST(SpliceTest, SubstitutesActualArguments) {
  auto Sketch = parseP(R"(
program S(n: int, p1: int[], p2: int[]) {
  skills: real[n];
  r: bool;
  skills[0] = 1.0;
  skills[1] = 2.0;
  r = ??(skills[p1[0]], skills[p2[0]]);
  return r;
}
)");
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseE("Gaussian(%0, 15.0) > Gaussian(%1, 15.0)"));
  auto P = spliceCompletions(*Sketch, Completions);
  std::string Printed = toString(*P);
  EXPECT_NE(Printed.find("r = Gaussian(skills[p1[0]], 15.0) > "
                         "Gaussian(skills[p2[0]], 15.0);"),
            std::string::npos);
}

TEST(SpliceTest, MultipleHolesSplicedByIdOrder) {
  auto Sketch = parseP(R"(
program S() {
  x: real;
  y: real;
  x = ??;
  y = ??(x);
  return y;
}
)");
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseE("1.5"));
  Completions.push_back(parseE("%0 + 2.0"));
  auto P = spliceCompletions(*Sketch, Completions);
  std::string Printed = toString(*P);
  EXPECT_NE(Printed.find("x = 1.5;"), std::string::npos);
  EXPECT_NE(Printed.find("y = x + 2.0;"), std::string::npos);
}

TEST(SpliceTest, SketchIsNotModified) {
  auto Sketch = parseP(R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)");
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseE("3.0"));
  std::string Before = toString(*Sketch);
  (void)spliceCompletions(*Sketch, Completions);
  EXPECT_EQ(toString(*Sketch), Before);
  EXPECT_EQ(collectHoles(*Sketch).size(), 1u);
}

TEST(SpliceTest, HoleInsideLoopReplicatedPerIteration) {
  // A single syntactic hole inside a loop body: splicing the sketch
  // leaves one occurrence, and loop unrolling later replicates it with
  // per-iteration actuals — the TrueSkill prior pattern.
  auto Sketch = parseP(R"(
program S(n: int) {
  a: real[n];
  for i in 0..n {
    a[i] = ??;
  }
  return a;
}
)");
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseE("Gaussian(0.0, 1.0)"));
  auto P = spliceCompletions(*Sketch, Completions);
  EXPECT_TRUE(collectHoles(*P).empty());
  EXPECT_NE(toString(*P).find("a[i] ~ Gaussian(0.0, 1.0);"),
            std::string::npos);
}

TEST(SpliceTest, RepeatedFormalClonesActual) {
  auto Sketch = parseP(R"(
program S() {
  x: real;
  y: real;
  x = 2.0;
  y = ??(x);
  return y;
}
)");
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseE("%0 * %0"));
  auto P = spliceCompletions(*Sketch, Completions);
  EXPECT_NE(toString(*P).find("y = x * x;"), std::string::npos);
}

TEST(SpliceTest, HoleInObserveCondition) {
  auto Sketch = parseP(R"(
program S() {
  x: real;
  x = 1.0;
  observe(??(x));
  return x;
}
)");
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseE("%0 > 0.0"));
  auto P = spliceCompletions(*Sketch, Completions);
  EXPECT_NE(toString(*P).find("observe(x > 0.0);"), std::string::npos);
}
