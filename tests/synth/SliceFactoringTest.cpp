//===- tests/synth/SliceFactoringTest.cpp - Slice plans and differentials -===//
//
// The synth side of DESIGN.md §14: the per-sketch SlicePlan, the group
// footprint keys, the chain-private value cache, and — the load-bearing
// contract — that slice factoring and the dead-hole proposal skip are
// pure cost optimizations: scores, traces and accept decisions are
// bit-identical with `SliceFactoring` on and off, at every threading
// and speculation setting.
//
//===----------------------------------------------------------------------===//

#include "synth/SliceFactoring.h"
#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <cstring>
#include <functional>
#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

ExprPtr parseE(const std::string &Source) {
  DiagEngine Diags;
  auto E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

uint64_t bitsOf(double X) {
  uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  return B;
}

/// Three observed channels with per-channel holes plus a drift hole
/// that feeds only the (unobserved) return — dead for synthesis.
const char *ChannelTarget = R"(
program T() {
  a: real;
  b: real;
  c: real;
  a ~ Gaussian(3.0, 1.0);
  b ~ Gaussian(-2.0, 1.0);
  c ~ Gaussian(7.0, 1.0);
  return a, b, c;
}
)";

const char *ChannelSketch = R"(
program S() {
  a: real;
  b: real;
  c: real;
  drift: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(??, 1.0);
  c ~ Gaussian(??, 1.0);
  drift ~ Gaussian(??, 1.0);
  return drift;
}
)";

std::unique_ptr<LoweredProgram> lowerTemplate(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  auto LP = lowerProgram(*P, {}, Diags, /*KeepHoles=*/true);
  EXPECT_TRUE(LP) << Diags.str();
  return LP;
}

} // namespace

TEST(SlicePlanTest, GroupsTermsByHoleFootprint) {
  auto Template = lowerTemplate(ChannelSketch);
  ASSERT_TRUE(Template);
  Dataset Data = makeData(ChannelTarget, 40, 3);
  SlicePlan Plan =
      buildSlicePlan(*Template, observedSlots(*Template, Data), 4);
  ASSERT_TRUE(Plan.Usable);
  // Terms: rho (no observes → empty mask), then columns a, b, c with
  // one private hole each — four distinct footprints, four groups.
  ASSERT_EQ(Plan.TermMask.size(), 4u);
  EXPECT_EQ(Plan.TermMask[0], HoleMask(0));
  EXPECT_EQ(Plan.TermMask[1], HoleMask(1) << 0);
  EXPECT_EQ(Plan.TermMask[2], HoleMask(1) << 1);
  EXPECT_EQ(Plan.TermMask[3], HoleMask(1) << 2);
  EXPECT_EQ(Plan.NumGroups, 4u);
  ASSERT_TRUE(Plan.partition().valid());
  // ??3 reaches no term: mutations to it cannot change any score.
  EXPECT_EQ(Plan.deadMask(), HoleMask(1) << 3);
}

TEST(SlicePlanTest, SharedHoleMergesTerms) {
  auto Template = lowerTemplate(R"(
program Shared() {
  a: real;
  b: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(??, 1.0);
  observe(a + b > 0.0);
  return a;
}
)");
  ASSERT_TRUE(Template);
  Dataset Data = makeData(R"(
program T() {
  a: real;
  b: real;
  a ~ Gaussian(1.0, 1.0);
  b ~ Gaussian(2.0, 1.0);
  return a, b;
}
)",
                          30, 5);
  SlicePlan Plan =
      buildSlicePlan(*Template, observedSlots(*Template, Data), 2);
  ASSERT_TRUE(Plan.Usable);
  ASSERT_EQ(Plan.TermMask.size(), 3u);
  // Both holes' draws are observed columns, so the observe's reads are
  // data references — but the rho term is weighted under no branch here
  // and the observe reads *observed* slots, leaving rho hole-free while
  // each density term keeps its own hole.
  EXPECT_EQ(Plan.TermMask[1], HoleMask(1) << 0);
  EXPECT_EQ(Plan.TermMask[2], HoleMask(1) << 1);
  EXPECT_EQ(Plan.deadMask(), HoleMask(0));
}

TEST(SlicePlanTest, HoleFreeSketchIsUnusable) {
  auto Template = lowerTemplate(R"(
program NoHoles() {
  x: real;
  x ~ Gaussian(1.0, 2.0);
  return x;
}
)");
  ASSERT_TRUE(Template);
  Dataset Data = makeData(R"(
program T() {
  x: real;
  x ~ Gaussian(1.0, 2.0);
  return x;
}
)",
                          20, 7);
  SlicePlan Plan =
      buildSlicePlan(*Template, observedSlots(*Template, Data), 0);
  EXPECT_FALSE(Plan.Usable);
}

TEST(SliceGroupKeyTest, DependsOnlyOnTheGroupFootprint) {
  auto Template = lowerTemplate(ChannelSketch);
  ASSERT_TRUE(Template);
  Dataset Data = makeData(ChannelTarget, 40, 3);
  SlicePlan Plan =
      buildSlicePlan(*Template, observedSlots(*Template, Data), 4);
  ASSERT_TRUE(Plan.Usable);

  std::vector<ExprPtr> Base;
  for (const char *S : {"1.0", "2.0", "3.0", "4.0"})
    Base.push_back(parseE(S));
  // Group 1's footprint is {??0}: changing ??1's completion keeps the
  // key, changing ??0's moves it.
  std::vector<ExprPtr> OtherHole;
  for (const char *S : {"1.0", "9.0", "3.0", "4.0"})
    OtherHole.push_back(parseE(S));
  std::vector<ExprPtr> OwnHole;
  for (const char *S : {"5.5", "2.0", "3.0", "4.0"})
    OwnHole.push_back(parseE(S));

  EXPECT_EQ(sliceGroupKey(Plan, 1, Base), sliceGroupKey(Plan, 1, OtherHole));
  EXPECT_NE(sliceGroupKey(Plan, 1, Base), sliceGroupKey(Plan, 1, OwnHole));
  // Structural hashing: an equal tuple parsed separately agrees.
  std::vector<ExprPtr> BaseCopy;
  for (const char *S : {"1.0", "2.0", "3.0", "4.0"})
    BaseCopy.push_back(parseE(S));
  EXPECT_EQ(sliceGroupKey(Plan, 1, Base), sliceGroupKey(Plan, 1, BaseCopy));
}

TEST(SliceValueCacheTest, LRUEvictsOldestPerGroup) {
  SliceValueCache Cache(/*NumGroups=*/2, /*PerGroupCapacity=*/2);
  auto Mk = [](double V) {
    return std::make_shared<const std::vector<std::vector<double>>>(
        std::vector<std::vector<double>>{{V}});
  };
  Cache.insert(0, 10, Mk(1.0));
  Cache.insert(0, 20, Mk(2.0));
  // Touch key 10 so 20 becomes the LRU victim.
  ASSERT_TRUE(Cache.lookup(0, 10));
  Cache.insert(0, 30, Mk(3.0));
  EXPECT_TRUE(Cache.lookup(0, 10));
  EXPECT_FALSE(Cache.lookup(0, 20));
  EXPECT_TRUE(Cache.lookup(0, 30));
  // Groups are independent.
  EXPECT_FALSE(Cache.lookup(1, 10));
}

namespace {

/// Runs the channel synthesis with factoring on and off under \p Mutate
/// applied to both configs, and requires bitwise-identical outcomes plus
/// the expected skip/saved telemetry on the factored run.
void expectFactoredMatchesMonolithic(
    const std::function<void(SynthesisConfig &)> &Mutate,
    bool ExpectSliceWork = true) {
  Dataset Data = makeData(ChannelTarget, 120, 41);
  auto SketchP = parseP(ChannelSketch);

  SynthesisConfig On;
  On.Iterations = 500;
  On.Seed = 9;
  On.TrackBestTrace = true;
  Mutate(On);
  SynthesisConfig Off = On;
  On.SliceFactoring = true;
  Off.SliceFactoring = false;

  Synthesizer SOn(*SketchP, {}, Data, On);
  ASSERT_TRUE(SOn.valid()) << SOn.diagnostics().str();
  Synthesizer SOff(*SketchP, {}, Data, Off);
  ASSERT_TRUE(SOff.valid()) << SOff.diagnostics().str();

  SynthesisResult ROn = SOn.run();
  SynthesisResult ROff = SOff.run();
  ASSERT_TRUE(ROn.Succeeded);
  ASSERT_TRUE(ROff.Succeeded);

  EXPECT_EQ(bitsOf(ROn.BestLogLikelihood), bitsOf(ROff.BestLogLikelihood));
  ASSERT_EQ(ROn.BestCompletions.size(), ROff.BestCompletions.size());
  for (size_t I = 0; I != ROn.BestCompletions.size(); ++I)
    EXPECT_EQ(toString(*ROn.BestCompletions[I]),
              toString(*ROff.BestCompletions[I]));
  ASSERT_EQ(ROn.BestTrace.size(), ROff.BestTrace.size());
  for (size_t I = 0; I != ROn.BestTrace.size(); ++I)
    ASSERT_EQ(bitsOf(ROn.BestTrace[I]), bitsOf(ROff.BestTrace[I]))
        << "traces diverge at iteration " << I;
  EXPECT_EQ(ROn.Stats.Proposed, ROff.Stats.Proposed);
  EXPECT_EQ(ROn.Stats.Accepted, ROff.Stats.Accepted);
  EXPECT_EQ(ROn.Stats.Invalid, ROff.Stats.Invalid);

  // The factored run must actually factor: dead-hole (??3) proposals
  // skip scoring, and cached groups save a healthy share of tape rows
  // (the issue's bar is >= 30%).  Speculation workers score
  // monolithically by design, so callers that route most scoring
  // through them opt out of this telemetry check.
  if (ExpectSliceWork) {
    EXPECT_GT(ROn.Stats.SliceSkip, 0u);
    EXPECT_GT(ROn.Stats.SliceGroupHits, 0u);
    double Saved = double(ROn.Stats.SliceRowsSaved);
    double Evaluated = double(ROn.Stats.SliceRowsEvaluated);
    ASSERT_GT(Saved + Evaluated, 0.0);
    EXPECT_GE(Saved / (Saved + Evaluated), 0.3);
  }

  // The monolithic run must not: the knob gates every slice mechanism.
  EXPECT_EQ(ROff.Stats.SliceSkip, 0u);
  EXPECT_EQ(ROff.Stats.SliceGroupHits, 0u);
  EXPECT_EQ(ROff.Stats.SliceRowsSaved, 0u);
}

} // namespace

TEST(SliceFactoringTest, OnOffBitIdenticalSerial) {
  expectFactoredMatchesMonolithic([](SynthesisConfig &) {});
}

TEST(SliceFactoringTest, OnOffBitIdenticalMultiChain) {
  expectFactoredMatchesMonolithic(
      [](SynthesisConfig &C) { C.Threads = 2; });
}

TEST(SliceFactoringTest, OnOffBitIdenticalRowParallel) {
  expectFactoredMatchesMonolithic(
      [](SynthesisConfig &C) { C.RowThreads = 2; });
}

TEST(SliceFactoringTest, OnOffBitIdenticalSpeculative) {
  expectFactoredMatchesMonolithic(
      [](SynthesisConfig &C) { C.SpeculateDepth = 2; },
      /*ExpectSliceWork=*/false);
}

TEST(SliceFactoringTest, FastTapeFallsBackToMonolithic) {
  // FastTape's value-changing simplification voids the per-term
  // bit-identity argument, so factoring must gate itself off — scores
  // still match the monolithic FastTape run and no groups are cached.
  // The dead-hole skip stays on: it never consults any tape.
  Dataset Data = makeData(ChannelTarget, 80, 13);
  auto SketchP = parseP(ChannelSketch);
  SynthesisConfig On;
  On.Iterations = 300;
  On.Seed = 17;
  On.Likelihood.Tape.FastTape = true;
  SynthesisConfig Off = On;
  On.SliceFactoring = true;
  Off.SliceFactoring = false;

  Synthesizer SOn(*SketchP, {}, Data, On);
  ASSERT_TRUE(SOn.valid()) << SOn.diagnostics().str();
  Synthesizer SOff(*SketchP, {}, Data, Off);
  ASSERT_TRUE(SOff.valid()) << SOff.diagnostics().str();
  SynthesisResult ROn = SOn.run();
  SynthesisResult ROff = SOff.run();
  ASSERT_TRUE(ROn.Succeeded);
  ASSERT_TRUE(ROff.Succeeded);
  EXPECT_EQ(bitsOf(ROn.BestLogLikelihood), bitsOf(ROff.BestLogLikelihood));
  EXPECT_EQ(ROn.Stats.SliceGroupHits, 0u);
  EXPECT_EQ(ROn.Stats.SliceGroupMisses, 0u);
  EXPECT_GT(ROn.Stats.SliceSkip, 0u);
}
