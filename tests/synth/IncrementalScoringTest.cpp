//===- tests/synth/IncrementalScoringTest.cpp - Optimization neutrality ---===//
//
// The likelihood-pipeline optimizations (DESIGN.md §9) — the NumExpr
// simplifier, tape superinstruction fusion and column-cache incremental
// scoring — are all bit-exact in default mode, so a full MH run must
// produce *identical* results with any combination of them switched
// off: same best score to the last bit, same accept/score counters
// (the walk visited the same states), same synthesized program.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

// A two-variable target so candidate likelihoods have non-trivial DAGs
// with shared structure across hole-local proposals.
const char *Target = R"(
program T() {
  x: real;
  y: real;
  x ~ Gaussian(3.0, 1.5);
  y ~ Gaussian(x, 0.5);
  return x, y;
}
)";

const char *SketchSrc = R"(
program S() {
  x: real;
  y: real;
  x = ??;
  y ~ Gaussian(x, 0.5);
  return x, y;
}
)";

struct Toggles {
  bool Incremental = true;
  bool Simplify = true;
  bool Fuse = true;
};

SynthesisResult runWith(const Dataset &Data, const Toggles &T) {
  auto Sketch = parseP(SketchSrc);
  SynthesisConfig Config;
  Config.Iterations = 300;
  Config.Chains = 2;
  Config.Seed = 17;
  Config.Incremental = T.Incremental;
  Config.Likelihood.Simplify = T.Simplify;
  Config.Likelihood.Tape.Fuse = T.Fuse;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  return Synth.run();
}

void expectSameWalk(const SynthesisResult &A, const SynthesisResult &B) {
  ASSERT_TRUE(A.Succeeded && B.Succeeded);
  // Bitwise, not approximate: any drift would mean an optimization
  // changed a score and the walks diverged.
  EXPECT_EQ(A.BestLogLikelihood, B.BestLogLikelihood);
  EXPECT_EQ(toString(*A.BestProgram), toString(*B.BestProgram));
  EXPECT_EQ(A.Stats.Proposed, B.Stats.Proposed);
  EXPECT_EQ(A.Stats.Accepted, B.Stats.Accepted);
  EXPECT_EQ(A.Stats.Invalid, B.Stats.Invalid);
  EXPECT_EQ(A.Stats.Scored, B.Stats.Scored);
  EXPECT_EQ(A.Stats.CacheHits, B.Stats.CacheHits);
}

} // namespace

TEST(IncrementalScoringTest, IncrementalScoringIsResultNeutral) {
  Dataset Data = makeData(Target, 150, 7);
  SynthesisResult On = runWith(Data, {true, true, true});
  SynthesisResult Off = runWith(Data, {false, true, true});
  expectSameWalk(On, Off);
  // The incremental run really exercised the cache; the plain run
  // never touched one.
  EXPECT_GT(On.Stats.ColCacheHits, 0u);
  EXPECT_GT(On.Stats.colCacheHitRate(), 0.0);
  EXPECT_EQ(Off.Stats.ColCacheHits, 0u);
  EXPECT_EQ(Off.Stats.ColCacheMisses, 0u);
}

TEST(IncrementalScoringTest, SimplifierAndFusionAreResultNeutral) {
  Dataset Data = makeData(Target, 150, 8);
  SynthesisResult AllOn = runWith(Data, {true, true, true});
  SynthesisResult NoSimp = runWith(Data, {true, false, true});
  SynthesisResult NoFuse = runWith(Data, {true, true, false});
  SynthesisResult AllOff = runWith(Data, {false, false, false});
  expectSameWalk(AllOn, NoSimp);
  expectSameWalk(AllOn, NoFuse);
  expectSameWalk(AllOn, AllOff);
}

TEST(IncrementalScoringTest, TapeTelemetryReflectsOptimizations) {
  Dataset Data = makeData(Target, 100, 9);
  SynthesisResult On = runWith(Data, {true, true, true});
  ASSERT_TRUE(On.Succeeded);
  // Raw counts are pre-simplifier, final counts post-simplify+fusion.
  EXPECT_GT(On.Stats.TapeRawIns, 0u);
  EXPECT_GT(On.Stats.TapeFinalIns, 0u);
  EXPECT_LE(On.Stats.TapeFinalIns, On.Stats.TapeRawIns);
  EXPECT_GT(On.Stats.TapeFused, 0u);

  SynthesisResult NoFuse = runWith(Data, {true, true, false});
  EXPECT_EQ(NoFuse.Stats.TapeFused, 0u);
}

TEST(IncrementalScoringTest, ColumnCacheSurvivesTinyBudget) {
  // A 1 MB budget forces constant eviction on 150-row candidates with
  // many subtrees; results must still match the unbounded run exactly.
  Dataset Data = makeData(Target, 150, 10);
  auto Run = [&](size_t Bytes) {
    auto Sketch = parseP(SketchSrc);
    SynthesisConfig Config;
    Config.Iterations = 200;
    Config.Chains = 1;
    Config.Seed = 21;
    Config.ColumnCacheBytes = Bytes;
    Synthesizer Synth(*Sketch, {}, Data, Config);
    EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
    return Synth.run();
  };
  SynthesisResult Big = Run(size_t(32) << 20);
  SynthesisResult Tiny = Run(size_t(16) << 10);
  expectSameWalk(Big, Tiny);
  EXPECT_GT(Tiny.Stats.ColCacheEvictions, Big.Stats.ColCacheEvictions);
}

TEST(IncrementalScoringTest, MetricsExportColumnCacheAndTapeCounters) {
  Dataset Data = makeData(Target, 100, 11);
  auto Sketch = parseP(SketchSrc);
  SynthesisConfig Config;
  Config.Iterations = 200;
  Config.Chains = 1;
  Config.Seed = 5;
  Config.Metrics = true;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  SynthesisResult R = Synth.run();
  ASSERT_TRUE(R.Succeeded);
  ASSERT_NE(R.Metrics, nullptr);
  const std::string Json = R.Metrics->toJson();
  EXPECT_NE(Json.find("synth.colcache.hits"), std::string::npos);
  EXPECT_NE(Json.find("synth.colcache.hit_rate"), std::string::npos);
  EXPECT_NE(Json.find("synth.tape.instructions"), std::string::npos);
  EXPECT_NE(Json.find("synth.cache.evictions"), std::string::npos);
}
