//===- tests/synth/ScoreCacheTest.cpp - LRU score cache unit tests --------===//

#include "synth/ScoreCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace psketch;

TEST(ScoreCacheTest, MissThenHit) {
  ScoreCache C(4);
  EXPECT_FALSE(C.lookup(1).has_value());
  C.insert(1, CachedScore(-3.5));
  auto Hit = C.lookup(1);
  ASSERT_TRUE(Hit.has_value());
  ASSERT_TRUE(Hit->valid());
  EXPECT_EQ(Hit->Reason, RejectReason::None);
  EXPECT_DOUBLE_EQ(*Hit->LL, -3.5);
}

TEST(ScoreCacheTest, MemoizesInvalidCandidatesWithTheirReason) {
  ScoreCache C(4);
  C.insert(7, CachedScore(RejectReason::Domain));
  C.insert(8, CachedScore(RejectReason::Static));
  auto Domain = C.lookup(7);
  ASSERT_TRUE(Domain.has_value()); // Cached...
  EXPECT_FALSE(Domain->valid());   // ...as "rejected"...
  EXPECT_EQ(Domain->Reason, RejectReason::Domain); // ...with its reason.
  auto Static = C.lookup(8);
  ASSERT_TRUE(Static.has_value());
  EXPECT_FALSE(Static->valid());
  EXPECT_EQ(Static->Reason, RejectReason::Static);
}

TEST(ScoreCacheTest, RejectReasonNamesAreStable) {
  EXPECT_STREQ(rejectReasonName(RejectReason::None), "none");
  EXPECT_STREQ(rejectReasonName(RejectReason::Type), "type");
  EXPECT_STREQ(rejectReasonName(RejectReason::Domain), "domain");
  EXPECT_STREQ(rejectReasonName(RejectReason::Static), "static");
}

TEST(ScoreCacheTest, EvictsLeastRecentlyUsed) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  C.insert(3, CachedScore(-3.0)); // Evicts 1.
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
  EXPECT_EQ(C.size(), 2u);
}

TEST(ScoreCacheTest, LookupRefreshesRecency) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  EXPECT_TRUE(C.lookup(1).has_value()); // 1 becomes most recent.
  C.insert(3, CachedScore(-3.0));       // Evicts 2, not 1.
  EXPECT_TRUE(C.contains(1));
  EXPECT_FALSE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
}

TEST(ScoreCacheTest, ReinsertUpdatesValueAndRecency) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  C.insert(1, CachedScore(-9.0)); // Refresh, no growth.
  EXPECT_EQ(C.size(), 2u);
  C.insert(3, CachedScore(-3.0)); // Evicts 2.
  EXPECT_FALSE(C.contains(2));
  auto Hit = C.lookup(1);
  ASSERT_TRUE(Hit.has_value());
  ASSERT_TRUE(Hit->valid());
  EXPECT_DOUBLE_EQ(*Hit->LL, -9.0);
}

TEST(ScoreCacheTest, ZeroCapacityNeverStores) {
  ScoreCache C(0);
  C.insert(1, CachedScore(-1.0));
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(C.lookup(1).has_value());
}

TEST(ScoreCacheTest, CountsEvictions) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  EXPECT_EQ(C.evictions(), 0u);
  C.insert(3, CachedScore(-3.0)); // Evicts 1.
  C.insert(4, CachedScore(-4.0)); // Evicts 2.
  EXPECT_EQ(C.evictions(), 2u);
  C.insert(4, CachedScore(-5.0)); // Refresh: no eviction.
  EXPECT_EQ(C.evictions(), 2u);
}

TEST(ScoreCacheTest, PeekDoesNotTouchRecency) {
  // The speculation expander probes with peek(); the realized walk then
  // replays the same keys through lookup().  If peek() refreshed
  // recency, lookahead would perturb the eviction order the sequential
  // walk produces.
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  auto P = C.peek(1); // Must NOT make 1 most recent.
  ASSERT_TRUE(P.has_value());
  EXPECT_DOUBLE_EQ(*P->LL, -1.0);
  C.insert(3, CachedScore(-3.0)); // Still evicts 1 (the LRU entry).
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
}

TEST(ScoreCacheTest, PeekMissesCleanly) {
  ScoreCache C(2);
  EXPECT_FALSE(C.peek(99).has_value());
  ScoreCache Z(0);
  EXPECT_FALSE(Z.peek(1).has_value());
}

TEST(ScoreCacheTest, EpochsCountWarmHitsOncePerEpoch) {
  ScoreCache C(8);
  C.insert(1, CachedScore(-1.0));
  EXPECT_TRUE(C.lookup(1).has_value()); // Same epoch: not warm.
  EXPECT_EQ(C.warmHits(), 0u);
  C.beginEpoch();
  EXPECT_TRUE(C.lookup(1).has_value()); // Survived a rebuild: warm.
  EXPECT_EQ(C.warmHits(), 1u);
  EXPECT_TRUE(C.lookup(1).has_value()); // Re-stamped: counts once.
  EXPECT_EQ(C.warmHits(), 1u);
  C.beginEpoch();
  EXPECT_TRUE(C.lookup(1).has_value()); // Next epoch: warm again.
  EXPECT_EQ(C.warmHits(), 2u);
}

TEST(ScoreCacheTest, EpochsCountWarmEvictions) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.beginEpoch();
  C.insert(2, CachedScore(-2.0)); // Born in epoch 1.
  C.insert(3, CachedScore(-3.0)); // Evicts 1, which predates the epoch.
  EXPECT_EQ(C.warmEvictions(), 1u);
  C.insert(4, CachedScore(-4.0)); // Evicts 2: same epoch, not warm.
  EXPECT_EQ(C.warmEvictions(), 1u);
  EXPECT_EQ(C.evictions(), 2u);
}

TEST(ScoreCacheTest, PeekDoesNotTouchWarmCounters) {
  ScoreCache C(4);
  C.insert(1, CachedScore(-1.0));
  C.beginEpoch();
  EXPECT_TRUE(C.peek(1).has_value());
  EXPECT_EQ(C.warmHits(), 0u); // peek is counter-free by contract.
}

TEST(ScoreCacheTest, SharedMirrorServesExistingAndNewEntries) {
  ScoreCache C(8);
  C.insert(1, CachedScore(-1.0));
  C.setShared(true); // Copies current contents into the stripes.
  auto Hit = C.peekShared(1);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(*Hit->LL, -1.0);
  C.insert(2, CachedScore(RejectReason::Domain)); // Mirror maintained.
  auto Rej = C.peekShared(2);
  ASSERT_TRUE(Rej.has_value());
  EXPECT_EQ(Rej->Reason, RejectReason::Domain);
  EXPECT_FALSE(C.peekShared(3).has_value());
}

TEST(ScoreCacheTest, SharedMirrorDropsEvictedEntries) {
  // A stale mirror entry would hand a worker a verdict the realized
  // walk will recompute — harmless for results but a lie in the
  // telemetry; the owner erases mirror entries on evict.
  ScoreCache C(2);
  C.setShared(true);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  C.insert(3, CachedScore(-3.0)); // Evicts 1 from table AND mirror.
  EXPECT_FALSE(C.peekShared(1).has_value());
  EXPECT_TRUE(C.peekShared(2).has_value());
  EXPECT_TRUE(C.peekShared(3).has_value());
}

TEST(ScoreCacheTest, SharedMirrorConcurrentReadsUnderOwnerWrites) {
  // TSan coverage for the one concurrent structure the speculation
  // layer adds: readers on peekShared while the owner inserts/evicts.
  ScoreCache C(64);
  C.setShared(true);
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Hits{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T != 4; ++T)
    Readers.emplace_back([&] {
      uint64_t Local = 0;
      bool Done = false;
      do { // At least one full scan, even if the owner already finished.
        Done = Stop.load();
        for (uint64_t K = 0; K != 128; ++K)
          if (auto S = C.peekShared(K)) {
            // Values are never torn: key K always maps to -double(K).
            EXPECT_DOUBLE_EQ(*S->LL, -double(K));
            ++Local;
          }
      } while (!Done);
      Hits += Local;
    });
  for (int Round = 0; Round != 200; ++Round)
    C.insert(uint64_t(Round % 128), CachedScore(-double(Round % 128)));
  Stop = true;
  for (std::thread &T : Readers)
    T.join();
  EXPECT_GT(Hits.load(), 0u);
}

TEST(ScoreCacheTest, DisablingSharedTearsDownMirror) {
  ScoreCache C(4);
  C.insert(1, CachedScore(-1.0));
  C.setShared(true);
  EXPECT_TRUE(C.isShared());
  C.setShared(false);
  EXPECT_FALSE(C.isShared());
  // The owner-side table is unaffected.
  EXPECT_TRUE(C.contains(1));
}
