//===- tests/synth/ScoreCacheTest.cpp - LRU score cache unit tests --------===//

#include "synth/ScoreCache.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(ScoreCacheTest, MissThenHit) {
  ScoreCache C(4);
  EXPECT_FALSE(C.lookup(1).has_value());
  C.insert(1, -3.5);
  auto Hit = C.lookup(1);
  ASSERT_TRUE(Hit.has_value());
  ASSERT_TRUE(Hit->has_value());
  EXPECT_DOUBLE_EQ(**Hit, -3.5);
}

TEST(ScoreCacheTest, MemoizesInvalidCandidates) {
  ScoreCache C(4);
  C.insert(7, std::nullopt);
  auto Hit = C.lookup(7);
  ASSERT_TRUE(Hit.has_value());  // Cached...
  EXPECT_FALSE(Hit->has_value()); // ...as "scored invalid".
}

TEST(ScoreCacheTest, EvictsLeastRecentlyUsed) {
  ScoreCache C(2);
  C.insert(1, -1.0);
  C.insert(2, -2.0);
  C.insert(3, -3.0); // Evicts 1.
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
  EXPECT_EQ(C.size(), 2u);
}

TEST(ScoreCacheTest, LookupRefreshesRecency) {
  ScoreCache C(2);
  C.insert(1, -1.0);
  C.insert(2, -2.0);
  EXPECT_TRUE(C.lookup(1).has_value()); // 1 becomes most recent.
  C.insert(3, -3.0);                    // Evicts 2, not 1.
  EXPECT_TRUE(C.contains(1));
  EXPECT_FALSE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
}

TEST(ScoreCacheTest, ReinsertUpdatesValueAndRecency) {
  ScoreCache C(2);
  C.insert(1, -1.0);
  C.insert(2, -2.0);
  C.insert(1, -9.0); // Refresh, no growth.
  EXPECT_EQ(C.size(), 2u);
  C.insert(3, -3.0); // Evicts 2.
  EXPECT_FALSE(C.contains(2));
  auto Hit = C.lookup(1);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_DOUBLE_EQ(**Hit, -9.0);
}

TEST(ScoreCacheTest, ZeroCapacityNeverStores) {
  ScoreCache C(0);
  C.insert(1, -1.0);
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(C.lookup(1).has_value());
}

TEST(ScoreCacheTest, CountsEvictions) {
  ScoreCache C(2);
  C.insert(1, -1.0);
  C.insert(2, -2.0);
  EXPECT_EQ(C.evictions(), 0u);
  C.insert(3, -3.0); // Evicts 1.
  C.insert(4, -4.0); // Evicts 2.
  EXPECT_EQ(C.evictions(), 2u);
  C.insert(4, -5.0); // Refresh: no eviction.
  EXPECT_EQ(C.evictions(), 2u);
}
