//===- tests/synth/ScoreCacheTest.cpp - LRU score cache unit tests --------===//

#include "synth/ScoreCache.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(ScoreCacheTest, MissThenHit) {
  ScoreCache C(4);
  EXPECT_FALSE(C.lookup(1).has_value());
  C.insert(1, CachedScore(-3.5));
  auto Hit = C.lookup(1);
  ASSERT_TRUE(Hit.has_value());
  ASSERT_TRUE(Hit->valid());
  EXPECT_EQ(Hit->Reason, RejectReason::None);
  EXPECT_DOUBLE_EQ(*Hit->LL, -3.5);
}

TEST(ScoreCacheTest, MemoizesInvalidCandidatesWithTheirReason) {
  ScoreCache C(4);
  C.insert(7, CachedScore(RejectReason::Domain));
  C.insert(8, CachedScore(RejectReason::Static));
  auto Domain = C.lookup(7);
  ASSERT_TRUE(Domain.has_value()); // Cached...
  EXPECT_FALSE(Domain->valid());   // ...as "rejected"...
  EXPECT_EQ(Domain->Reason, RejectReason::Domain); // ...with its reason.
  auto Static = C.lookup(8);
  ASSERT_TRUE(Static.has_value());
  EXPECT_FALSE(Static->valid());
  EXPECT_EQ(Static->Reason, RejectReason::Static);
}

TEST(ScoreCacheTest, RejectReasonNamesAreStable) {
  EXPECT_STREQ(rejectReasonName(RejectReason::None), "none");
  EXPECT_STREQ(rejectReasonName(RejectReason::Type), "type");
  EXPECT_STREQ(rejectReasonName(RejectReason::Domain), "domain");
  EXPECT_STREQ(rejectReasonName(RejectReason::Static), "static");
}

TEST(ScoreCacheTest, EvictsLeastRecentlyUsed) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  C.insert(3, CachedScore(-3.0)); // Evicts 1.
  EXPECT_FALSE(C.contains(1));
  EXPECT_TRUE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
  EXPECT_EQ(C.size(), 2u);
}

TEST(ScoreCacheTest, LookupRefreshesRecency) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  EXPECT_TRUE(C.lookup(1).has_value()); // 1 becomes most recent.
  C.insert(3, CachedScore(-3.0));       // Evicts 2, not 1.
  EXPECT_TRUE(C.contains(1));
  EXPECT_FALSE(C.contains(2));
  EXPECT_TRUE(C.contains(3));
}

TEST(ScoreCacheTest, ReinsertUpdatesValueAndRecency) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  C.insert(1, CachedScore(-9.0)); // Refresh, no growth.
  EXPECT_EQ(C.size(), 2u);
  C.insert(3, CachedScore(-3.0)); // Evicts 2.
  EXPECT_FALSE(C.contains(2));
  auto Hit = C.lookup(1);
  ASSERT_TRUE(Hit.has_value());
  ASSERT_TRUE(Hit->valid());
  EXPECT_DOUBLE_EQ(*Hit->LL, -9.0);
}

TEST(ScoreCacheTest, ZeroCapacityNeverStores) {
  ScoreCache C(0);
  C.insert(1, CachedScore(-1.0));
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(C.lookup(1).has_value());
}

TEST(ScoreCacheTest, CountsEvictions) {
  ScoreCache C(2);
  C.insert(1, CachedScore(-1.0));
  C.insert(2, CachedScore(-2.0));
  EXPECT_EQ(C.evictions(), 0u);
  C.insert(3, CachedScore(-3.0)); // Evicts 1.
  C.insert(4, CachedScore(-4.0)); // Evicts 2.
  EXPECT_EQ(C.evictions(), 2u);
  C.insert(4, CachedScore(-5.0)); // Refresh: no eviction.
  EXPECT_EQ(C.evictions(), 2u);
}
