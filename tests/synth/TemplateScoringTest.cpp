//===- tests/synth/TemplateScoringTest.cpp - Template fast path ----------===//
//
// The synthesizer scores candidates against the sketch lowered once as a
// template (holes kept in place) instead of splicing + re-lowering every
// candidate.  These tests pin the contract: the fast path is
// bitwise-identical to spliced scoring — same accept decisions, same
// traces, same stats — so it can never change synthesis results, only
// cost.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

uint64_t bitsOf(double X) {
  uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  return B;
}

/// Runs the same synthesis twice — once on the template fast path
/// (default scorer) and once with the shortcut disabled via setScorer,
/// which forces per-candidate splice + lower with the very same MoG
/// scoring — and requires bitwise-identical outcomes.
void expectTemplateMatchesSpliced(const char *Target, const char *Sketch,
                                  unsigned Iterations, uint64_t Seed) {
  Dataset Data = makeData(Target, 120, Seed + 100);
  auto SketchP = parseP(Sketch);
  SynthesisConfig Config;
  Config.Iterations = Iterations;
  Config.Seed = Seed;
  Config.TrackBestTrace = true;

  Synthesizer Fast(*SketchP, {}, Data, Config);
  ASSERT_TRUE(Fast.valid()) << Fast.diagnostics().str();

  Synthesizer Spliced(*SketchP, {}, Data, Config);
  ASSERT_TRUE(Spliced.valid()) << Spliced.diagnostics().str();
  // scoreWithMoG is the default scoring; routing it through setScorer
  // only turns off the template shortcut.
  Spliced.setScorer([&Spliced](const Program &Candidate) {
    return Spliced.scoreWithMoG(Candidate);
  });

  SynthesisResult RF = Fast.run();
  SynthesisResult RS = Spliced.run();
  ASSERT_TRUE(RF.Succeeded);
  ASSERT_TRUE(RS.Succeeded);

  EXPECT_EQ(bitsOf(RF.BestLogLikelihood), bitsOf(RS.BestLogLikelihood));
  ASSERT_EQ(RF.BestCompletions.size(), RS.BestCompletions.size());
  for (size_t I = 0; I != RF.BestCompletions.size(); ++I)
    EXPECT_EQ(toString(*RF.BestCompletions[I]),
              toString(*RS.BestCompletions[I]));

  // Every iteration's best-so-far must agree bit for bit: a single
  // accept decision that differed anywhere would fork the walks.
  ASSERT_EQ(RF.BestTrace.size(), RS.BestTrace.size());
  for (size_t I = 0; I != RF.BestTrace.size(); ++I)
    ASSERT_EQ(bitsOf(RF.BestTrace[I]), bitsOf(RS.BestTrace[I]))
        << "traces diverge at iteration " << I;

  EXPECT_EQ(RF.Stats.Proposed, RS.Stats.Proposed);
  EXPECT_EQ(RF.Stats.Accepted, RS.Stats.Accepted);
  EXPECT_EQ(RF.Stats.Invalid, RS.Stats.Invalid);
  EXPECT_EQ(RF.Stats.Scored, RS.Stats.Scored);
  EXPECT_EQ(RF.Stats.CacheHits, RS.Stats.CacheHits);
  EXPECT_EQ(RF.Stats.CacheMisses, RS.Stats.CacheMisses);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

} // namespace

TEST(TemplateScoringTest, MatchesSplicedBitwise) {
  expectTemplateMatchesSpliced(GaussTarget, GaussSketch,
                               /*Iterations=*/600, /*Seed=*/21);
}

TEST(TemplateScoringTest, MatchesSplicedWithHoleArguments) {
  // ??(z) exercises the %-formal path: the template evaluator must
  // re-evaluate the hole-site argument at every occurrence inside the
  // completion, exactly as textual substitution copies it.
  const char *Target = R"(
program T() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.5);
  x = ite(z, Gaussian(0.0, 1.0), Gaussian(20.0, 1.0));
  return z, x;
}
)";
  const char *Sketch = R"(
program S() {
  z: bool;
  x: real;
  z = ??;
  x = ??(z);
  return z, x;
}
)";
  expectTemplateMatchesSpliced(Target, Sketch,
                               /*Iterations=*/600, /*Seed=*/23);
}

TEST(TemplateScoringTest, MatchesSplicedWithCacheDisabled) {
  Dataset Data = makeData(GaussTarget, 80, 301);
  auto SketchP = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 300;
  Config.Seed = 9;
  Config.ScoreCacheSize = 0; // Every score goes through the scorer.
  Config.TrackBestTrace = true;

  Synthesizer Fast(*SketchP, {}, Data, Config);
  Synthesizer Spliced(*SketchP, {}, Data, Config);
  Spliced.setScorer([&Spliced](const Program &Candidate) {
    return Spliced.scoreWithMoG(Candidate);
  });
  SynthesisResult RF = Fast.run();
  SynthesisResult RS = Spliced.run();
  ASSERT_TRUE(RF.Succeeded && RS.Succeeded);
  EXPECT_EQ(bitsOf(RF.BestLogLikelihood), bitsOf(RS.BestLogLikelihood));
  EXPECT_EQ(RF.Stats.Scored, RS.Stats.Scored);
  EXPECT_EQ(RF.Stats.CacheHits, 0u);
  ASSERT_EQ(RF.BestTrace.size(), RS.BestTrace.size());
  for (size_t I = 0; I != RF.BestTrace.size(); ++I)
    ASSERT_EQ(bitsOf(RF.BestTrace[I]), bitsOf(RS.BestTrace[I]));
}
