//===- tests/synth/SpeculationTest.cpp - Speculation depth neutrality -----===//
//
// `--speculate-depth` prefetches future MH proposals onto a worker
// pool; the acceptance criterion of DESIGN.md §13 is that it never
// changes what the synthesizer computes: for any depth and any
// Threads / RowThreads value, scores, traces, best LL and every
// deterministic counter must be byte-identical to the sequential walk.
// These tests compare depth {1, 2, 3} runs (inline, pooled, and
// composed with chain / row workers) against depth 0 at that
// granularity, plus the speculation-specific telemetry.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

struct RunKnobs {
  unsigned SpeculateDepth = 0;
  unsigned Threads = 1;
  unsigned RowThreads = 1;
  unsigned Chains = 1;
  size_t CacheSize = 4096;
  bool UseProposalRatio = false;
  bool SliceFactoring = true;
};

SynthesisResult runWith(const Dataset &Data, const RunKnobs &K) {
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 300;
  Config.Chains = K.Chains;
  Config.Seed = 71;
  Config.Threads = K.Threads;
  Config.RowThreads = K.RowThreads;
  Config.SpeculateDepth = K.SpeculateDepth;
  Config.ScoreCacheSize = K.CacheSize;
  Config.UseProposalRatio = K.UseProposalRatio;
  Config.SliceFactoring = K.SliceFactoring;
  Config.TrackBestTrace = true;
  Config.CollectTrace = true;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  return Synth.run();
}

/// Byte-identity over everything `--speculate-depth` promises to keep:
/// the walk, the traces, and every counter that is deterministic per
/// seed (speculation/pool/warm telemetry is depth-dependent by design
/// and deliberately not compared here).
void expectIdentical(const SynthesisResult &A, const SynthesisResult &B) {
  ASSERT_TRUE(A.Succeeded && B.Succeeded);
  EXPECT_EQ(A.BestLogLikelihood, B.BestLogLikelihood);
  ASSERT_EQ(A.BestCompletions.size(), B.BestCompletions.size());
  for (size_t I = 0; I != A.BestCompletions.size(); ++I)
    EXPECT_EQ(toString(*A.BestCompletions[I]),
              toString(*B.BestCompletions[I]));
  EXPECT_EQ(A.Stats.Proposed, B.Stats.Proposed);
  EXPECT_EQ(A.Stats.Accepted, B.Stats.Accepted);
  EXPECT_EQ(A.Stats.Invalid, B.Stats.Invalid);
  EXPECT_EQ(A.Stats.InvalidType, B.Stats.InvalidType);
  EXPECT_EQ(A.Stats.InvalidDomain, B.Stats.InvalidDomain);
  EXPECT_EQ(A.Stats.InvalidStatic, B.Stats.InvalidStatic);
  EXPECT_EQ(A.Stats.Scored, B.Stats.Scored);
  EXPECT_EQ(A.Stats.CacheHits, B.Stats.CacheHits);
  EXPECT_EQ(A.Stats.CacheMisses, B.Stats.CacheMisses);
  EXPECT_EQ(A.Stats.ScoreCacheEvictions, B.Stats.ScoreCacheEvictions);
  EXPECT_EQ(A.Stats.TapeRawIns, B.Stats.TapeRawIns);
  EXPECT_EQ(A.Stats.TapeFinalIns, B.Stats.TapeFinalIns);
  EXPECT_EQ(A.Stats.TapeFused, B.Stats.TapeFused);
  EXPECT_EQ(A.Stats.RowsScored, B.Stats.RowsScored);
  EXPECT_EQ(A.Stats.RowsSimd, B.Stats.RowsSimd);
  EXPECT_EQ(A.Stats.RowsScalarTail, B.Stats.RowsScalarTail);
  ASSERT_EQ(A.BestTrace.size(), B.BestTrace.size());
  for (size_t I = 0; I != A.BestTrace.size(); ++I)
    ASSERT_EQ(A.BestTrace[I], B.BestTrace[I]) << "trace index " << I;
  ASSERT_EQ(A.TraceEvents.size(), B.TraceEvents.size());
  for (size_t I = 0; I != A.TraceEvents.size(); ++I) {
    const TraceEvent &EA = A.TraceEvents[I];
    const TraceEvent &EB = B.TraceEvents[I];
    EXPECT_EQ(EA.Chain, EB.Chain) << "event " << I;
    EXPECT_EQ(EA.Iter, EB.Iter) << "event " << I;
    EXPECT_EQ(EA.Mutation, EB.Mutation) << "event " << I;
    EXPECT_EQ(EA.Outcome, EB.Outcome) << "event " << I;
    // NaN for unscored candidates: compare representations, not values.
    EXPECT_EQ(std::isnan(EA.CandidateLL), std::isnan(EB.CandidateLL))
        << "event " << I;
    if (!std::isnan(EA.CandidateLL))
      EXPECT_EQ(EA.CandidateLL, EB.CandidateLL) << "event " << I;
    EXPECT_EQ(EA.BestLL, EB.BestLL) << "event " << I;
    EXPECT_EQ(EA.CacheHit, EB.CacheHit) << "event " << I;
  }
}

} // namespace

TEST(SpeculationTest, InlineDepthOneMatchesSequential) {
  // Threads == Chains leaves no workers for the speculation pool; every
  // node resolves through the main thread's await() steal.  The purest
  // test of the replay protocol — no concurrency anywhere.
  Dataset Data = makeData(GaussTarget, 120, 81);
  SynthesisResult Plain = runWith(Data, {});
  RunKnobs K;
  K.SpeculateDepth = 1;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, InlineDepthThreeMatchesSequential) {
  Dataset Data = makeData(GaussTarget, 120, 81);
  SynthesisResult Plain = runWith(Data, {});
  RunKnobs K;
  K.SpeculateDepth = 3;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, PooledDepthThreeMatchesSequential) {
  // One chain, four threads: three go to the speculation pool, so the
  // realized walk races real workers for every node.
  Dataset Data = makeData(GaussTarget, 120, 82);
  SynthesisResult Plain = runWith(Data, {});
  RunKnobs K;
  K.SpeculateDepth = 3;
  K.Threads = 4;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, PooledRunsAreRepeatable) {
  // Two pooled runs against each other: worker scheduling varies, the
  // results must not.
  Dataset Data = makeData(GaussTarget, 120, 83);
  RunKnobs K;
  K.SpeculateDepth = 3;
  K.Threads = 4;
  SynthesisResult First = runWith(Data, K);
  SynthesisResult Second = runWith(Data, K);
  expectIdentical(First, Second);
}

TEST(SpeculationTest, ComposesWithChainThreads) {
  // Two chains, eight threads: two dispatch chains, six speculate.
  // Chains share the speculation pool through per-chain groups.
  Dataset Data = makeData(GaussTarget, 120, 84);
  RunKnobs Base;
  Base.Chains = 2;
  SynthesisResult Plain = runWith(Data, Base);
  RunKnobs K = Base;
  K.SpeculateDepth = 2;
  K.Threads = 8;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, ComposesWithRowThreads) {
  // A dataset spanning several row blocks engages the row pool for the
  // main thread's evaluations while speculation workers score serially;
  // both paths are bit-identical, so the composition must be too.
  Dataset Data = makeData(GaussTarget, 1400, 85);
  SynthesisResult Plain = runWith(Data, {});
  RunKnobs K;
  K.SpeculateDepth = 2;
  K.Threads = 4;
  K.RowThreads = 2;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, SmallCacheEvictionOrderSurvivesSpeculation) {
  // A 16-entry cache churns constantly; hit/miss and eviction counts
  // replay the LRU order, so any speculative insert or recency update
  // would show up here immediately.
  Dataset Data = makeData(GaussTarget, 120, 86);
  RunKnobs Base;
  Base.CacheSize = 16;
  SynthesisResult Plain = runWith(Data, Base);
  ASSERT_GT(Plain.Stats.ScoreCacheEvictions, 0u);
  RunKnobs K = Base;
  K.SpeculateDepth = 3;
  K.Threads = 4;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, UncachedWalkSurvivesSpeculation) {
  // Cache capacity 0 removes the replay cache entirely: every realized
  // verdict must come from the node itself (or an inline steal).
  // Slice factoring is pinned off: without the score cache the
  // depth-0 leg's slice-value cache absorbs revisited proposals
  // (partial or no tape compiles) while speculation workers score
  // monolithically by design (DESIGN.md §14.3), so the tape-compile
  // counters compared here are pipeline-dependent.  The walk-level
  // identity of factoring x speculation is SliceFactoringTest's.
  Dataset Data = makeData(GaussTarget, 120, 87);
  RunKnobs Base;
  Base.CacheSize = 0;
  Base.SliceFactoring = false;
  SynthesisResult Plain = runWith(Data, Base);
  RunKnobs K = Base;
  K.SpeculateDepth = 2;
  K.Threads = 4;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, ComposesWithProposalRatio) {
  // The node carries the mutator's Q-ratio from expansion time; the
  // acceptance test must see exactly the value the sequential walk
  // would recompute.
  Dataset Data = makeData(GaussTarget, 120, 88);
  RunKnobs Base;
  Base.UseProposalRatio = true;
  SynthesisResult Plain = runWith(Data, Base);
  RunKnobs K = Base;
  K.SpeculateDepth = 2;
  K.Threads = 4;
  expectIdentical(Plain, runWith(Data, K));
}

TEST(SpeculationTest, SpeculationTelemetryIsPopulated) {
  Dataset Data = makeData(GaussTarget, 120, 89);
  RunKnobs K;
  K.SpeculateDepth = 3;
  K.Threads = 4;
  SynthesisResult R = runWith(Data, K);
  ASSERT_TRUE(R.Succeeded);
  // 300 iterations in depth-3 blocks.
  EXPECT_EQ(R.Stats.SpecBlocks, 100u);
  // Each block expands at least its realized path.
  EXPECT_GE(R.Stats.SpecNodes, R.Stats.SpecBlocks * 3);
  EXPECT_LE(R.Stats.SpecNodes, R.Stats.SpecBlocks * 7);
  // The realized walk consumed or cache-replayed every iteration; at
  // least some nodes must have been consumed for speculation to have
  // paid for anything.
  EXPECT_GT(R.Stats.SpecConsumed + R.Stats.CacheHits, 0u);
  // The warm counters certify the chain-lifetime cache: entries
  // surviving a block rebuild get re-hit.
  EXPECT_GT(R.Stats.ScoreCacheWarmHits, 0u);
  // Proposal vectors recycle block over block.
  EXPECT_GT(R.Stats.ProposalPoolReused, 0u);
  EXPECT_GT(R.Stats.ProposalPoolAllocated, 0u);
}

TEST(SpeculationTest, DepthZeroKeepsSpeculationTelemetryZero) {
  Dataset Data = makeData(GaussTarget, 120, 90);
  SynthesisResult R = runWith(Data, {});
  ASSERT_TRUE(R.Succeeded);
  EXPECT_EQ(R.Stats.SpecBlocks, 0u);
  EXPECT_EQ(R.Stats.SpecNodes, 0u);
  EXPECT_EQ(R.Stats.SpecConsumed, 0u);
  EXPECT_EQ(R.Stats.SpecWasted, 0u);
  EXPECT_EQ(R.Stats.ScoreCacheWarmHits, 0u);
  EXPECT_EQ(R.Stats.ScoreCacheWarmEvictions, 0u);
}

TEST(SpeculationTest, SpeculationStatsAreDeterministicInline) {
  // With no pool (inline steals only) even the waste/consumption split
  // is a pure function of the walk: two runs agree exactly.
  Dataset Data = makeData(GaussTarget, 120, 91);
  RunKnobs K;
  K.SpeculateDepth = 2;
  SynthesisResult A = runWith(Data, K);
  SynthesisResult B = runWith(Data, K);
  EXPECT_EQ(A.Stats.SpecBlocks, B.Stats.SpecBlocks);
  EXPECT_EQ(A.Stats.SpecNodes, B.Stats.SpecNodes);
  EXPECT_EQ(A.Stats.SpecConsumed, B.Stats.SpecConsumed);
  EXPECT_EQ(A.Stats.SpecWasted, B.Stats.SpecWasted);
  EXPECT_EQ(A.Stats.SpecCancelledEarly, B.Stats.SpecCancelledEarly);
  EXPECT_EQ(A.Stats.SpecPeekResolved, B.Stats.SpecPeekResolved);
  EXPECT_EQ(A.Stats.ProposalPoolReused, B.Stats.ProposalPoolReused);
  EXPECT_EQ(A.Stats.ProposalPoolAllocated, B.Stats.ProposalPoolAllocated);
  EXPECT_EQ(A.Stats.ScoreCacheWarmHits, B.Stats.ScoreCacheWarmHits);
  EXPECT_EQ(A.Stats.ScoreCacheWarmEvictions,
            B.Stats.ScoreCacheWarmEvictions);
}
