//===- tests/synth/MutateTest.cpp - Mutation operator unit tests ----------===//

#include "synth/Mutate.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "parse/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

ExprPtr parse(const std::string &Source) {
  DiagEngine Diags;
  ExprPtr E = parseExprSource(Source, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

struct MutatorHarness {
  std::vector<HoleSignature> Sigs;
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R;
  Mutator M;

  explicit MutatorHarness(std::vector<HoleSignature> SigsIn,
                          uint64_t Seed = 7)
      : Sigs(std::move(SigsIn)), R(Seed), M(Sigs, Gen, Cfg, R) {}
};

} // namespace

TEST(MutateTest, CollectTypedSlotsTracksKinds) {
  ExprPtr E = parse("ite(%0 > 1.0, Gaussian(%1, 2.0), 3.0)");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  // Nodes: ite, >, %0, 1.0, Gaussian, %1, 2.0, 3.0.
  ASSERT_EQ(Slots.size(), 8u);
  EXPECT_EQ(Slots[0].Kind, ScalarKind::Real); // ite root
  EXPECT_EQ(Slots[1].Kind, ScalarKind::Bool); // comparison
  EXPECT_EQ(Slots[2].Kind, ScalarKind::Real); // %0
  int DistParams = 0;
  for (const TypedSlot &S : Slots)
    DistParams += S.IsDistParam;
  EXPECT_EQ(DistParams, 2);
}

TEST(MutateTest, VariableSwapReplacesFormal) {
  MutatorHarness H({{0, ScalarKind::Real,
                     {ScalarKind::Real, ScalarKind::Real}}});
  ExprPtr E = parse("%0");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  ASSERT_TRUE(H.M.applyVariableSwap(Slots[0], H.Sigs[0]));
  EXPECT_EQ(cast<HoleArgExpr>(*E).getArgIndex(), 1u);
}

TEST(MutateTest, VariableSwapInapplicableWithSingleFormal) {
  MutatorHarness H({{0, ScalarKind::Real, {ScalarKind::Real}}});
  ExprPtr E = parse("%0");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  EXPECT_FALSE(H.M.applyVariableSwap(Slots[0], H.Sigs[0]));
}

TEST(MutateTest, ConstantPerturbChangesValueOnly) {
  MutatorHarness H({{0, ScalarKind::Real, {}}});
  ExprPtr E = parse("11.3");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  double Before = cast<ConstExpr>(*E).getValue();
  ASSERT_TRUE(H.M.applyConstantPerturb(Slots[0]));
  EXPECT_TRUE(isa<ConstExpr>(E.get()));
  EXPECT_NE(cast<ConstExpr>(*E).getValue(), Before);
  // Perturbation is local: sigma = 1 + 0.15*11.3 ~ 2.7.
  EXPECT_NEAR(cast<ConstExpr>(*E).getValue(), Before, 15.0);
}

TEST(MutateTest, ConstantPerturbSkipsBooleans) {
  MutatorHarness H({{0, ScalarKind::Bool, {}}});
  ExprPtr E = parse("true");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Bool, Slots);
  EXPECT_FALSE(H.M.applyConstantPerturb(Slots[0]));
}

TEST(MutateTest, ConstantPerturbRoundsIntegers) {
  MutatorHarness H({{0, ScalarKind::Int, {}}});
  ExprPtr E = parse("5");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Int, Slots);
  ASSERT_TRUE(H.M.applyConstantPerturb(Slots[0]));
  double V = cast<ConstExpr>(*E).getValue();
  EXPECT_EQ(V, std::floor(V));
}

TEST(MutateTest, OperatorSwapStaysInClass) {
  MutatorHarness H({{0, ScalarKind::Real,
                     {ScalarKind::Real, ScalarKind::Real}}});
  for (int I = 0; I < 50; ++I) {
    ExprPtr E = parse("%0 + %1");
    std::vector<TypedSlot> Slots;
    collectTypedSlots(E, ScalarKind::Real, Slots);
    ASSERT_TRUE(H.M.applyOperatorSwap(Slots[0]));
    BinaryOp Op = cast<BinaryExpr>(*E).getOp();
    // The default generator config excludes Mul, so + only swaps to -.
    EXPECT_TRUE(Op == BinaryOp::Sub);
  }
}

TEST(MutateTest, OperatorSwapOnDistributions) {
  MutatorHarness H({{0, ScalarKind::Real, {}}});
  ExprPtr E = parse("Gaussian(1.0, 2.0)");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Real, Slots);
  ASSERT_TRUE(H.M.applyOperatorSwap(Slots[0]));
  const auto &S = cast<SampleExpr>(*E);
  EXPECT_NE(S.getDist(), DistKind::Gaussian);
  EXPECT_EQ(distArity(S.getDist()), 2u);
  EXPECT_FALSE(distReturnsBool(S.getDist()));
  // Arguments survive the swap.
  EXPECT_EQ(S.getNumArgs(), 2u);
}

TEST(MutateTest, OperatorSwapInapplicableToEquality) {
  MutatorHarness H({{0, ScalarKind::Bool, {}}});
  ExprPtr E = parse("true == false");
  std::vector<TypedSlot> Slots;
  collectTypedSlots(E, ScalarKind::Bool, Slots);
  EXPECT_FALSE(H.M.applyOperatorSwap(Slots[0]));
}

TEST(MutateTest, RegenerateKeepsKindAndRespectsRestriction) {
  MutatorHarness H({{0, ScalarKind::Bool,
                     {ScalarKind::Real, ScalarKind::Real}}});
  for (int I = 0; I < 200; ++I) {
    ExprPtr E = parse("Gaussian(%0, 15.0) > Gaussian(%1, 15.0)");
    std::vector<TypedSlot> Slots;
    collectTypedSlots(E, ScalarKind::Bool, Slots);
    size_t Pick = H.R.index(Slots.size());
    if (!H.M.applyRegenerate(Slots[Pick], H.Sigs[0]))
      continue;
    EXPECT_TRUE(checkCompletion(*E, H.Sigs[0])) << toString(*E);
  }
}

TEST(MutateTest, ProposeClonesInput) {
  MutatorHarness H({{0, ScalarKind::Real, {ScalarKind::Real}}});
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0)"));
  std::string Before = toString(*Current[0]);
  for (int I = 0; I < 20; ++I)
    (void)H.M.propose(Current);
  // The current tuple is never modified in place.
  EXPECT_EQ(toString(*Current[0]), Before);
}

TEST(MutateTest, ProposeEventuallyChangesSomething) {
  MutatorHarness H({{0, ScalarKind::Real, {ScalarKind::Real}}});
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0)"));
  int Changed = 0;
  for (int I = 0; I < 50; ++I) {
    auto Proposal = H.M.propose(Current);
    Changed += !structurallyEqual(*Proposal[0], *Current[0]);
  }
  EXPECT_GT(Changed, 25);
}

TEST(MutateTest, ProposeOnMultiHoleTupleTouchesBothHoles) {
  MutatorHarness H({{0, ScalarKind::Real, {}},
                    {1, ScalarKind::Bool, {ScalarKind::Real}}});
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(0.0, 1.0)"));
  Current.push_back(parse("%0 > 0.5"));
  bool Hole0Changed = false, Hole1Changed = false;
  for (int I = 0; I < 200; ++I) {
    auto Proposal = H.M.propose(Current);
    Hole0Changed |= !structurallyEqual(*Proposal[0], *Current[0]);
    Hole1Changed |= !structurallyEqual(*Proposal[1], *Current[1]);
  }
  EXPECT_TRUE(Hole0Changed);
  EXPECT_TRUE(Hole1Changed);
}

TEST(MutateTest, MutationIsDeterministicUnderSeed) {
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R1(5), R2(5);
  Mutator M1(Sigs, Gen, Cfg, R1), M2(Sigs, Gen, Cfg, R2);
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0) + 1.0"));
  for (int I = 0; I < 30; ++I) {
    auto P1 = M1.propose(Current);
    auto P2 = M2.propose(Current);
    EXPECT_TRUE(structurallyEqual(*P1[0], *P2[0]));
  }
}

TEST(MutateTest, KeyedProposeIsPureInEngineState) {
  // The speculation contract: propose(state, streamSeed) is a pure
  // function of its arguments.  Scramble one mutator's engine arbitrarily
  // between keyed calls — the proposals must not notice.
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R1(5), R2(777); // Different engine seeds on purpose.
  Mutator M1(Sigs, Gen, Cfg, R1), M2(Sigs, Gen, Cfg, R2);
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0) + 1.0"));
  for (uint64_t I = 0; I < 30; ++I) {
    uint64_t Key = deriveStreamSeed(42, 0x70726f706f7365ULL, I);
    auto P1 = M1.propose(Current, Key);
    for (int J = 0; J < int(I % 4); ++J)
      R2.uniform(); // Perturb M2's engine position.
    auto P2 = M2.propose(Current, Key);
    EXPECT_TRUE(structurallyEqual(*P1[0], *P2[0])) << "iteration " << I;
    EXPECT_EQ(M1.lastProposalLogQRatio(), M2.lastProposalLogQRatio());
    EXPECT_EQ(M1.lastMutationOps(), M2.lastMutationOps());
  }
}

TEST(MutateTest, KeyedProposeMatchesReseededPlainPropose) {
  // The keyed overload is exactly "seed, then propose": the sequential
  // walk and the speculation tree draw from the same distribution.
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R1(1), R2(1);
  Mutator Keyed(Sigs, Gen, Cfg, R1), Plain(Sigs, Gen, Cfg, R2);
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0)"));
  for (uint64_t I = 0; I < 20; ++I) {
    uint64_t Key = deriveStreamSeed(9, 0xBEEF, I);
    auto PK = Keyed.propose(Current, Key);
    R2.seed(Key);
    auto PP = Plain.propose(Current);
    EXPECT_TRUE(structurallyEqual(*PK[0], *PP[0])) << "iteration " << I;
  }
}

TEST(MutateTest, ProposalPoolRecyclesVectors) {
  ProposalPool Pool;
  auto V1 = Pool.acquire();
  EXPECT_EQ(Pool.allocated(), 1u);
  EXPECT_EQ(Pool.reused(), 0u);
  V1.reserve(8);
  Pool.release(std::move(V1));
  auto V2 = Pool.acquire();
  EXPECT_EQ(Pool.reused(), 1u);
  EXPECT_EQ(Pool.allocated(), 1u);
  EXPECT_TRUE(V2.empty());         // Released contents are destroyed...
  EXPECT_GE(V2.capacity(), 8u);    // ...but the capacity survives.
}

TEST(MutateTest, ProposalPoolFeedsKeyedPropose) {
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(3);
  Mutator M(Sigs, Gen, Cfg, R);
  ProposalPool Pool;
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0)"));
  for (uint64_t I = 0; I < 10; ++I) {
    auto P = M.propose(Current, deriveStreamSeed(4, 2, I), &Pool);
    ASSERT_EQ(P.size(), 1u);
    Pool.release(std::move(P));
  }
  // First iteration allocates, the rest recycle the same vector.
  EXPECT_EQ(Pool.allocated(), 1u);
  EXPECT_EQ(Pool.reused(), 9u);
}

TEST(MutateTest, ProposalPoolResultsMatchUnpooled) {
  std::vector<HoleSignature> Sigs = {{0, ScalarKind::Real,
                                      {ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R1(6), R2(6);
  Mutator M1(Sigs, Gen, Cfg, R1), M2(Sigs, Gen, Cfg, R2);
  ProposalPool Pool;
  std::vector<ExprPtr> Current;
  Current.push_back(parse("Gaussian(%0, 15.0) + 1.0"));
  for (uint64_t I = 0; I < 20; ++I) {
    uint64_t Key = deriveStreamSeed(8, 1, I);
    auto Pooled = M1.propose(Current, Key, &Pool);
    auto Fresh = M2.propose(Current, Key);
    EXPECT_TRUE(structurallyEqual(*Pooled[0], *Fresh[0]));
    Pool.release(std::move(Pooled));
  }
}
