//===- tests/synth/BudgetTest.cpp - Budget / cancellation unit tests ------===//
//
// Wall-clock deadlines, the proposals/s floor and cooperative
// cancellation all stop the walk at block boundaries with a valid
// partial result (DESIGN.md §15).  The tracker itself is pure logic
// over injected clocks, so its precedence and warmup rules are testable
// without running synthesis.
//
//===----------------------------------------------------------------------===//

#include "synth/Budget.h"

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <csignal>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

SynthesisResult runWithConfig(const Dataset &Data, SynthesisConfig Config) {
  auto Sketch = parseP(GaussSketch);
  Synthesizer Synth(*Sketch, {}, Data, Config);
  EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  return Synth.run();
}

} // namespace

//===----------------------------------------------------------------------===//
// Policy plumbing.
//===----------------------------------------------------------------------===//

TEST(BudgetTest, PolicyActiveOnlyWithALimit) {
  BudgetPolicy P;
  EXPECT_FALSE(P.active());
  P.DeadlineSeconds = 5;
  EXPECT_TRUE(P.active());
  P = BudgetPolicy();
  P.MinProposalsPerSec = 100;
  EXPECT_TRUE(P.active());
}

TEST(BudgetTest, StopReasonNamesAreStable) {
  // Scripts key off these strings in the CLI's early-stop note.
  EXPECT_STREQ(stopReasonName(StopReason::None), "none");
  EXPECT_STREQ(stopReasonName(StopReason::Cancelled), "cancelled");
  EXPECT_STREQ(stopReasonName(StopReason::Deadline), "deadline");
  EXPECT_STREQ(stopReasonName(StopReason::ThroughputFloor),
               "throughput_floor");
}

TEST(BudgetTest, CancelTokenIsSticky) {
  CancelToken T;
  EXPECT_FALSE(T.cancelled());
  T.cancel();
  EXPECT_TRUE(T.cancelled());
  T.cancel();
  EXPECT_TRUE(T.cancelled());
}

TEST(BudgetTest, TrackerPrecedenceAndWarmup) {
  using Clock = BudgetTracker::Clock;
  const auto LongAgo = Clock::now() - std::chrono::seconds(100);

  // Cancellation outranks every budget verdict.
  CancelToken Token;
  Token.cancel();
  BudgetPolicy Both;
  Both.DeadlineSeconds = 1; // Exceeded, but cancellation wins.
  EXPECT_EQ(BudgetTracker(Both, LongAgo, &Token).check(0),
            StopReason::Cancelled);

  // Deadline outranks the throughput floor.
  BudgetPolicy DeadlinePlusFloor;
  DeadlinePlusFloor.DeadlineSeconds = 1;
  DeadlinePlusFloor.MinProposalsPerSec = 1e12;
  EXPECT_EQ(BudgetTracker(DeadlinePlusFloor, LongAgo, nullptr).check(0),
            StopReason::Deadline);

  // The floor only speaks after warmup...
  BudgetPolicy Floor;
  Floor.MinProposalsPerSec = 1e12;
  Floor.ThroughputWarmupSeconds = 1000;
  EXPECT_EQ(BudgetTracker(Floor, LongAgo, nullptr).check(0),
            StopReason::None);
  // ...and judges this invocation's proposals over elapsed time.
  Floor.ThroughputWarmupSeconds = 1;
  EXPECT_EQ(BudgetTracker(Floor, LongAgo, nullptr).check(10),
            StopReason::ThroughputFloor);
  Floor.MinProposalsPerSec = 1e-6;
  EXPECT_EQ(BudgetTracker(Floor, LongAgo, nullptr).check(10),
            StopReason::None);

  // No policy, no token: always keep going.
  EXPECT_EQ(BudgetTracker(BudgetPolicy(), LongAgo, nullptr).check(0),
            StopReason::None);
}

//===----------------------------------------------------------------------===//
// End-to-end stops.
//===----------------------------------------------------------------------===//

TEST(BudgetTest, PreCancelledRunStopsImmediatelyWithPartialResult) {
  Dataset Data = makeData(GaussTarget, 120, 51);
  SynthesisConfig Config;
  Config.Iterations = 50000;
  Config.Chains = 2;
  Config.Seed = 7;
  auto Token = std::make_shared<CancelToken>();
  Token->cancel();
  Config.Cancel = Token;

  SynthesisResult R = runWithConfig(Data, Config);
  EXPECT_EQ(R.Stop, StopReason::Cancelled);
  EXPECT_TRUE(R.interrupted());
  ASSERT_EQ(R.ChainIterations.size(), 2u);
  for (unsigned Iter : R.ChainIterations)
    EXPECT_EQ(Iter, 0u);
  // Init already found a valid tuple, so even an instantly-cancelled
  // run carries a usable (if weak) partial result.
  EXPECT_TRUE(R.Succeeded);
  ASSERT_EQ(R.BestCompletions.size(), 1u);
}

TEST(BudgetTest, TinyDeadlineStopsEarly) {
  Dataset Data = makeData(GaussTarget, 120, 52);
  SynthesisConfig Config;
  Config.Iterations = 2000000; // Far beyond what microseconds allow.
  Config.Chains = 2;
  Config.Seed = 7;
  Config.Budget.DeadlineSeconds = 1e-6;

  SynthesisResult R = runWithConfig(Data, Config);
  EXPECT_EQ(R.Stop, StopReason::Deadline);
  EXPECT_FALSE(R.interrupted()); // Budget stops are not interruptions.
  ASSERT_EQ(R.ChainIterations.size(), 2u);
  for (unsigned Iter : R.ChainIterations)
    EXPECT_LT(Iter, Config.Iterations);
  EXPECT_TRUE(R.Succeeded);
}

TEST(BudgetTest, UnreachableThroughputFloorStopsAfterWarmup) {
  Dataset Data = makeData(GaussTarget, 120, 53);
  SynthesisConfig Config;
  Config.Iterations = 2000000;
  Config.Chains = 1;
  Config.Seed = 7;
  Config.Budget.MinProposalsPerSec = 1e15; // No machine sustains this.
  Config.Budget.ThroughputWarmupSeconds = 0.02;

  SynthesisResult R = runWithConfig(Data, Config);
  EXPECT_EQ(R.Stop, StopReason::ThroughputFloor);
  EXPECT_FALSE(R.interrupted());
  ASSERT_EQ(R.ChainIterations.size(), 1u);
  EXPECT_LT(R.ChainIterations[0], Config.Iterations);
}

TEST(BudgetTest, GenerousBudgetDoesNotPerturbTheRun) {
  // An unhit budget must be result-neutral: same walk, same best.
  Dataset Data = makeData(GaussTarget, 120, 54);
  SynthesisConfig Plain;
  Plain.Iterations = 300;
  Plain.Chains = 2;
  Plain.Seed = 11;
  SynthesisResult A = runWithConfig(Data, Plain);

  SynthesisConfig Budgeted = Plain;
  Budgeted.Budget.DeadlineSeconds = 3600;
  Budgeted.Budget.MinProposalsPerSec = 1e-9;
  SynthesisResult B = runWithConfig(Data, Budgeted);

  EXPECT_EQ(B.Stop, StopReason::None);
  ASSERT_TRUE(A.Succeeded && B.Succeeded);
  EXPECT_EQ(A.BestLogLikelihood, B.BestLogLikelihood);
  EXPECT_EQ(A.Stats.Proposed, B.Stats.Proposed);
  EXPECT_EQ(A.Stats.Accepted, B.Stats.Accepted);
  EXPECT_EQ(toString(*A.BestCompletions[0]), toString(*B.BestCompletions[0]));
}

TEST(BudgetTest, MidRunCancellationStopsAllChains) {
  Dataset Data = makeData(GaussTarget, 120, 55);
  SynthesisConfig Config;
  Config.Iterations = 2000000;
  Config.Chains = 2;
  Config.Threads = 2;
  Config.Seed = 7;
  auto Token = std::make_shared<CancelToken>();
  Config.Cancel = Token;
  Config.ProgressEvery = 50;
  Config.Progress = [Token](const SynthesisConfig::ProgressUpdate &) {
    Token->cancel();
  };

  SynthesisResult R = runWithConfig(Data, Config);
  EXPECT_EQ(R.Stop, StopReason::Cancelled);
  EXPECT_TRUE(R.interrupted());
  for (unsigned Iter : R.ChainIterations)
    EXPECT_LT(Iter, Config.Iterations);
}

//===----------------------------------------------------------------------===//
// Signal routing.
//===----------------------------------------------------------------------===//

TEST(BudgetTest, SignalScopeRoutesSigtermToToken) {
  auto Token = std::make_shared<CancelToken>();
  {
    SignalCancellationScope Scope(Token);
    EXPECT_FALSE(Token->cancelled());
    std::raise(SIGTERM);
    EXPECT_TRUE(Token->cancelled());
  }
  // Outside the scope the previous disposition is restored; the token
  // stays sticky.
  EXPECT_TRUE(Token->cancelled());
}

TEST(BudgetTest, SignalScopeRoutesSigintToFreshToken) {
  auto Token = std::make_shared<CancelToken>();
  {
    SignalCancellationScope Scope(Token);
    std::raise(SIGINT);
    EXPECT_TRUE(Token->cancelled());
  }
}

//===----------------------------------------------------------------------===//
// Configuration validation (the diagnostics the Session surfaces).
//===----------------------------------------------------------------------===//

TEST(BudgetTest, ValidateFlagsBadBudgets) {
  SynthesisConfig Config;
  Config.Budget.DeadlineSeconds = -1;
  bool SawDeadline = false;
  for (const ConfigDiag &D : Config.validate())
    if (D.Sev == ConfigDiag::Severity::Error &&
        D.Message.find("--deadline-s") != std::string::npos)
      SawDeadline = true;
  EXPECT_TRUE(SawDeadline);
}

TEST(BudgetTest, ValidateFlagsCheckpointCadenceWithoutPath) {
  SynthesisConfig Config;
  Config.CheckpointEvery = 100;
  bool Saw = false;
  for (const ConfigDiag &D : Config.validate())
    if (D.Sev == ConfigDiag::Severity::Error &&
        D.Message.find("--checkpoint-every requires --checkpoint-out") !=
            std::string::npos)
      Saw = true;
  EXPECT_TRUE(Saw);
}

TEST(BudgetTest, ValidateAcceptsDefaultsSilently) {
  SynthesisConfig Config;
  EXPECT_TRUE(Config.validate().empty());
}

TEST(BudgetTest, ValidateWarnsOnOversubscribedSpeculation) {
  SynthesisConfig Config;
  Config.SpeculateDepth = 3;
  Config.Threads = 2; // Both workers consumed by the two chains.
  Config.Chains = 2;
  bool SawWarning = false;
  for (const ConfigDiag &D : Config.validate())
    if (D.Sev == ConfigDiag::Severity::Warning)
      SawWarning = true;
  EXPECT_TRUE(SawWarning);
}
