//===- tests/synth/ParallelDeterminismTest.cpp - Threads knob neutrality --===//
//
// The Threads knob parallelizes the independent MH restarts; it must
// never change what the synthesizer computes.  Chains derive their RNG
// streams from Seed + chain and are merged in chain order, so the same
// seed produces identical results for any thread count.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

SynthesisResult runWith(const Dataset &Data, unsigned Threads,
                        size_t CacheSize, unsigned RowThreads = 1) {
  auto Sketch = parseP(GaussSketch);
  SynthesisConfig Config;
  Config.Iterations = 400;
  Config.Chains = 4;
  Config.Seed = 23;
  Config.Threads = Threads;
  Config.RowThreads = RowThreads;
  Config.ScoreCacheSize = CacheSize;
  Config.TrackBestTrace = true;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  return Synth.run();
}

void expectIdentical(const SynthesisResult &A, const SynthesisResult &B) {
  ASSERT_TRUE(A.Succeeded && B.Succeeded);
  // Bitwise: both runs walked the exact same chains.
  EXPECT_EQ(A.BestLogLikelihood, B.BestLogLikelihood);
  ASSERT_EQ(A.BestCompletions.size(), B.BestCompletions.size());
  for (size_t I = 0; I != A.BestCompletions.size(); ++I) {
    EXPECT_TRUE(
        structurallyEqual(*A.BestCompletions[I], *B.BestCompletions[I]));
    EXPECT_EQ(toString(*A.BestCompletions[I]),
              toString(*B.BestCompletions[I]));
  }
  EXPECT_EQ(A.Stats.Proposed, B.Stats.Proposed);
  EXPECT_EQ(A.Stats.Accepted, B.Stats.Accepted);
  EXPECT_EQ(A.Stats.Invalid, B.Stats.Invalid);
  EXPECT_EQ(A.Stats.Scored, B.Stats.Scored);
  EXPECT_EQ(A.Stats.CacheHits, B.Stats.CacheHits);
  EXPECT_EQ(A.Stats.CacheMisses, B.Stats.CacheMisses);
  ASSERT_EQ(A.BestTrace.size(), B.BestTrace.size());
  for (size_t I = 0; I != A.BestTrace.size(); ++I)
    EXPECT_EQ(A.BestTrace[I], B.BestTrace[I]) << "trace index " << I;
}

} // namespace

TEST(ParallelDeterminismTest, FourThreadsMatchSerial) {
  Dataset Data = makeData(GaussTarget, 120, 41);
  SynthesisResult Serial = runWith(Data, 1, 4096);
  SynthesisResult Parallel = runWith(Data, 4, 4096);
  expectIdentical(Serial, Parallel);
}

TEST(ParallelDeterminismTest, HardwareConcurrencyMatchesSerial) {
  Dataset Data = makeData(GaussTarget, 120, 42);
  SynthesisResult Serial = runWith(Data, 1, 4096);
  SynthesisResult Auto = runWith(Data, 0, 4096);
  expectIdentical(Serial, Auto);
}

TEST(ParallelDeterminismTest, ScoreCacheIsResultNeutral) {
  // Scoring is deterministic, so memoization must change cost only:
  // same walk, same best, with and without the cache.
  Dataset Data = makeData(GaussTarget, 120, 43);
  SynthesisResult Cached = runWith(Data, 1, 4096);
  SynthesisResult Uncached = runWith(Data, 1, 0);
  ASSERT_TRUE(Cached.Succeeded && Uncached.Succeeded);
  EXPECT_EQ(Cached.BestLogLikelihood, Uncached.BestLogLikelihood);
  EXPECT_EQ(toString(*Cached.BestCompletions[0]),
            toString(*Uncached.BestCompletions[0]));
  EXPECT_EQ(Cached.Stats.Proposed, Uncached.Stats.Proposed);
  EXPECT_EQ(Cached.Stats.Accepted, Uncached.Stats.Accepted);
  // Every probe either hits or falls through to a real scoring; the
  // uncached run scores all of them.
  EXPECT_EQ(Cached.Stats.Scored + Cached.Stats.CacheHits,
            Uncached.Stats.Scored);
  EXPECT_EQ(Uncached.Stats.CacheHits, 0u);
  EXPECT_GT(Cached.Stats.CacheHits, 0u);
}

TEST(ParallelDeterminismTest, RowParallelMatchesSerialRows) {
  // `--row-threads` farms the 512-row blocks of each likelihood
  // evaluation to a worker pool; the fixed-shape partial-sum reduction
  // makes every score — and therefore the whole walk — bit-identical
  // to the serial evaluator.  Needs a dataset spanning several blocks
  // for the row pool to engage at all.
  Dataset Data = makeData(GaussTarget, 1400, 45);
  SynthesisResult Serial = runWith(Data, 1, 4096, /*RowThreads=*/1);
  SynthesisResult RowPar = runWith(Data, 1, 4096, /*RowThreads=*/4);
  expectIdentical(Serial, RowPar);
  // Same data volume scored along both paths; only the schedule moved.
  EXPECT_EQ(Serial.Stats.RowsScored, RowPar.Stats.RowsScored);
  EXPECT_GT(RowPar.Stats.RowsScored, 0u);
}

TEST(ParallelDeterminismTest, RowParallelComposesWithChainThreads) {
  // Chain workers and row workers share nothing but the row pool (each
  // chain waits on its own job group), so stacking the two knobs must
  // still reproduce the serial run exactly.
  Dataset Data = makeData(GaussTarget, 1400, 46);
  SynthesisResult Serial = runWith(Data, 1, 4096, /*RowThreads=*/1);
  SynthesisResult Both = runWith(Data, 2, 4096, /*RowThreads=*/2);
  expectIdentical(Serial, Both);
}

TEST(ParallelDeterminismTest, RowParallelSmallDatasetFallsBackToSerial) {
  // Below one row block the pool is never created; the knob is inert,
  // not harmful.
  Dataset Data = makeData(GaussTarget, 120, 47);
  SynthesisResult Serial = runWith(Data, 1, 4096, /*RowThreads=*/1);
  SynthesisResult RowPar = runWith(Data, 1, 4096, /*RowThreads=*/8);
  expectIdentical(Serial, RowPar);
}

TEST(ParallelDeterminismTest, MultiThreadedTraceStaysMonotone) {
  Dataset Data = makeData(GaussTarget, 120, 44);
  SynthesisResult Result = runWith(Data, 4, 4096);
  ASSERT_TRUE(Result.Succeeded);
  ASSERT_EQ(Result.BestTrace.size(), size_t(400) * 4);
  for (size_t I = 1; I != Result.BestTrace.size(); ++I) {
    // Chain boundaries may only raise the floor (prefix-best merge);
    // within a chain the trace is monotone by construction.
    if (I % 400 != 0) {
      EXPECT_GE(Result.BestTrace[I], Result.BestTrace[I - 1]);
    }
  }
  EXPECT_EQ(Result.BestTrace.back(), Result.BestLogLikelihood);
}
