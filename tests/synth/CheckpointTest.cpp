//===- tests/synth/CheckpointTest.cpp - Durable snapshot / resume tests ---===//
//
// The durability contract (DESIGN.md §15): a run interrupted at any
// block boundary and resumed from its snapshot must replay the exact
// walk an uninterrupted run takes — byte-identical best results, walk
// counters and per-iteration trace — under every thread / speculation
// configuration.  The snapshot format itself must round-trip exactly
// and refuse corrupted, truncated, version-skewed or mismatched files.
//
//===----------------------------------------------------------------------===//

#include "synth/Checkpoint.h"

#include "ast/ASTPrinter.h"
#include "ast/ASTUtil.h"
#include "interp/Interp.h"
#include "obs/Trace.h"
#include "parse/Parser.h"
#include "synth/Budget.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

SynthesisConfig baseConfig(unsigned Threads, unsigned SpeculateDepth) {
  SynthesisConfig Config;
  Config.Iterations = 160;
  Config.Chains = 3;
  Config.Seed = 23;
  Config.Threads = Threads;
  Config.SpeculateDepth = SpeculateDepth;
  Config.ScoreCacheSize = 4096;
  Config.CollectTrace = true;
  return Config;
}

SynthesisResult runConfig(const Program &Sketch, const Dataset &Data,
                          const SynthesisConfig &Config) {
  Synthesizer Synth(Sketch, {}, Data, Config);
  EXPECT_TRUE(Synth.valid()) << Synth.diagnostics().str();
  return Synth.run();
}

/// The events of one chain rendered as JSONL lines (the comparison
/// currency: the trace is the full per-iteration history of the walk).
std::vector<std::string> chainLines(const SynthesisResult &R,
                                    unsigned Chain) {
  std::vector<std::string> Lines;
  for (const TraceEvent &E : R.TraceEvents)
    if (E.Chain == Chain)
      Lines.push_back(traceEventLine(E));
  return Lines;
}

/// Asserts partial-then-resumed equals the uninterrupted run: per-chain
/// trace concatenation, then bitwise best / walk-counter equality.
void expectSeamlessResume(const SynthesisResult &Full,
                          const SynthesisResult &Partial,
                          const SynthesisResult &Resumed, unsigned Chains) {
  for (unsigned C = 0; C != Chains; ++C) {
    SCOPED_TRACE("chain " + std::to_string(C));
    std::vector<std::string> Stitched = chainLines(Partial, C);
    std::vector<std::string> Tail = chainLines(Resumed, C);
    Stitched.insert(Stitched.end(), Tail.begin(), Tail.end());
    std::vector<std::string> Reference = chainLines(Full, C);
    ASSERT_EQ(Stitched.size(), Reference.size());
    for (size_t I = 0; I != Reference.size(); ++I)
      EXPECT_EQ(Stitched[I], Reference[I]) << "iteration index " << I;
  }
  ASSERT_TRUE(Full.Succeeded && Resumed.Succeeded);
  EXPECT_EQ(Full.BestLogLikelihood, Resumed.BestLogLikelihood);
  ASSERT_EQ(Full.BestCompletions.size(), Resumed.BestCompletions.size());
  for (size_t I = 0; I != Full.BestCompletions.size(); ++I)
    EXPECT_EQ(toString(*Full.BestCompletions[I]),
              toString(*Resumed.BestCompletions[I]));
  // Walk-side counters accumulate across the interruption exactly.
  EXPECT_EQ(Full.Stats.Proposed, Resumed.Stats.Proposed);
  EXPECT_EQ(Full.Stats.Accepted, Resumed.Stats.Accepted);
  EXPECT_EQ(Full.Stats.Invalid, Resumed.Stats.Invalid);
  EXPECT_EQ(Full.Stats.Scored, Resumed.Stats.Scored);
  EXPECT_EQ(Full.Stats.CacheHits, Resumed.Stats.CacheHits);
  EXPECT_EQ(Full.Stats.CacheMisses, Resumed.Stats.CacheMisses);
}

std::vector<uint8_t> readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

bool fileExists(const std::string &Path) {
  return std::ifstream(Path).good();
}

} // namespace

//===----------------------------------------------------------------------===//
// Resume equivalence: the tentpole invariant.
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, ResumeIsByteIdenticalAcrossConfigurations) {
  Dataset Data = makeData(GaussTarget, 120, 41);
  auto Sketch = parseP(GaussSketch);
  SynthesisResult Full = runConfig(*Sketch, Data, baseConfig(1, 0));

  struct Case {
    unsigned Threads, SpeculateDepth, CancelAt;
  };
  const Case Matrix[] = {
      {1, 0, 1},  {1, 0, 80},  {4, 0, 1},  {4, 0, 80},
      {1, 3, 1},  {1, 3, 80},  {4, 3, 1},  {4, 3, 80},
  };
  for (const Case &C : Matrix) {
    SCOPED_TRACE("threads=" + std::to_string(C.Threads) +
                 " spec=" + std::to_string(C.SpeculateDepth) +
                 " cancel@" + std::to_string(C.CancelAt));
    std::string Ckpt = ::testing::TempDir() + "/resume_matrix.ckpt";
    std::remove(Ckpt.c_str());

    // Partial run: a progress callback cancels the shared token once
    // any chain passes CancelAt iterations; every chain then stops at
    // its next block boundary, wherever that happens to fall.
    SynthesisConfig PartialCfg = baseConfig(C.Threads, C.SpeculateDepth);
    PartialCfg.CheckpointPath = Ckpt;
    auto Token = std::make_shared<CancelToken>();
    PartialCfg.Cancel = Token;
    PartialCfg.ProgressEvery = C.CancelAt;
    PartialCfg.Progress = [Token](const SynthesisConfig::ProgressUpdate &) {
      Token->cancel();
    };
    auto SketchP = parseP(GaussSketch);
    SynthesisResult Partial = runConfig(*SketchP, Data, PartialCfg);
    ASSERT_TRUE(Partial.CheckpointError.empty()) << Partial.CheckpointError;
    EXPECT_EQ(Partial.Stop, StopReason::Cancelled);
    EXPECT_TRUE(Partial.interrupted());
    ASSERT_EQ(Partial.ChainIterations.size(), 3u);

    auto CP = std::make_shared<RunCheckpoint>();
    std::string Err;
    ASSERT_TRUE(readCheckpointFile(Ckpt, *CP, Err)) << Err;
    ASSERT_EQ(CP->ChainStates.size(), 3u);
    for (unsigned Chain = 0; Chain != 3; ++Chain)
      EXPECT_EQ(CP->ChainStates[Chain].NextIter,
                Partial.ChainIterations[Chain]);

    SynthesisConfig ResumeCfg = baseConfig(C.Threads, C.SpeculateDepth);
    ResumeCfg.Resume = CP;
    SynthesisResult Resumed = runConfig(*SketchP, Data, ResumeCfg);
    ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
    EXPECT_EQ(Resumed.Stop, StopReason::None);
    expectSeamlessResume(Full, Partial, Resumed, 3);
  }
}

TEST(CheckpointTest, ResumeFromCompletedRunIsIdentity) {
  // The final snapshot of a finished run has every chain at the
  // iteration target; resuming it performs zero iterations and
  // reproduces the same best result.
  Dataset Data = makeData(GaussTarget, 120, 41);
  auto Sketch = parseP(GaussSketch);
  std::string Ckpt = ::testing::TempDir() + "/resume_done.ckpt";
  std::remove(Ckpt.c_str());

  SynthesisConfig Cfg = baseConfig(1, 0);
  Cfg.CheckpointPath = Ckpt;
  SynthesisResult Full = runConfig(*Sketch, Data, Cfg);
  ASSERT_TRUE(Full.Succeeded);
  ASSERT_TRUE(Full.CheckpointError.empty()) << Full.CheckpointError;

  auto CP = std::make_shared<RunCheckpoint>();
  std::string Err;
  ASSERT_TRUE(readCheckpointFile(Ckpt, *CP, Err)) << Err;
  for (const ChainCheckpoint &Chain : CP->ChainStates)
    EXPECT_EQ(Chain.NextIter, 160u);

  SynthesisConfig ResumeCfg = baseConfig(1, 0);
  ResumeCfg.Resume = CP;
  SynthesisResult Resumed = runConfig(*Sketch, Data, ResumeCfg);
  ASSERT_TRUE(Resumed.Error.empty()) << Resumed.Error;
  EXPECT_TRUE(Resumed.TraceEvents.empty());
  EXPECT_EQ(Full.BestLogLikelihood, Resumed.BestLogLikelihood);
  EXPECT_EQ(Full.Stats.Proposed, Resumed.Stats.Proposed);
  EXPECT_EQ(toString(*Full.BestCompletions[0]),
            toString(*Resumed.BestCompletions[0]));
}

//===----------------------------------------------------------------------===//
// Identity checks: a snapshot only resumes the run it came from.
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, ResumeRefusesMismatchedRun) {
  Dataset Data = makeData(GaussTarget, 120, 41);
  auto Sketch = parseP(GaussSketch);
  std::string Ckpt = ::testing::TempDir() + "/resume_mismatch.ckpt";
  std::remove(Ckpt.c_str());

  SynthesisConfig Cfg = baseConfig(1, 0);
  Cfg.CheckpointPath = Ckpt;
  runConfig(*Sketch, Data, Cfg);

  auto CP = std::make_shared<RunCheckpoint>();
  std::string Err;
  ASSERT_TRUE(readCheckpointFile(Ckpt, *CP, Err)) << Err;

  auto ExpectRefused = [&](const SynthesisConfig &Bad,
                           const std::string &Wants) {
    SynthesisResult R = runConfig(*Sketch, Data, Bad);
    EXPECT_NE(R.Error.find("checkpoint does not match this run"),
              std::string::npos)
        << R.Error;
    EXPECT_NE(R.Error.find(Wants), std::string::npos) << R.Error;
  };

  SynthesisConfig BadSeed = baseConfig(1, 0);
  BadSeed.Resume = CP;
  BadSeed.Seed = 99;
  ExpectRefused(BadSeed, "seed");

  SynthesisConfig BadIters = baseConfig(1, 0);
  BadIters.Resume = CP;
  BadIters.Iterations = 500;
  ExpectRefused(BadIters, "iterations");

  SynthesisConfig BadWalk = baseConfig(1, 0);
  BadWalk.Resume = CP;
  BadWalk.Mut.GeomP = 0.31;
  ExpectRefused(BadWalk, "walk configuration");

  // Threads and speculation are walk-neutral, so changing them must
  // NOT refuse the resume (covered positively by the matrix test).
  SynthesisConfig OkThreads = baseConfig(4, 3);
  OkThreads.Resume = std::make_shared<RunCheckpoint>(CP->clone());
  SynthesisResult R = runConfig(*Sketch, Data, OkThreads);
  EXPECT_TRUE(R.Error.empty()) << R.Error;
}

//===----------------------------------------------------------------------===//
// Format: round-trips, corruption rejection, rotation.
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, ExprSerializationRoundTripsEveryKind) {
  // One tree touching all nine node kinds.
  std::vector<ExprPtr> SampleArgs;
  SampleArgs.push_back(std::make_unique<HoleArgExpr>(0, ScalarKind::Real));
  SampleArgs.push_back(ConstExpr::real(2.5));
  std::vector<ExprPtr> HoleArgs;
  HoleArgs.push_back(std::make_unique<VarExpr>("v"));
  ExprPtr Tree = std::make_unique<IteExpr>(
      std::make_unique<BinaryExpr>(
          BinaryOp::Lt,
          std::make_unique<IndexExpr>("xs", ConstExpr::integer(3)),
          ConstExpr::real(1.5)),
      std::make_unique<SampleExpr>(DistKind::Gaussian,
                                   std::move(SampleArgs)),
      std::make_unique<UnaryExpr>(
          UnaryOp::Neg,
          std::make_unique<HoleExpr>(2, std::move(HoleArgs))));

  std::vector<uint8_t> Bytes;
  serializeExpr(Bytes, *Tree);
  const uint8_t *P = Bytes.data();
  ExprPtr Back = deserializeExpr(&P, Bytes.data() + Bytes.size());
  ASSERT_TRUE(Back);
  EXPECT_EQ(P, Bytes.data() + Bytes.size());
  EXPECT_TRUE(structurallyEqual(*Tree, *Back));
  EXPECT_EQ(toString(*Tree), toString(*Back));

  // Truncated input must fail cleanly, not crash or over-read.
  for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
    const uint8_t *Q = Bytes.data();
    EXPECT_EQ(deserializeExpr(&Q, Bytes.data() + Cut), nullptr)
        << "cut at " << Cut;
  }
}

TEST(CheckpointTest, SnapshotRejectsCorruption) {
  Dataset Data = makeData(GaussTarget, 120, 41);
  auto Sketch = parseP(GaussSketch);
  std::string Ckpt = ::testing::TempDir() + "/corrupt.ckpt";
  std::remove(Ckpt.c_str());
  SynthesisConfig Cfg = baseConfig(1, 0);
  Cfg.CheckpointPath = Ckpt;
  runConfig(*Sketch, Data, Cfg);

  std::vector<uint8_t> Good = readAll(Ckpt);
  ASSERT_GT(Good.size(), 32u);
  RunCheckpoint CP;
  std::string Err;
  ASSERT_TRUE(parseCheckpoint(Good, CP, Err)) << Err;
  EXPECT_EQ(CP.Chains, 3u);
  EXPECT_EQ(CP.IterationTarget, 160u);

  // Payload byte flip -> CRC.
  std::vector<uint8_t> Flipped = Good;
  Flipped[Flipped.size() - 5] ^= 0x40;
  EXPECT_FALSE(parseCheckpoint(Flipped, CP, Err));
  EXPECT_NE(Err.find("CRC mismatch"), std::string::npos) << Err;

  // Truncation.
  std::vector<uint8_t> Short(Good.begin(), Good.end() - 7);
  EXPECT_FALSE(parseCheckpoint(Short, CP, Err));
  EXPECT_NE(Err.find("truncated"), std::string::npos) << Err;
  std::vector<uint8_t> Tiny(Good.begin(), Good.begin() + 10);
  EXPECT_FALSE(parseCheckpoint(Tiny, CP, Err));
  EXPECT_NE(Err.find("truncated"), std::string::npos) << Err;

  // Version skew (version is the u32 after the 8-byte magic).
  std::vector<uint8_t> Skewed = Good;
  Skewed[8] = uint8_t(CheckpointVersion + 1);
  EXPECT_FALSE(parseCheckpoint(Skewed, CP, Err));
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;

  // Wrong magic.
  std::vector<uint8_t> Alien = Good;
  Alien[0] = 'X';
  EXPECT_FALSE(parseCheckpoint(Alien, CP, Err));
  EXPECT_NE(Err.find("bad magic"), std::string::npos) << Err;

  // Missing file.
  EXPECT_FALSE(readCheckpointFile(Ckpt + ".nope", CP, Err));
  EXPECT_NE(Err.find("cannot open"), std::string::npos) << Err;
}

TEST(CheckpointTest, SerializeParseRoundTripIsExact) {
  RunCheckpoint CP;
  CP.Seed = 0xDEADBEEFCAFE1234ull;
  CP.Chains = 2;
  CP.IterationTarget = 1000;
  CP.NumHoles = 1;
  CP.SketchHash = 11;
  CP.DatasetFingerprint = 22;
  CP.WalkFingerprint = 33;
  CP.ChainStates.resize(2);
  CP.ChainStates[0].ChainIndex = 0;
  CP.ChainStates[0].NextIter = 400;
  CP.ChainStates[0].Initialized = true;
  CP.ChainStates[0].CurrentLL = -12.5;
  CP.ChainStates[0].BestLL = -10.25;
  CP.ChainStates[0].Current.push_back(ConstExpr::real(6.75));
  CP.ChainStates[0].Best.push_back(ConstExpr::real(7.0));
  CP.ChainStates[0].Stats.Proposed = 400;
  CP.ChainStates[0].Stats.Accepted = 123;
  CP.ChainStates[0].Cache.Epoch = 4;
  CP.ChainStates[0].Cache.Entries.push_back(
      SavedCacheEntry{0x1234, CachedScore(-10.25), 3});
  CP.ChainStates[1].ChainIndex = 1;
  CP.ChainStates[1].Initialized = false;

  std::vector<uint8_t> Bytes = serializeCheckpoint(CP);
  RunCheckpoint Back;
  std::string Err;
  ASSERT_TRUE(parseCheckpoint(Bytes, Back, Err)) << Err;
  EXPECT_EQ(Back.Seed, CP.Seed);
  EXPECT_EQ(Back.Chains, 2u);
  EXPECT_EQ(Back.IterationTarget, 1000u);
  EXPECT_EQ(Back.NumHoles, 1u);
  EXPECT_EQ(Back.WalkFingerprint, 33u);
  ASSERT_EQ(Back.ChainStates.size(), 2u);
  const ChainCheckpoint &C0 = Back.ChainStates[0];
  EXPECT_EQ(C0.NextIter, 400u);
  EXPECT_TRUE(C0.Initialized);
  EXPECT_EQ(C0.CurrentLL, -12.5);
  EXPECT_EQ(C0.BestLL, -10.25);
  ASSERT_EQ(C0.Current.size(), 1u);
  EXPECT_EQ(toString(*C0.Current[0]), toString(*CP.ChainStates[0].Current[0]));
  EXPECT_EQ(C0.Stats.Proposed, 400u);
  EXPECT_EQ(C0.Stats.Accepted, 123u);
  ASSERT_EQ(C0.Cache.Entries.size(), 1u);
  EXPECT_EQ(C0.Cache.Entries[0].Key, 0x1234u);
  ASSERT_TRUE(C0.Cache.Entries[0].S.valid());
  EXPECT_EQ(*C0.Cache.Entries[0].S.LL, -10.25);
  EXPECT_EQ(C0.Cache.Entries[0].Epoch, 3u);
  EXPECT_FALSE(Back.ChainStates[1].Initialized);

  // Serialization is deterministic: same snapshot, same bytes.
  EXPECT_EQ(serializeCheckpoint(Back), Bytes);
}

TEST(CheckpointTest, WriteRotatesKeepLastK) {
  std::string Path = ::testing::TempDir() + "/rotate.ckpt";
  for (const std::string &P :
       {Path, Path + ".1", Path + ".2", Path + ".tmp"})
    std::remove(P.c_str());

  RunCheckpoint CP;
  CP.Chains = 1;
  CP.ChainStates.resize(1);
  std::string Err;
  for (uint32_t Gen = 0; Gen != 3; ++Gen) {
    CP.ChainStates[0].NextIter = Gen;
    ASSERT_TRUE(writeCheckpointFile(Path, CP, /*Keep=*/2, Err)) << Err;
  }
  EXPECT_TRUE(fileExists(Path));
  EXPECT_TRUE(fileExists(Path + ".1"));
  EXPECT_FALSE(fileExists(Path + ".2"));
  EXPECT_FALSE(fileExists(Path + ".tmp"));

  RunCheckpoint Newest, Prev;
  ASSERT_TRUE(readCheckpointFile(Path, Newest, Err)) << Err;
  ASSERT_TRUE(readCheckpointFile(Path + ".1", Prev, Err)) << Err;
  EXPECT_EQ(Newest.ChainStates[0].NextIter, 2u);
  EXPECT_EQ(Prev.ChainStates[0].NextIter, 1u);
}
