//===- tests/obs/MetricsTest.cpp - Metrics registry unit tests ------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace psketch;

TEST(MetricsTest, CountersCreateOnFirstUseAndAccumulate) {
  MetricsRegistry R;
  R.counter("a").add();
  R.counter("a").add(4);
  EXPECT_EQ(R.counter("a").value(), 5u);
  EXPECT_EQ(R.counter("b").value(), 0u);
  EXPECT_EQ(R.numMetrics(), 2u);
}

TEST(MetricsTest, GaugesKeepLastWrite) {
  MetricsRegistry R;
  EXPECT_FALSE(R.gauge("g").written());
  R.gauge("g").set(1.5);
  R.gauge("g").set(-2.5);
  EXPECT_TRUE(R.gauge("g").written());
  EXPECT_EQ(R.gauge("g").value(), -2.5);
}

TEST(MetricsTest, HistogramFirstRegistrationWins) {
  MetricsRegistry R;
  R.histogram("h", 0, 10, 10).observe(3.0);
  // Re-registration with a different binning returns the original.
  Histogram S = R.histogram("h", 0, 100, 5).snapshot();
  EXPECT_EQ(S.bins(), 10u);
  EXPECT_EQ(S.total(), 1u);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry R;
  Counter &C = R.counter("hits");
  constexpr unsigned Threads = 8, PerThread = 10000;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&C] {
      for (unsigned I = 0; I != PerThread; ++I)
        C.add();
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread);
}

TEST(MetricsTest, MergeSumsCountersAndHistograms) {
  MetricsRegistry A, B;
  A.counter("c").add(3);
  B.counter("c").add(4);
  B.counter("only_b").add(1);
  A.histogram("h", 0, 4, 4).observe(1.0);
  B.histogram("h", 0, 4, 4).observe(3.0);
  B.gauge("g").set(9.0);

  A.merge(B);
  EXPECT_EQ(A.counter("c").value(), 7u);
  EXPECT_EQ(A.counter("only_b").value(), 1u);
  Histogram H = A.histogram("h", 0, 4, 4).snapshot();
  EXPECT_EQ(H.total(), 2u);
  EXPECT_EQ(H.count(1), 1u);
  EXPECT_EQ(H.count(3), 1u);
  EXPECT_EQ(A.gauge("g").value(), 9.0);
}

TEST(MetricsTest, MergeSkipsUnwrittenGauges) {
  MetricsRegistry A, B;
  A.gauge("g").set(5.0);
  (void)B.gauge("g"); // registered but never written
  A.merge(B);
  EXPECT_EQ(A.gauge("g").value(), 5.0);
}

TEST(MetricsTest, ShardMergeOrderIsDeterministic) {
  // Simulate per-chain shards populated from different "threads" and
  // check that merging them in chain order yields identical JSON no
  // matter which threads did the populating (here: populate twice and
  // compare — contents depend only on the shard values and the merge
  // order).
  auto Populate = [](MetricsRegistry &Shard, unsigned Chain) {
    Shard.counter("synth.proposed").add(100 + Chain);
    Shard.counter("synth.accepted").add(10 * Chain);
    Shard.histogram("synth.mutations_per_proposal", 0, 16, 16)
        .observe(double(Chain % 4));
  };

  std::string Renders[2];
  for (std::string &Render : Renders) {
    std::vector<std::unique_ptr<MetricsRegistry>> Shards;
    for (unsigned Chain = 0; Chain != 4; ++Chain) {
      Shards.push_back(std::make_unique<MetricsRegistry>());
      Populate(*Shards.back(), Chain);
    }
    MetricsRegistry Merged;
    for (auto &Shard : Shards)
      Merged.merge(*Shard);
    Render = Merged.toJson();
  }
  EXPECT_EQ(Renders[0], Renders[1]);
  EXPECT_NE(Renders[0].find("\"synth.proposed\":406"), std::string::npos);
}

TEST(MetricsTest, ToJsonIsSortedAndParsable) {
  MetricsRegistry R;
  R.counter("z.last").add(1);
  R.counter("a.first").add(2);
  R.gauge("m.gauge").set(0.5);
  R.histogram("h.hist", 0, 2, 2).observe(1.5);

  std::string Text = R.toJson();
  // Sorted: a.first before z.last.
  EXPECT_LT(Text.find("a.first"), Text.find("z.last"));

  std::string Err;
  auto V = parseJson(Text, Err);
  ASSERT_TRUE(V) << Err;
  const JsonValue *Counters = V->get("counters");
  ASSERT_TRUE(Counters);
  EXPECT_EQ(Counters->getNumber("a.first"), 2.0);
  const JsonValue *Hists = V->get("histograms");
  ASSERT_TRUE(Hists);
  const JsonValue *H = Hists->get("h.hist");
  ASSERT_TRUE(H);
  EXPECT_EQ(H->getNumber("total"), 1.0);
  ASSERT_TRUE(H->get("counts"));
  EXPECT_EQ(H->get("counts")->array().size(), 2u);
}
