//===- tests/obs/StageTimerTest.cpp - RAII stage-span unit tests ----------===//

#include "obs/StageTimer.h"

#include <gtest/gtest.h>

#include <thread>

using namespace psketch;

TEST(StageTimerTest, NoSinkMeansNoCharge) {
  ASSERT_EQ(threadStageTimes(), nullptr);
  { ScopedStage Span(Stage::EvalBatch); }
  // Nothing to observe directly — the span had nowhere to write — but
  // installing a sink afterwards must start from zero.
  StageTimes T;
  StageTimesScope Scope(&T);
  EXPECT_TRUE(T.empty());
}

TEST(StageTimerTest, SpansChargeTheInstalledSink) {
  StageTimes T;
  {
    StageTimesScope Scope(&T);
    { ScopedStage Span(Stage::LowerCompile); }
    { ScopedStage Span(Stage::LowerCompile); }
    { ScopedStage Span(Stage::Splice); }
  }
  EXPECT_EQ(T.calls(Stage::LowerCompile), 2u);
  EXPECT_EQ(T.calls(Stage::Splice), 1u);
  EXPECT_EQ(T.calls(Stage::EvalBatch), 0u);
  EXPECT_FALSE(T.empty());
}

TEST(StageTimerTest, ScopeRestoresThePreviousSink) {
  StageTimes Outer, Inner;
  StageTimesScope OuterScope(&Outer);
  EXPECT_EQ(threadStageTimes(), &Outer);
  {
    StageTimesScope InnerScope(&Inner);
    EXPECT_EQ(threadStageTimes(), &Inner);
    ScopedStage Span(Stage::CacheProbe);
  }
  EXPECT_EQ(threadStageTimes(), &Outer);
  EXPECT_EQ(Inner.calls(Stage::CacheProbe), 1u);
  EXPECT_EQ(Outer.calls(Stage::CacheProbe), 0u);
  setThreadStageTimes(nullptr);
}

TEST(StageTimerTest, SinksAreThreadLocal) {
  StageTimes Main;
  StageTimesScope Scope(&Main);
  std::thread Worker([] {
    // The worker starts with no sink even while the main thread has
    // one installed.
    EXPECT_EQ(threadStageTimes(), nullptr);
    StageTimes Mine;
    StageTimesScope S(&Mine);
    { ScopedStage Span(Stage::EvalBatch); }
    EXPECT_EQ(Mine.calls(Stage::EvalBatch), 1u);
  });
  Worker.join();
  EXPECT_EQ(Main.calls(Stage::EvalBatch), 0u);
}

TEST(StageTimerTest, MergeSumsNanosAndCalls) {
  StageTimes A, B;
  A.Ns[unsigned(Stage::EvalBatch)] = 100;
  A.Calls[unsigned(Stage::EvalBatch)] = 2;
  B.Ns[unsigned(Stage::EvalBatch)] = 50;
  B.Calls[unsigned(Stage::EvalBatch)] = 1;
  B.Ns[unsigned(Stage::Splice)] = 7;
  B.Calls[unsigned(Stage::Splice)] = 1;
  A.merge(B);
  EXPECT_EQ(A.Ns[unsigned(Stage::EvalBatch)], 150u);
  EXPECT_EQ(A.calls(Stage::EvalBatch), 3u);
  EXPECT_EQ(A.calls(Stage::Splice), 1u);
  EXPECT_DOUBLE_EQ(A.seconds(Stage::EvalBatch), 150e-9);
}

TEST(StageTimerTest, StageNamesAreStable) {
  EXPECT_STREQ(stageName(Stage::LowerCompile), "lower_compile");
  EXPECT_STREQ(stageName(Stage::EvalBatch), "eval_batch");
  EXPECT_STREQ(stageName(Stage::CacheProbe), "cache_probe");
  EXPECT_STREQ(stageName(Stage::Splice), "splice");
}
