//===- tests/obs/TraceTest.cpp - JSONL trace round-trip tests -------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace psketch;

namespace {

RunManifest sampleManifest() {
  RunManifest M;
  M.Seed = 7;
  M.Iterations = 300;
  M.Chains = 2;
  M.Threads = 4;
  M.Sketch = "sketch.psk";
  M.DatasetRows = 40;
  M.DatasetCols = 3;
  M.DatasetFingerprint = 0xdeadbeefcafebabeull;
  M.ScoreCacheSize = 4096;
  M.UseProposalRatio = true;
  return M;
}

std::vector<TraceEvent> sampleEvents() {
  std::vector<TraceEvent> Events;
  TraceEvent A;
  A.Chain = 0;
  A.Iter = 0;
  A.Mutation = "const_perturb";
  A.Outcome = TraceOutcome::Accept;
  A.CandidateLL = -12.5;
  A.BestLL = -12.5;
  A.CacheHit = false;
  Events.push_back(A);

  TraceEvent B;
  B.Chain = 0;
  B.Iter = 1;
  B.Mutation = "regen+grow";
  B.Outcome = TraceOutcome::InvalidType;
  // CandidateLL stays NaN; BestLL stays as before.
  B.BestLL = -12.5;
  Events.push_back(B);

  TraceEvent C;
  C.Chain = 1;
  C.Iter = 0;
  C.Mutation = "op_swap";
  C.Outcome = TraceOutcome::Reject;
  C.CandidateLL = -99.25;
  C.BestLL = -12.5;
  C.CacheHit = true;
  Events.push_back(C);
  return Events;
}

} // namespace

TEST(TraceTest, OutcomeNamesRoundTrip) {
  for (TraceOutcome O :
       {TraceOutcome::Accept, TraceOutcome::Reject, TraceOutcome::InvalidType,
        TraceOutcome::InvalidDomain, TraceOutcome::InvalidStatic}) {
    auto Back = parseTraceOutcome(traceOutcomeName(O));
    ASSERT_TRUE(Back);
    EXPECT_EQ(*Back, O);
  }
  // Legacy traces predate the invalid-reason split.
  auto Legacy = parseTraceOutcome("invalid");
  ASSERT_TRUE(Legacy);
  EXPECT_EQ(*Legacy, TraceOutcome::InvalidDomain);
  EXPECT_FALSE(parseTraceOutcome("bogus"));
}

TEST(TraceTest, EveryLineIsValidJson) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::istringstream IS(OS.str());
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(IS, Line)) {
    ++Lines;
    std::string Err;
    EXPECT_TRUE(parseJson(Line, Err))
        << "line " << Lines << ": " << Err << "\n" << Line;
  }
  EXPECT_EQ(Lines, 1u + sampleEvents().size());
}

TEST(TraceTest, RoundTripPreservesAllFields) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;

  RunManifest M = sampleManifest();
  EXPECT_EQ(T->Manifest.Seed, M.Seed);
  EXPECT_EQ(T->Manifest.Iterations, M.Iterations);
  EXPECT_EQ(T->Manifest.Chains, M.Chains);
  EXPECT_EQ(T->Manifest.Threads, M.Threads);
  EXPECT_EQ(T->Manifest.Sketch, M.Sketch);
  EXPECT_EQ(T->Manifest.DatasetRows, M.DatasetRows);
  EXPECT_EQ(T->Manifest.DatasetCols, M.DatasetCols);
  EXPECT_EQ(T->Manifest.DatasetFingerprint, M.DatasetFingerprint);
  EXPECT_EQ(T->Manifest.ScoreCacheSize, M.ScoreCacheSize);
  EXPECT_EQ(T->Manifest.UseProposalRatio, M.UseProposalRatio);

  std::vector<TraceEvent> Events = sampleEvents();
  ASSERT_EQ(T->Events.size(), Events.size());
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(T->Events[I].Chain, Events[I].Chain);
    EXPECT_EQ(T->Events[I].Iter, Events[I].Iter);
    EXPECT_EQ(T->Events[I].Mutation, Events[I].Mutation);
    EXPECT_EQ(T->Events[I].Outcome, Events[I].Outcome);
    EXPECT_EQ(T->Events[I].BestLL, Events[I].BestLL);
    EXPECT_EQ(T->Events[I].CacheHit, Events[I].CacheHit);
    if (std::isnan(Events[I].CandidateLL))
      EXPECT_TRUE(std::isnan(T->Events[I].CandidateLL));
    else
      EXPECT_EQ(T->Events[I].CandidateLL, Events[I].CandidateLL);
  }
}

TEST(TraceTest, NegativeInfinityBestLLSurvives) {
  // Before the first valid candidate the best LL is -inf; the JSONL
  // form must carry it through.
  RunManifest M = sampleManifest();
  TraceEvent E;
  E.Chain = 0;
  E.Iter = 0;
  E.Mutation = "none";
  E.Outcome = TraceOutcome::InvalidDomain;
  std::ostringstream OS;
  writeJsonlTrace(OS, M, {E});
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;
  ASSERT_EQ(T->Events.size(), 1u);
  EXPECT_TRUE(std::isinf(T->Events[0].BestLL));
  EXPECT_LT(T->Events[0].BestLL, 0);
}

TEST(TraceTest, RejectsGarbageLinesWithLineNumbers) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::string Text = OS.str() + "this is not json\n";
  std::istringstream IS(Text);
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
}

TEST(TraceTest, RejectsMissingManifest) {
  std::ostringstream OS;
  // Events only, no manifest first line.
  OS << traceEventLine(sampleEvents()[0]) << "\n";
  std::istringstream IS(OS.str());
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
  EXPECT_NE(Err.find("manifest"), std::string::npos) << Err;
}

TEST(TraceTest, RejectsEmptyInput) {
  std::istringstream IS("");
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
}

TEST(TraceTest, SummaryCountsPerChainAndOverall) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;

  TraceSummary S = summarizeTrace(*T, /*Window=*/200);
  EXPECT_EQ(S.Events, 3u);
  EXPECT_EQ(S.Accepted, 1u);
  EXPECT_EQ(S.Invalid, 1u);
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.BestLL, -12.5);
  ASSERT_EQ(S.PerChain.size(), 2u);
  EXPECT_EQ(S.PerChain[0].Chain, 0u);
  EXPECT_EQ(S.PerChain[0].Events, 2u);
  EXPECT_EQ(S.PerChain[0].Accepted, 1u);
  EXPECT_EQ(S.PerChain[0].WindowAcceptRate, 0.5);
  EXPECT_EQ(S.PerChain[1].Events, 1u);
  EXPECT_EQ(S.PerChain[1].CacheHits, 1u);

  std::string Render = formatTraceSummary(S);
  EXPECT_NE(Render.find("chain 0"), std::string::npos);
  EXPECT_NE(Render.find("chain 1"), std::string::npos);
}
