//===- tests/obs/TraceTest.cpp - JSONL trace round-trip tests -------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace psketch;

namespace {

RunManifest sampleManifest() {
  RunManifest M;
  M.Seed = 7;
  M.Iterations = 300;
  M.Chains = 2;
  M.Threads = 4;
  M.Sketch = "sketch.psk";
  M.DatasetRows = 40;
  M.DatasetCols = 3;
  M.DatasetFingerprint = 0xdeadbeefcafebabeull;
  M.ScoreCacheSize = 4096;
  M.UseProposalRatio = true;
  return M;
}

std::vector<TraceEvent> sampleEvents() {
  std::vector<TraceEvent> Events;
  TraceEvent A;
  A.Chain = 0;
  A.Iter = 0;
  A.Mutation = "const_perturb";
  A.Outcome = TraceOutcome::Accept;
  A.CandidateLL = -12.5;
  A.BestLL = -12.5;
  A.CacheHit = false;
  Events.push_back(A);

  TraceEvent B;
  B.Chain = 0;
  B.Iter = 1;
  B.Mutation = "regen+grow";
  B.Outcome = TraceOutcome::InvalidType;
  // CandidateLL stays NaN; BestLL stays as before.
  B.BestLL = -12.5;
  Events.push_back(B);

  TraceEvent C;
  C.Chain = 1;
  C.Iter = 0;
  C.Mutation = "op_swap";
  C.Outcome = TraceOutcome::Reject;
  C.CandidateLL = -99.25;
  C.BestLL = -12.5;
  C.CacheHit = true;
  Events.push_back(C);
  return Events;
}

} // namespace

TEST(TraceTest, OutcomeNamesRoundTrip) {
  for (TraceOutcome O :
       {TraceOutcome::Accept, TraceOutcome::Reject, TraceOutcome::InvalidType,
        TraceOutcome::InvalidDomain, TraceOutcome::InvalidStatic}) {
    auto Back = parseTraceOutcome(traceOutcomeName(O));
    ASSERT_TRUE(Back);
    EXPECT_EQ(*Back, O);
  }
  // Legacy traces predate the invalid-reason split.
  auto Legacy = parseTraceOutcome("invalid");
  ASSERT_TRUE(Legacy);
  EXPECT_EQ(*Legacy, TraceOutcome::InvalidDomain);
  EXPECT_FALSE(parseTraceOutcome("bogus"));
}

TEST(TraceTest, EveryLineIsValidJson) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::istringstream IS(OS.str());
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(IS, Line)) {
    ++Lines;
    std::string Err;
    EXPECT_TRUE(parseJson(Line, Err))
        << "line " << Lines << ": " << Err << "\n" << Line;
  }
  EXPECT_EQ(Lines, 1u + sampleEvents().size());
}

TEST(TraceTest, RoundTripPreservesAllFields) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;

  RunManifest M = sampleManifest();
  EXPECT_EQ(T->Manifest.Seed, M.Seed);
  EXPECT_EQ(T->Manifest.Iterations, M.Iterations);
  EXPECT_EQ(T->Manifest.Chains, M.Chains);
  EXPECT_EQ(T->Manifest.Threads, M.Threads);
  EXPECT_EQ(T->Manifest.Sketch, M.Sketch);
  EXPECT_EQ(T->Manifest.DatasetRows, M.DatasetRows);
  EXPECT_EQ(T->Manifest.DatasetCols, M.DatasetCols);
  EXPECT_EQ(T->Manifest.DatasetFingerprint, M.DatasetFingerprint);
  EXPECT_EQ(T->Manifest.ScoreCacheSize, M.ScoreCacheSize);
  EXPECT_EQ(T->Manifest.UseProposalRatio, M.UseProposalRatio);

  std::vector<TraceEvent> Events = sampleEvents();
  ASSERT_EQ(T->Events.size(), Events.size());
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(T->Events[I].Chain, Events[I].Chain);
    EXPECT_EQ(T->Events[I].Iter, Events[I].Iter);
    EXPECT_EQ(T->Events[I].Mutation, Events[I].Mutation);
    EXPECT_EQ(T->Events[I].Outcome, Events[I].Outcome);
    EXPECT_EQ(T->Events[I].BestLL, Events[I].BestLL);
    EXPECT_EQ(T->Events[I].CacheHit, Events[I].CacheHit);
    if (std::isnan(Events[I].CandidateLL))
      EXPECT_TRUE(std::isnan(T->Events[I].CandidateLL));
    else
      EXPECT_EQ(T->Events[I].CandidateLL, Events[I].CandidateLL);
  }
}

TEST(TraceTest, NegativeInfinityBestLLSurvives) {
  // Before the first valid candidate the best LL is -inf; the JSONL
  // form must carry it through.
  RunManifest M = sampleManifest();
  TraceEvent E;
  E.Chain = 0;
  E.Iter = 0;
  E.Mutation = "none";
  E.Outcome = TraceOutcome::InvalidDomain;
  std::ostringstream OS;
  writeJsonlTrace(OS, M, {E});
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;
  ASSERT_EQ(T->Events.size(), 1u);
  EXPECT_TRUE(std::isinf(T->Events[0].BestLL));
  EXPECT_LT(T->Events[0].BestLL, 0);
}

TEST(TraceTest, RejectsGarbageLinesWithLineNumbers) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::string Text = OS.str() + "this is not json\n";
  std::istringstream IS(Text);
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
}

TEST(TraceTest, RejectsMissingManifest) {
  std::ostringstream OS;
  // Events only, no manifest first line.
  OS << traceEventLine(sampleEvents()[0]) << "\n";
  std::istringstream IS(OS.str());
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
  EXPECT_NE(Err.find("manifest"), std::string::npos) << Err;
}

TEST(TraceTest, RejectsEmptyInput) {
  std::istringstream IS("");
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
}

TEST(TraceTest, ManifestLineCarriesSchemaVersion) {
  std::string Line = traceManifestLine(sampleManifest());
  std::string Err;
  auto V = parseJson(Line, Err);
  ASSERT_TRUE(V) << Err;
  auto Schema = V->getUInt64("schema_version");
  ASSERT_TRUE(Schema);
  EXPECT_EQ(*Schema, TelemetrySchemaVersion);
}

TEST(TraceTest, RejectsFutureSchemaVersion) {
  // A trace from a newer, incompatible build declares a higher
  // schema_version; the reader must refuse it with a clear message
  // rather than misparse the contents.
  std::string Line = traceManifestLine(sampleManifest());
  size_t Pos = Line.find("\"schema_version\":1");
  ASSERT_NE(Pos, std::string::npos);
  Line.replace(Pos, 18, "\"schema_version\":999");
  std::istringstream IS(Line + "\n");
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
  EXPECT_NE(Err.find("schema_version 999"), std::string::npos) << Err;
}

TEST(TraceTest, AcceptsLegacyManifestWithoutSchemaVersion) {
  // Traces written before the field existed have no schema_version at
  // all; they must keep parsing.
  std::string Line = traceManifestLine(sampleManifest());
  size_t Pos = Line.find("\"schema_version\":1,");
  ASSERT_NE(Pos, std::string::npos);
  Line.erase(Pos, 19);
  std::ostringstream OS;
  OS << Line << "\n" << traceEventLine(sampleEvents()[0]) << "\n";
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;
  EXPECT_EQ(T->Events.size(), 1u);
}

TEST(TraceTest, TruncatedFinalLineIsALineError) {
  // A crash mid-write leaves the last line cut off; the reader must
  // report the exact line instead of crashing or silently dropping it.
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::string Text = OS.str();
  std::string LastLine = traceEventLine(sampleEvents()[2]);
  Text += LastLine.substr(0, LastLine.size() / 2);
  Text += "\n";
  std::istringstream IS(Text);
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
}

TEST(TraceTest, CorruptEventIsALineError) {
  // Valid JSON with a mangled field (outcome that parses as no known
  // value) is a malformed event, reported with its line number.
  std::ostringstream OS;
  OS << traceManifestLine(sampleManifest()) << "\n";
  OS << "{\"type\":\"event\",\"chain\":0,\"iter\":0,\"mutation\":\"x\","
        "\"outcome\":\"exploded\",\"candidate_ll\":0,\"best_ll\":0,"
        "\"cache_hit\":false}\n";
  std::istringstream IS(OS.str());
  std::string Err;
  EXPECT_FALSE(readJsonlTrace(IS, Err));
  EXPECT_NE(Err.find("line 2"), std::string::npos) << Err;
  EXPECT_NE(Err.find("malformed event"), std::string::npos) << Err;
}

TEST(TraceTest, UnknownFieldsAreIgnoredForwardCompat) {
  // A newer writer of the SAME schema version may add fields; readers
  // must skip what they don't know.
  std::ostringstream OS;
  std::string Manifest = traceManifestLine(sampleManifest());
  Manifest.insert(Manifest.size() - 1, ",\"future_field\":[1,2,3]");
  std::string Event = traceEventLine(sampleEvents()[0]);
  Event.insert(Event.size() - 1, ",\"gpu_ns\":42");
  OS << Manifest << "\n" << Event << "\n";
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;
  ASSERT_EQ(T->Events.size(), 1u);
  EXPECT_EQ(T->Events[0].Mutation, "const_perturb");
}

TEST(TraceTest, MergeRenumbersChainsAcrossFiles) {
  ParsedTrace A;
  A.Manifest = sampleManifest(); // 2 chains
  A.Events = sampleEvents();     // chains 0 and 1
  ParsedTrace B = A;             // same shape, different run
  B.Manifest.Seed = 8;

  std::vector<std::string> Warnings;
  ParsedTrace Merged = mergeParsedTraces({A, B}, &Warnings);
  EXPECT_TRUE(Warnings.empty());
  EXPECT_EQ(Merged.Manifest.Chains, 4u);
  ASSERT_EQ(Merged.Events.size(), 6u);
  // First file's chains pass through; second file's shift by 2.
  EXPECT_EQ(Merged.Events[0].Chain, 0u);
  EXPECT_EQ(Merged.Events[2].Chain, 1u);
  EXPECT_EQ(Merged.Events[3].Chain, 2u);
  EXPECT_EQ(Merged.Events[5].Chain, 3u);
  // The merged digest sees four distinct chains.
  TraceSummary S = summarizeTrace(Merged);
  EXPECT_EQ(S.PerChain.size(), 4u);
}

TEST(TraceTest, MergeSingleTraceIsIdentity) {
  ParsedTrace A;
  A.Manifest = sampleManifest();
  A.Events = sampleEvents();
  ParsedTrace Merged = mergeParsedTraces({A});
  EXPECT_EQ(Merged.Manifest.Chains, A.Manifest.Chains);
  ASSERT_EQ(Merged.Events.size(), A.Events.size());
  for (size_t I = 0; I != A.Events.size(); ++I)
    EXPECT_EQ(Merged.Events[I].Chain, A.Events[I].Chain);
}

TEST(TraceTest, MergeWarnsOnMismatchedRuns) {
  ParsedTrace A;
  A.Manifest = sampleManifest();
  A.Events = sampleEvents();
  ParsedTrace B = A;
  B.Manifest.Sketch = "other.psk";
  B.Manifest.DatasetFingerprint ^= 1;

  std::vector<std::string> Warnings;
  mergeParsedTraces({A, B}, &Warnings);
  ASSERT_EQ(Warnings.size(), 2u);
  EXPECT_NE(Warnings[0].find("other.psk"), std::string::npos);
  EXPECT_NE(Warnings[1].find("fingerprint"), std::string::npos);
}

TEST(TraceTest, SummaryCountsPerChainAndOverall) {
  std::ostringstream OS;
  writeJsonlTrace(OS, sampleManifest(), sampleEvents());
  std::istringstream IS(OS.str());
  std::string Err;
  auto T = readJsonlTrace(IS, Err);
  ASSERT_TRUE(T) << Err;

  TraceSummary S = summarizeTrace(*T, /*Window=*/200);
  EXPECT_EQ(S.Events, 3u);
  EXPECT_EQ(S.Accepted, 1u);
  EXPECT_EQ(S.Invalid, 1u);
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.BestLL, -12.5);
  ASSERT_EQ(S.PerChain.size(), 2u);
  EXPECT_EQ(S.PerChain[0].Chain, 0u);
  EXPECT_EQ(S.PerChain[0].Events, 2u);
  EXPECT_EQ(S.PerChain[0].Accepted, 1u);
  EXPECT_EQ(S.PerChain[0].WindowAcceptRate, 0.5);
  EXPECT_EQ(S.PerChain[1].Events, 1u);
  EXPECT_EQ(S.PerChain[1].CacheHits, 1u);

  std::string Render = formatTraceSummary(S);
  EXPECT_NE(Render.find("chain 0"), std::string::npos);
  EXPECT_NE(Render.find("chain 1"), std::string::npos);
}
