//===- tests/obs/PerfCountersTest.cpp - Hardware-counter plumbing tests ---===//
//
// perf_event_open is best-effort (seccomp filters, perf_event_paranoid,
// non-Linux hosts), so these tests assert the arithmetic and the
// graceful-degradation contract, never that counters actually opened.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfCounters.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(PerfCountersTest, AddAccumulatesAllFourCounters) {
  PerfCounts A, B;
  A.Cycles = 10;
  A.Instructions = 20;
  B.Cycles = 1;
  B.CacheMisses = 2;
  B.BranchMisses = 3;
  A.add(B);
  EXPECT_EQ(A.Cycles, 11u);
  EXPECT_EQ(A.Instructions, 20u);
  EXPECT_EQ(A.CacheMisses, 2u);
  EXPECT_EQ(A.BranchMisses, 3u);
  EXPECT_TRUE(A.any());
  EXPECT_FALSE(PerfCounts{}.any());
}

TEST(PerfCountersTest, AddDeltaSaturatesAtZero) {
  PerfCounts Begin, End, Acc;
  Begin.Cycles = 100;
  End.Cycles = 150;
  Begin.Instructions = 500; // counter "went backwards" (went away)
  End.Instructions = 400;
  Acc.addDelta(Begin, End);
  EXPECT_EQ(Acc.Cycles, 50u);
  EXPECT_EQ(Acc.Instructions, 0u);
}

TEST(PerfCountersTest, MergeOrsAvailabilityAndKeepsFirstReason) {
  StagePerf A, B;
  A.Available = false;
  A.FallbackReason = "first";
  B.Available = true;
  B.FallbackReason = "second";
  B.Total.Cycles = 5;
  B.Stage[unsigned(Stage::EvalBatch)].Cycles = 4;
  A.merge(B);
  EXPECT_TRUE(A.Available);
  EXPECT_EQ(A.FallbackReason, "first");
  EXPECT_EQ(A.Total.Cycles, 5u);
  EXPECT_EQ(A.Stage[unsigned(Stage::EvalBatch)].Cycles, 4u);
}

TEST(PerfCountersTest, OpenEitherSucceedsOrExplainsWhy) {
  PerfCounterGroup G;
  bool Opened = G.open();
  if (Opened) {
    EXPECT_TRUE(G.isOpen());
    EXPECT_TRUE(G.unavailableReason().empty());
    // Counters are monotonic on this thread while open.
    PerfCounts First = G.read();
    volatile uint64_t Sink = 0;
    for (unsigned I = 0; I != 100000; ++I)
      Sink = Sink + I;
    PerfCounts Second = G.read();
    EXPECT_GE(Second.Cycles, First.Cycles);
  } else {
    EXPECT_FALSE(G.isOpen());
    EXPECT_FALSE(G.unavailableReason().empty());
    // read() on a closed group is all zeros, not UB.
    EXPECT_FALSE(G.read().any());
  }
}

TEST(PerfCountersTest, SinkDegradesGracefullyWhenCountersUnavailable) {
  StagePerfSink Sink;
  bool Opened = Sink.open();
  Sink.beginRun();
  Sink.enterSpan();
  Sink.exitSpan(Stage::EvalBatch);
  Sink.endRun();
  StagePerf P = Sink.take();
  EXPECT_EQ(P.Available, Opened);
  if (!Opened) {
    EXPECT_FALSE(P.FallbackReason.empty());
  }
}

TEST(PerfCountersTest, ThreadLocalPerfSinkInstallAndRestore) {
  EXPECT_EQ(threadStagePerfSink(), nullptr);
  StagePerfSink S;
  {
    StagePerfScope Scope(&S);
    EXPECT_EQ(threadStagePerfSink(), &S);
  }
  EXPECT_EQ(threadStagePerfSink(), nullptr);
}
