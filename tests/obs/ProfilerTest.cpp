//===- tests/obs/ProfilerTest.cpp - Tape cost-attribution tests -----------===//

#include "obs/Profiler.h"

#include "obs/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

using namespace psketch;

namespace {

std::chrono::nanoseconds ns(uint64_t N) { return std::chrono::nanoseconds(N); }

/// A profile with deterministic, hand-charged buckets (no clock reads),
/// so every assertion below is exact.
TapeProfile sampleProfile() {
  TapeProfile P;
  EXPECT_TRUE(P.beginBlock(512, 4));
  P.chargeOp(2, ns(3000), 512);
  P.chargeOp(5, ns(1000), 512);
  P.chargeOp(2, ns(2000), 512);
  P.charge(ProfileCostCenter::BlockSum, ns(500), 512);
  P.charge(ProfileCostCenter::Dispatch, ns(250));
  return P;
}

/// OpNames table naming indices 0..7 "op0".."op7" with one fused name.
std::vector<std::string> sampleOpNames() {
  std::vector<std::string> Names;
  for (unsigned I = 0; I != 8; ++I)
    Names.push_back(I == 5 ? "mul+add" : "op" + std::to_string(I));
  return Names;
}

ProfileReport sampleReport() {
  ProfileReport R;
  R.Tape = sampleProfile();
  R.Stages.Ns[unsigned(Stage::EvalBatch)] = 10000;
  R.Stages.Calls[unsigned(Stage::EvalBatch)] = 1;
  R.Stages.Ns[unsigned(Stage::LowerCompile)] = 4000;
  R.Stages.Calls[unsigned(Stage::LowerCompile)] = 1;
  R.OpNames = sampleOpNames();
  R.SimdLevel = "avx2";
  R.SimdWidth = 4;
  R.RunSeconds = 0.5;
  R.RowsScored = 512;
  R.CandidatesScored = 1;
  R.Sketch = "unit.psk";
  R.Seed = 7;
  R.Iterations = 100;
  R.Chains = 2;
  return R;
}

} // namespace

TEST(ProfilerTest, BucketAccountingIsExact) {
  TapeProfile P = sampleProfile();
  EXPECT_EQ(P.BlocksTotal, 1u);
  EXPECT_EQ(P.BlocksProfiled, 1u);
  EXPECT_EQ(P.RowsTotal, 512u);
  EXPECT_EQ(P.RowsProfiled, 512u);
  EXPECT_EQ(P.SimdWidthMax, 4u);
  EXPECT_EQ(P.Op[2].Ns, 5000u);
  EXPECT_EQ(P.Op[2].Rows, 1024u);
  EXPECT_EQ(P.Op[2].Calls, 2u);
  EXPECT_EQ(P.Op[5].Ns, 1000u);
  EXPECT_EQ(P.opNs(), 6000u);
  EXPECT_EQ(P.centerNs(), 750u);
  uint64_t TopNs = 0;
  EXPECT_EQ(P.topOp(&TopNs), 2);
  EXPECT_EQ(TopNs, 5000u);
}

TEST(ProfilerTest, OutOfRangeOpIndexFoldsIntoLastBucket) {
  TapeProfile P;
  P.chargeOp(ProfileMaxOps + 10, ns(100), 16);
  EXPECT_EQ(P.Op[ProfileMaxOps - 1].Ns, 100u);
  EXPECT_EQ(P.opNs(), 100u);
}

TEST(ProfilerTest, SamplingSkipsBlocksButCountsThem) {
  TapeProfile P;
  P.SampleEvery = 4;
  unsigned Sampled = 0;
  for (unsigned I = 0; I != 16; ++I)
    Sampled += P.beginBlock(512, 1);
  // Blocks 1, 5, 9, 13 (1-indexed, BlocksTotal % 4 == 1) are sampled.
  EXPECT_EQ(Sampled, 4u);
  EXPECT_EQ(P.BlocksTotal, 16u);
  EXPECT_EQ(P.BlocksProfiled, 4u);
  EXPECT_EQ(P.RowsTotal, 16u * 512u);
  EXPECT_EQ(P.RowsProfiled, 4u * 512u);
}

TEST(ProfilerTest, MergeAddsBucketsAndResetKeepsSampleEvery) {
  TapeProfile A = sampleProfile();
  TapeProfile B = sampleProfile();
  A.merge(B);
  EXPECT_EQ(A.Op[2].Ns, 10000u);
  EXPECT_EQ(A.BlocksTotal, 2u);
  EXPECT_EQ(A.RowsTotal, 1024u);
  EXPECT_EQ(A.SimdWidthMax, 4u);

  A.SampleEvery = 8;
  A.reset();
  EXPECT_TRUE(A.empty());
  EXPECT_EQ(A.opNs(), 0u);
  EXPECT_EQ(A.SampleEvery, 8u);
}

TEST(ProfilerTest, ThreadLocalSinkInstallAndRestore) {
  EXPECT_EQ(threadTapeProfile(), nullptr);
  TapeProfile Outer, Inner;
  {
    TapeProfileScope S1(&Outer);
    EXPECT_EQ(threadTapeProfile(), &Outer);
    {
      TapeProfileScope S2(&Inner);
      EXPECT_EQ(threadTapeProfile(), &Inner);
    }
    EXPECT_EQ(threadTapeProfile(), &Outer);
  }
  EXPECT_EQ(threadTapeProfile(), nullptr);
}

TEST(ProfilerTest, ProfTickAgainstNullSinkIsANoOp) {
  ProfTick T(nullptr);
  T.charge(ProfileCostCenter::BlockSum, 512); // must not crash
  T.reset();
}

TEST(ProfilerTest, ProfTickChargesElapsedTime) {
  TapeProfile P;
  ProfTick T(&P);
  // Busy-wait a little so the delta is non-zero on any clock.
  volatile uint64_t Sink = 0;
  for (unsigned I = 0; I != 100000; ++I)
    Sink = Sink + I;
  T.charge(ProfileCostCenter::BlockSum, 512);
  EXPECT_GT(P.Center[unsigned(ProfileCostCenter::BlockSum)].Ns, 0u);
  EXPECT_EQ(P.Center[unsigned(ProfileCostCenter::BlockSum)].Rows, 512u);
}

TEST(ProfilerTest, AttributionFractionsAgainstStageTimes) {
  ProfileReport R = sampleReport();
  // 6000 op ns + 750 center ns over a 10000 ns eval_batch span.
  EXPECT_DOUBLE_EQ(attributedEvalFraction(R.Tape, R.Stages), 0.675);
  EXPECT_DOUBLE_EQ(opcodeEvalFraction(R.Tape, R.Stages), 0.6);
  // No eval span recorded -> fractions are 0, not NaN.
  StageTimes Zero;
  EXPECT_EQ(attributedEvalFraction(R.Tape, Zero), 0.0);
  EXPECT_EQ(opcodeEvalFraction(R.Tape, Zero), 0.0);
}

TEST(ProfilerTest, ReportJsonIsValidAndCarriesSchema) {
  std::string Json = profileReportJson(sampleReport());
  std::string Err;
  auto V = parseJson(Json, Err);
  ASSERT_TRUE(V) << Err;
  EXPECT_EQ(V->getUInt64("schema_version").value_or(0),
            TelemetrySchemaVersion);
  EXPECT_EQ(V->getString("report").value_or(""), "profile");
  EXPECT_EQ(V->getString("sketch").value_or(""), "unit.psk");
  // Opcode table: sorted by descending ns, fused ops flagged.
  EXPECT_NE(Json.find("\"op\":\"op2\""), std::string::npos);
  EXPECT_NE(Json.find("\"op\":\"mul+add\""), std::string::npos);
  EXPECT_NE(Json.find("\"fused\":true"), std::string::npos);
  EXPECT_LT(Json.find("\"op\":\"op2\""), Json.find("\"op\":\"mul+add\""));
  EXPECT_NE(Json.find("\"eval_attribution\""), std::string::npos);
  EXPECT_NE(Json.find("\"attribution_is_cpu_time\":false"),
            std::string::npos);
}

TEST(ProfilerTest, FoldedStacksHaveFlamegraphShape) {
  std::string Folded = profileFoldedStacks(sampleReport());
  EXPECT_NE(Folded.find("psketch;synth;eval_batch;op:op2 5"),
            std::string::npos)
      << Folded;
  EXPECT_NE(Folded.find("psketch;synth;eval_batch;op:mul+add 1"),
            std::string::npos);
  EXPECT_NE(Folded.find("psketch;synth;lower_compile 4"),
            std::string::npos);
  // The unattributed remainder of the eval span gets its own frame.
  EXPECT_NE(Folded.find("(unattributed)"), std::string::npos);
  // Every line is "semicolon;separated;stack count".
  std::istringstream IS(Folded);
  std::string Line;
  while (std::getline(IS, Line)) {
    ASSERT_FALSE(Line.empty());
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_NE(Line.find("psketch;"), std::string::npos) << Line;
    for (size_t I = Space + 1; I != Line.size(); ++I)
      EXPECT_TRUE(Line[I] >= '0' && Line[I] <= '9') << Line;
  }
}

TEST(ProfilerTest, HumanReportNamesOpsAndStages) {
  std::string Text = formatProfileReport(sampleReport());
  EXPECT_NE(Text.find("op2"), std::string::npos);
  EXPECT_NE(Text.find("mul+add"), std::string::npos);
  EXPECT_NE(Text.find("eval_batch"), std::string::npos);
  EXPECT_NE(Text.find("unit.psk"), std::string::npos);
}

TEST(ProfilerTest, CostCenterNamesAreStable) {
  EXPECT_STREQ(profileCostCenterName(ProfileCostCenter::BlockSum),
               "block_sum");
  EXPECT_STREQ(profileCostCenterName(ProfileCostCenter::ColProbe),
               "col_probe");
  EXPECT_STREQ(profileCostCenterName(ProfileCostCenter::Dispatch),
               "dispatch");
  EXPECT_STREQ(profileCostCenterName(ProfileCostCenter::Unsampled),
               "unsampled");
}
