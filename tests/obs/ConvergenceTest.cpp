//===- tests/obs/ConvergenceTest.cpp - R-hat / ESS oracle tests -----------===//
//
// The diagnostics are validated on synthetic chains with known answers:
// iid draws from one distribution must look converged (R-hat near 1,
// ESS near the pooled draw count); chains with shifted means must not;
// a strongly autocorrelated AR(1) walk must discount ESS heavily; and
// constant / frozen chains must trip the stuck detector.
//
//===----------------------------------------------------------------------===//

#include "obs/Convergence.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

/// \p N iid Gaussian draws (mean \p Mu, sd \p Sigma).
std::vector<double> iidChain(uint64_t Seed, size_t N, double Mu,
                             double Sigma) {
  Rng R(Seed);
  std::vector<double> Xs;
  Xs.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Xs.push_back(R.gaussian(Mu, Sigma));
  return Xs;
}

/// AR(1) walk x[t] = Phi * x[t-1] + e[t]; autocorrelation Phi^t.
std::vector<double> arChain(uint64_t Seed, size_t N, double Phi) {
  Rng R(Seed);
  std::vector<double> Xs;
  Xs.reserve(N);
  double X = 0;
  for (size_t I = 0; I != N; ++I) {
    X = Phi * X + R.gaussian(0, 1);
    Xs.push_back(X);
  }
  return Xs;
}

} // namespace

TEST(ConvergenceTest, RHatNearOneForWellMixedChains) {
  std::vector<std::vector<double>> Chains;
  for (uint64_t C = 0; C != 4; ++C)
    Chains.push_back(iidChain(100 + C, 500, 0.0, 1.0));
  double R = splitRHat(Chains);
  EXPECT_GT(R, 0.9);
  EXPECT_LT(R, 1.05);
}

TEST(ConvergenceTest, RHatDetectsShiftedChains) {
  // Two chains sampling distributions 10 sds apart: between-chain
  // variance dwarfs within-chain variance.
  std::vector<std::vector<double>> Chains = {
      iidChain(1, 500, 0.0, 1.0), iidChain(2, 500, 10.0, 1.0)};
  EXPECT_GT(splitRHat(Chains), 1.5);
}

TEST(ConvergenceTest, RHatHandlesConstantChains) {
  // All-equal constant chains are trivially converged.
  std::vector<std::vector<double>> Same = {{2.0, 2.0, 2.0, 2.0},
                                           {2.0, 2.0, 2.0, 2.0}};
  EXPECT_EQ(splitRHat(Same), 1.0);

  // Constant but disagreeing chains never mix.
  std::vector<std::vector<double>> Diff = {{1.0, 1.0, 1.0, 1.0},
                                           {2.0, 2.0, 2.0, 2.0}};
  EXPECT_TRUE(std::isinf(splitRHat(Diff)));
}

TEST(ConvergenceTest, RHatNeedsEnoughData) {
  EXPECT_TRUE(std::isnan(splitRHat({})));
  EXPECT_TRUE(std::isnan(splitRHat({{1.0, 2.0}})));
  EXPECT_TRUE(std::isnan(splitRHat({{1.0, 2.0, 3.0}, {1.0}})));
}

TEST(ConvergenceTest, ESSNearPooledCountForIidDraws) {
  std::vector<std::vector<double>> Chains;
  for (uint64_t C = 0; C != 4; ++C)
    Chains.push_back(iidChain(200 + C, 500, 0.0, 1.0));
  double ESS = effectiveSampleSize(Chains);
  double Pooled = 4 * 500;
  EXPECT_GT(ESS, 0.5 * Pooled);
  EXPECT_LE(ESS, Pooled);
}

TEST(ConvergenceTest, ESSDiscountsAutocorrelatedChains) {
  // AR(1) with Phi = 0.9 has ESS/N about (1-Phi)/(1+Phi) ~ 5%.
  std::vector<std::vector<double>> Chains;
  for (uint64_t C = 0; C != 4; ++C)
    Chains.push_back(arChain(300 + C, 500, 0.9));
  double ESS = effectiveSampleSize(Chains);
  double Pooled = 4 * 500;
  EXPECT_LT(ESS, 0.3 * Pooled);
  EXPECT_GT(ESS, 0);
}

TEST(ConvergenceTest, WindowedAcceptanceRateUsesTrailingWindow) {
  // 10 rejects then 10 accepts.
  std::vector<uint8_t> Accepts(10, 0);
  Accepts.insert(Accepts.end(), 10, 1);
  EXPECT_EQ(windowedAcceptanceRate(Accepts, 10), 1.0);
  EXPECT_EQ(windowedAcceptanceRate(Accepts, 20), 0.5);
  // Window longer than the series uses everything.
  EXPECT_EQ(windowedAcceptanceRate(Accepts, 100), 0.5);
  EXPECT_EQ(windowedAcceptanceRate({}, 10), 0.0);
}

TEST(ConvergenceTest, ComputeConvergenceFlagsStuckChains) {
  // Chain 0 mixes; chain 1 froze (constant trace, no accepts).
  std::vector<std::vector<double>> LL = {iidChain(7, 400, -50.0, 1.0),
                                         std::vector<double>(400, -80.0)};
  std::vector<std::vector<uint8_t>> Accepts(2);
  Rng R(9);
  for (size_t I = 0; I != 400; ++I) {
    Accepts[0].push_back(R.uniform() < 0.3);
    Accepts[1].push_back(0);
  }
  ConvergenceReport Report = computeConvergence(LL, Accepts, 100);
  ASSERT_TRUE(Report.Computed);
  ASSERT_EQ(Report.WindowedAcceptRate.size(), 2u);
  EXPECT_GT(Report.WindowedAcceptRate[0], 0.1);
  EXPECT_EQ(Report.WindowedAcceptRate[1], 0.0);
  ASSERT_EQ(Report.StuckChains.size(), 1u);
  EXPECT_EQ(Report.StuckChains[0], 1u);
  // Frozen-vs-mixing chains cannot have mixed.
  EXPECT_GT(Report.SplitRHat, 1.05);

  std::string Render = Report.str();
  EXPECT_NE(Render.find("stuck"), std::string::npos);
}

TEST(ConvergenceTest, ComputeConvergenceCleanRun) {
  std::vector<std::vector<double>> LL;
  std::vector<std::vector<uint8_t>> Accepts;
  Rng R(11);
  for (uint64_t C = 0; C != 4; ++C) {
    LL.push_back(iidChain(400 + C, 500, -10.0, 0.5));
    std::vector<uint8_t> A;
    for (size_t I = 0; I != 500; ++I)
      A.push_back(R.uniform() < 0.4);
    Accepts.push_back(std::move(A));
  }
  ConvergenceReport Report = computeConvergence(LL, Accepts, 200);
  ASSERT_TRUE(Report.Computed);
  EXPECT_TRUE(Report.StuckChains.empty());
  EXPECT_LT(Report.SplitRHat, 1.05);
  EXPECT_GT(Report.ESS, 100.0);
  EXPECT_EQ(Report.Window, 200u);
}

TEST(ConvergenceTest, EmptyInputYieldsUncomputedReport) {
  ConvergenceReport Report = computeConvergence({}, {}, 200);
  EXPECT_FALSE(Report.Computed);
}
