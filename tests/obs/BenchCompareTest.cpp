//===- tests/obs/BenchCompareTest.cpp - bench-diff comparator tests -------===//

#include "obs/BenchCompare.h"

#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace psketch;

namespace {

BenchDiffResult diff(const std::string &OldText, const std::string &NewText,
                     double Tolerance = 0.15) {
  std::string Err;
  auto Old = parseJson(OldText, Err);
  EXPECT_TRUE(Old) << Err;
  auto New = parseJson(NewText, Err);
  EXPECT_TRUE(New) << Err;
  return compareBenchReports(*Old, *New, Tolerance);
}

const BenchDeltaRow *findRow(const BenchDiffResult &R,
                             const std::string &Path) {
  for (const BenchDeltaRow &Row : R.Rows)
    if (Row.Path == Path)
      return &Row;
  return nullptr;
}

} // namespace

TEST(BenchCompareTest, DirectionClassifier) {
  EXPECT_EQ(benchMetricDirection("mog_per_100s"), 1);
  EXPECT_EQ(benchMetricDirection("rows_per_sec"), 1);
  EXPECT_EQ(benchMetricDirection("speedup"), 1);
  EXPECT_EQ(benchMetricDirection("speedup_min"), 1);
  EXPECT_EQ(benchMetricDirection("compile_seconds"), -1);
  EXPECT_EQ(benchMetricDirection("eval_ns"), -1);
  EXPECT_EQ(benchMetricDirection("best_ll"), 0);
  EXPECT_EQ(benchMetricDirection("iterations"), 0);
  EXPECT_EQ(benchMetricDirection("cache_hit_rate"), 0);
}

TEST(BenchCompareTest, IdenticalFilesPass) {
  std::string Doc = R"({"bench":"x","a_per_100s":100,"b_seconds":2})";
  BenchDiffResult R = diff(Doc, Doc);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.passed());
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_EQ(R.Gated, 2u);
}

TEST(BenchCompareTest, ThroughputDropBeyondToleranceRegresses) {
  BenchDiffResult R = diff(R"({"bench":"x","a_per_100s":100})",
                           R"({"bench":"x","a_per_100s":80})");
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.passed());
  EXPECT_EQ(R.Regressions, 1u);
  const BenchDeltaRow *Row = findRow(R, "a_per_100s");
  ASSERT_NE(Row, nullptr);
  EXPECT_TRUE(Row->Regressed);
  EXPECT_NEAR(Row->Delta, -0.2, 1e-12);
}

TEST(BenchCompareTest, ThroughputDropWithinToleranceIsOk) {
  BenchDiffResult R = diff(R"({"bench":"x","a_per_100s":100})",
                           R"({"bench":"x","a_per_100s":90})");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.passed());
  EXPECT_EQ(R.Regressions, 0u);
}

TEST(BenchCompareTest, LatencyIncreaseRegressesAndDecreaseImproves) {
  BenchDiffResult Up = diff(R"({"bench":"x","run_seconds":1.0})",
                            R"({"bench":"x","run_seconds":1.5})");
  ASSERT_TRUE(Up.Ok);
  EXPECT_EQ(Up.Regressions, 1u);

  BenchDiffResult Down = diff(R"({"bench":"x","run_seconds":1.5})",
                              R"({"bench":"x","run_seconds":1.0})");
  ASSERT_TRUE(Down.Ok);
  EXPECT_EQ(Down.Regressions, 0u);
  EXPECT_EQ(Down.Improvements, 1u);
}

TEST(BenchCompareTest, InformationalMetricsNeverGate) {
  BenchDiffResult R = diff(R"({"bench":"x","best_ll":-100})",
                           R"({"bench":"x","best_ll":-99999})");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.passed());
  EXPECT_EQ(R.Gated, 0u);
}

TEST(BenchCompareTest, BitIdenticalFlipToFalseRegresses) {
  BenchDiffResult R =
      diff(R"({"bench":"x","best_ll_bit_identical":true})",
           R"({"bench":"x","best_ll_bit_identical":false})");
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.passed());
  EXPECT_EQ(R.Regressions, 1u);
  // The flip back to true is fine.
  BenchDiffResult Back =
      diff(R"({"bench":"x","best_ll_bit_identical":false})",
           R"({"bench":"x","best_ll_bit_identical":true})");
  EXPECT_TRUE(Back.passed());
}

TEST(BenchCompareTest, ArraysMatchByNameNotIndex) {
  // Same sections, different order: must pair A with A and B with B.
  BenchDiffResult R = diff(
      R"({"bench":"x","benchmarks":[
            {"name":"A","mog_per_100s":100},
            {"name":"B","mog_per_100s":200}]})",
      R"({"bench":"x","benchmarks":[
            {"name":"B","mog_per_100s":200},
            {"name":"A","mog_per_100s":100}]})");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.passed());
  const BenchDeltaRow *A = findRow(R, "benchmarks[A].mog_per_100s");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->OldValue, 100.0);
  EXPECT_EQ(A->NewValue, 100.0);
}

TEST(BenchCompareTest, MissingSectionIsANoteNotACrash) {
  BenchDiffResult R = diff(
      R"({"bench":"x","a_per_100s":1,"gone_per_100s":5})",
      R"({"bench":"x","a_per_100s":1,"added_per_100s":9})");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.passed());
  bool SawMissing = false, SawAdded = false;
  for (const std::string &N : R.Notes) {
    SawMissing |= N.find("gone_per_100s") != std::string::npos;
    SawAdded |= N.find("added_per_100s") != std::string::npos;
  }
  EXPECT_TRUE(SawMissing);
  EXPECT_TRUE(SawAdded);
}

TEST(BenchCompareTest, DifferentBenchNamesRefuse) {
  BenchDiffResult R = diff(R"({"bench":"figure8"})", R"({"bench":"table1"})");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("figure8"), std::string::npos);
  EXPECT_NE(R.Error.find("table1"), std::string::npos);
}

TEST(BenchCompareTest, SchemaVersionRules) {
  // Absent on either side: legacy, accepted.
  EXPECT_TRUE(diff(R"({"bench":"x"})",
                   R"({"bench":"x","schema_version":1})")
                  .Ok);
  // Declared and matching: accepted.
  EXPECT_TRUE(diff(R"({"bench":"x","schema_version":1})",
                   R"({"bench":"x","schema_version":1})")
                  .Ok);
  // Declared and mismatched: refused with a clear error.
  BenchDiffResult R = diff(R"({"bench":"x","schema_version":1})",
                           R"({"bench":"x","schema_version":99})");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("schema_version"), std::string::npos);
}

TEST(BenchCompareTest, ZeroBaselineIsInformational) {
  BenchDiffResult R = diff(R"({"bench":"x","a_per_100s":0})",
                           R"({"bench":"x","a_per_100s":50})");
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(R.passed());
  EXPECT_EQ(R.Gated, 0u);
}

TEST(BenchCompareTest, ToleranceIsConfigurable) {
  // 10% drop: regresses at 5% tolerance, passes at 15%.
  EXPECT_FALSE(diff(R"({"bench":"x","a_per_100s":100})",
                    R"({"bench":"x","a_per_100s":90})", 0.05)
                   .passed());
  EXPECT_TRUE(diff(R"({"bench":"x","a_per_100s":100})",
                   R"({"bench":"x","a_per_100s":90})", 0.15)
                  .passed());
}

TEST(BenchCompareTest, UnreadableFileReportsPath) {
  BenchDiffResult R =
      compareBenchFiles("/nonexistent/old.json", "/nonexistent/new.json",
                        0.15);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("/nonexistent/old.json"), std::string::npos);
}

TEST(BenchCompareTest, FormatMentionsVerdictAndCounts) {
  BenchDiffResult R = diff(R"({"bench":"x","a_per_100s":100})",
                           R"({"bench":"x","a_per_100s":50})");
  std::string Text = formatBenchDiff(R, 0.15);
  EXPECT_NE(Text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(Text.find("FAIL"), std::string::npos);
  BenchDiffResult OkR = diff(R"({"bench":"x","a_per_100s":100})",
                             R"({"bench":"x","a_per_100s":100})");
  EXPECT_NE(formatBenchDiff(OkR, 0.15).find("PASS"), std::string::npos);
}
