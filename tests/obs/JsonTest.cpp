//===- tests/obs/JsonTest.cpp - JSON writer/parser unit tests -------------===//

#include "obs/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace psketch;

namespace {

JsonValue parseOk(const std::string &Text) {
  std::string Err;
  auto V = parseJson(Text, Err);
  EXPECT_TRUE(V) << Err;
  return V ? *V : JsonValue();
}

} // namespace

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonTest, NumbersRoundTripExactly) {
  for (double V : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e-300, 1e300,
                   -123456.789012345}) {
    std::string Text = jsonNumber(V);
    JsonValue P = parseOk(Text);
    ASSERT_EQ(P.kind(), JsonValue::Kind::Number) << Text;
    EXPECT_EQ(P.number(), V) << Text;
  }
}

TEST(JsonTest, NonFiniteNumbersUseSentinelStrings) {
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "\"inf\"");
  EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
            "\"nan\"");

  // getNumber converts the sentinels back.
  JsonValue V = parseOk(R"({"a": "inf", "b": "-inf", "c": "nan"})");
  ASSERT_TRUE(V.getNumber("a"));
  EXPECT_TRUE(std::isinf(*V.getNumber("a")) && *V.getNumber("a") > 0);
  ASSERT_TRUE(V.getNumber("b"));
  EXPECT_TRUE(std::isinf(*V.getNumber("b")) && *V.getNumber("b") < 0);
  ASSERT_TRUE(V.getNumber("c"));
  EXPECT_TRUE(std::isnan(*V.getNumber("c")));
}

TEST(JsonTest, ParsesNestedDocuments) {
  JsonValue V = parseOk(
      R"({"name": "x", "ok": true, "none": null,
          "arr": [1, 2.5, "s", false], "obj": {"k": -3}})");
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.getString("name"), "x");
  EXPECT_EQ(V.getBool("ok"), true);
  ASSERT_TRUE(V.get("none"));
  EXPECT_EQ(V.get("none")->kind(), JsonValue::Kind::Null);
  const JsonValue *Arr = V.get("arr");
  ASSERT_TRUE(Arr && Arr->isArray());
  ASSERT_EQ(Arr->array().size(), 4u);
  EXPECT_EQ(Arr->array()[1].number(), 2.5);
  EXPECT_EQ(Arr->array()[2].str(), "s");
  const JsonValue *Obj = V.get("obj");
  ASSERT_TRUE(Obj && Obj->isObject());
  EXPECT_EQ(Obj->getNumber("k"), -3.0);
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(parseJson("{", Err));
  EXPECT_FALSE(parseJson("[1,]", Err));
  EXPECT_FALSE(parseJson("{\"a\" 1}", Err));
  EXPECT_FALSE(parseJson("tru", Err));
  EXPECT_FALSE(parseJson("", Err));
  // Trailing garbage after a complete document is an error too.
  EXPECT_FALSE(parseJson("{} x", Err));
  EXPECT_NE(Err.find("offset"), std::string::npos);
}

TEST(JsonTest, MissingMembersReturnNullopt) {
  JsonValue V = parseOk(R"({"a": 1})");
  EXPECT_FALSE(V.getNumber("missing"));
  EXPECT_FALSE(V.getString("a")); // wrong kind
  EXPECT_FALSE(V.getBool("a"));
  EXPECT_EQ(V.get("missing"), nullptr);
}

TEST(JsonTest, WriterProducesParsableNestedOutput) {
  JsonWriter W;
  W.beginObject();
  W.field("seed", uint64_t(42));
  W.field("name", "TrueSkill");
  W.field("ok", true);
  W.field("ll", -86.5);
  W.beginArray("rows");
  W.element(1.0);
  W.element(std::string("two"));
  W.endArray();
  W.beginObject("nested");
  W.field("inf", std::numeric_limits<double>::infinity());
  W.endObject();
  W.endObject();

  JsonValue V = parseOk(W.str());
  EXPECT_EQ(V.getNumber("seed"), 42.0);
  EXPECT_EQ(V.getString("name"), "TrueSkill");
  EXPECT_EQ(V.getBool("ok"), true);
  EXPECT_EQ(V.getNumber("ll"), -86.5);
  ASSERT_TRUE(V.get("rows"));
  EXPECT_EQ(V.get("rows")->array().size(), 2u);
  ASSERT_TRUE(V.get("nested"));
  EXPECT_TRUE(std::isinf(*V.get("nested")->getNumber("inf")));
}

TEST(JsonTest, LargeUint64FieldsSurviveTextually) {
  // Fingerprints are 64-bit; they are written as integer text (not via
  // double) so the textual form is exact.
  JsonWriter W;
  W.beginObject();
  W.field("fp", uint64_t(0xdeadbeefcafebabeull));
  W.endObject();
  EXPECT_NE(W.str().find("16045690984503098046"), std::string::npos);
}
