//===- tests/api/SessionTest.cpp - Stable Session facade tests ------------===//
//
// The Session facade is the one entry point the CLI, the benches and
// embedders share.  It must (a) produce byte-identical results to
// driving the Synthesizer directly, (b) map every failure mode to a
// structured SessionError with the CLI's exit code, and (c) carry the
// checkpoint / resume / cancellation semantics end to end.
//
//===----------------------------------------------------------------------===//

#include "api/Session.h"

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace psketch;

namespace {

std::unique_ptr<Program> parseP(const std::string &Source) {
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

Dataset makeData(const std::string &TargetSource, size_t Rows,
                 uint64_t Seed) {
  DiagEngine Diags;
  auto Target = parseP(TargetSource);
  EXPECT_TRUE(typeCheck(*Target, Diags)) << Diags.str();
  auto LP = lowerProgram(*Target, {}, Diags);
  EXPECT_TRUE(LP) << Diags.str();
  Rng R(Seed);
  return generateDataset(*LP, Rows, R);
}

const char *GaussTarget = R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)";

const char *GaussSketch = R"(
program S() {
  x: real;
  x = ??;
  return x;
}
)";

} // namespace

TEST(SessionTest, MatchesDirectSynthesizerBitwise) {
  Dataset Data = makeData(GaussTarget, 120, 61);
  auto Sketch = parseP(GaussSketch);

  SynthesisConfig Config;
  Config.Iterations = 300;
  Config.Chains = 2;
  Config.Seed = 17;
  Synthesizer Direct(*Sketch, {}, Data, Config);
  ASSERT_TRUE(Direct.valid());
  SynthesisResult Want = Direct.run();

  Session S;
  S.sketch(*Sketch).data(Data).iterations(300).chains(2).seed(17);
  Session::Outcome O = S.run();
  ASSERT_TRUE(O.ok()) << O.Error.Message;
  EXPECT_EQ(O.exit(), ToolExit::Success);
  ASSERT_TRUE(O.Result.Succeeded);
  EXPECT_EQ(Want.BestLogLikelihood, O.Result.BestLogLikelihood);
  EXPECT_EQ(Want.Stats.Proposed, O.Result.Stats.Proposed);
  EXPECT_EQ(Want.Stats.Accepted, O.Result.Stats.Accepted);
  EXPECT_EQ(toString(*Want.BestCompletions[0]),
            toString(*O.Result.BestCompletions[0]));
  // The manifest pins the run identity embedders log alongside results.
  EXPECT_EQ(O.Manifest.Seed, 17u);
  EXPECT_EQ(O.Manifest.Chains, 2u);
  EXPECT_EQ(O.Manifest.DatasetFingerprint, Data.fingerprint());
}

TEST(SessionTest, SketchSourceAndRepeatedRunsWork) {
  Dataset Data = makeData(GaussTarget, 120, 62);
  Session S;
  S.sketchSource(GaussSketch, "inline.psk").data(Data);
  S.iterations(200).chains(1).seed(5);
  Session::Outcome A = S.run();
  ASSERT_TRUE(A.ok()) << A.Error.Message;
  // Same Session, same problem: run() is repeatable and deterministic.
  Session::Outcome B = S.run();
  ASSERT_TRUE(B.ok()) << B.Error.Message;
  EXPECT_EQ(A.Result.BestLogLikelihood, B.Result.BestLogLikelihood);
  EXPECT_EQ(A.Result.Stats.Proposed, B.Result.Stats.Proposed);
}

TEST(SessionTest, ConfigureSyncsGroupedViews) {
  SynthesisConfig Config;
  Config.Threads = 4;
  Config.RowThreads = 2;
  Config.SpeculateDepth = 3;
  Config.Budget.DeadlineSeconds = 9;
  Config.CheckpointPath = "x.ckpt";
  Config.CheckpointEvery = 50;

  Session S;
  S.configure(Config);
  EXPECT_EQ(S.threading().Threads, 4u);
  EXPECT_EQ(S.threading().RowThreads, 2u);
  EXPECT_EQ(S.threading().SpeculateDepth, 3u);
  EXPECT_EQ(S.budget().DeadlineSeconds, 9.0);
  EXPECT_EQ(S.budget().CheckpointPath, "x.ckpt");
  EXPECT_EQ(S.budget().CheckpointEvery, 50u);

  // And the groups own their fields afterwards: edits win over the
  // stale config copy at run() time.
  S.threading().Threads = 1;
  EXPECT_EQ(S.config().Threads, 4u); // Folded in only at run().
}

//===----------------------------------------------------------------------===//
// Structured failures and exit-code mapping.
//===----------------------------------------------------------------------===//

TEST(SessionTest, MissingSketchIsSketchError) {
  Session S;
  Dataset Data = makeData(GaussTarget, 20, 63);
  S.data(Data);
  Session::Outcome O = S.run();
  EXPECT_EQ(O.Error.K, SessionError::Kind::Sketch);
  EXPECT_EQ(O.exit(), ToolExit::Failure);
}

TEST(SessionTest, UnreadableSketchFileIsSketchError) {
  Session S;
  Dataset Data = makeData(GaussTarget, 20, 63);
  S.sketchFile("/nonexistent/model.psk").data(Data);
  Session::Outcome O = S.run();
  EXPECT_EQ(O.Error.K, SessionError::Kind::Sketch);
  EXPECT_NE(O.Error.Message.find("cannot open"), std::string::npos);
}

TEST(SessionTest, ParseFailureIsSketchErrorWithDiagnostics) {
  Session S;
  Dataset Data = makeData(GaussTarget, 20, 63);
  S.sketchSource("program Broken( {", "broken.psk").data(Data);
  Session::Outcome O = S.run();
  EXPECT_EQ(O.Error.K, SessionError::Kind::Sketch);
  EXPECT_NE(O.Error.Message.find("broken.psk"), std::string::npos);
}

TEST(SessionTest, MissingDataIsDataError) {
  Session S;
  S.sketchSource(GaussSketch);
  Session::Outcome O = S.run();
  EXPECT_EQ(O.Error.K, SessionError::Kind::Data);
}

TEST(SessionTest, InvalidConfigIsUsageExit) {
  Dataset Data = makeData(GaussTarget, 20, 63);
  Session S;
  S.sketchSource(GaussSketch).data(Data);
  S.config().Mut.GeomP = 7.0; // Outside (0, 1].
  Session::Outcome O = S.run();
  EXPECT_EQ(O.Error.K, SessionError::Kind::Config);
  EXPECT_EQ(O.exit(), ToolExit::Usage);
  EXPECT_NE(O.Error.Message.find("--geom-p"), std::string::npos);
}

TEST(SessionTest, BadResumeFileIsCheckpointError) {
  std::string Path = ::testing::TempDir() + "/session_garbage.ckpt";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "not a checkpoint";
  }
  Dataset Data = makeData(GaussTarget, 20, 63);
  Session S;
  S.sketchSource(GaussSketch).data(Data);
  S.budget().ResumePath = Path;
  Session::Outcome O = S.run();
  EXPECT_EQ(O.Error.K, SessionError::Kind::Checkpoint);
  EXPECT_EQ(O.exit(), ToolExit::Failure);
  EXPECT_NE(O.Error.Message.find(Path), std::string::npos);
}

TEST(SessionTest, ValidationWarningsSurfaceOnTheOutcome) {
  Dataset Data = makeData(GaussTarget, 120, 64);
  Session S;
  S.sketchSource(GaussSketch).data(Data).iterations(50).seed(3).chains(2);
  S.threading().Threads = 2;
  S.threading().SpeculateDepth = 2; // Workers all consumed by chains.
  Session::Outcome O = S.run();
  ASSERT_TRUE(O.ok()) << O.Error.Message;
  EXPECT_FALSE(O.Warnings.empty());
}

//===----------------------------------------------------------------------===//
// Durability through the facade.
//===----------------------------------------------------------------------===//

TEST(SessionTest, CancelTokenMapsToInterruptedExit) {
  Dataset Data = makeData(GaussTarget, 120, 65);
  Session S;
  S.sketchSource(GaussSketch).data(Data).iterations(500000).chains(1)
      .seed(9);
  auto Token = std::make_shared<CancelToken>();
  Token->cancel();
  S.budget().Cancel = Token;
  Session::Outcome O = S.run();
  // Init still found a completion, so the run "succeeded" partially
  // but reports the interruption through the exit code.
  ASSERT_TRUE(O.ok()) << O.Error.Message;
  EXPECT_EQ(O.Result.Stop, StopReason::Cancelled);
  EXPECT_TRUE(O.Result.interrupted());
  EXPECT_EQ(O.exit(), ToolExit::Interrupted);
}

TEST(SessionTest, CheckpointResumeRoundTripsThroughTheFacade) {
  Dataset Data = makeData(GaussTarget, 120, 66);
  std::string Ckpt = ::testing::TempDir() + "/session_resume.ckpt";
  std::remove(Ckpt.c_str());

  // Uninterrupted reference.
  Session Ref;
  Ref.sketchSource(GaussSketch).data(Data).iterations(200).chains(2)
      .seed(31);
  Session::Outcome Full = Ref.run();
  ASSERT_TRUE(Full.ok()) << Full.Error.Message;

  // Interrupted run writing checkpoints.
  Session Part;
  Part.sketchSource(GaussSketch).data(Data).iterations(200).chains(2)
      .seed(31);
  Part.budget().CheckpointPath = Ckpt;
  auto Token = std::make_shared<CancelToken>();
  Part.budget().Cancel = Token;
  Part.config().ProgressEvery = 60;
  Part.config().Progress =
      [Token](const SynthesisConfig::ProgressUpdate &) { Token->cancel(); };
  Session::Outcome Interrupted = Part.run();
  ASSERT_TRUE(Interrupted.ok()) << Interrupted.Error.Message;
  EXPECT_EQ(Interrupted.exit(), ToolExit::Interrupted);
  ASSERT_TRUE(Interrupted.Result.CheckpointError.empty())
      << Interrupted.Result.CheckpointError;

  // Resume through the facade; the grouped ResumePath loads the file.
  Session Rest;
  Rest.sketchSource(GaussSketch).data(Data).iterations(200).chains(2)
      .seed(31);
  Rest.budget().ResumePath = Ckpt;
  Session::Outcome Resumed = Rest.run();
  ASSERT_TRUE(Resumed.ok()) << Resumed.Error.Message;
  EXPECT_EQ(Resumed.exit(), ToolExit::Success);
  EXPECT_EQ(Full.Result.BestLogLikelihood, Resumed.Result.BestLogLikelihood);
  EXPECT_EQ(Full.Result.Stats.Proposed, Resumed.Result.Stats.Proposed);
  EXPECT_EQ(Full.Result.Stats.Accepted, Resumed.Result.Stats.Accepted);
  EXPECT_EQ(toString(*Full.Result.BestCompletions[0]),
            toString(*Resumed.Result.BestCompletions[0]));
}

TEST(SessionTest, TelemetryPathsWriteSideOutputs) {
  Dataset Data = makeData(GaussTarget, 120, 67);
  std::string TracePath = ::testing::TempDir() + "/session_trace.jsonl";
  std::string MetricsPath = ::testing::TempDir() + "/session_metrics.json";
  std::remove(TracePath.c_str());
  std::remove(MetricsPath.c_str());

  Session S;
  S.sketchSource(GaussSketch, "telemetry.psk").data(Data);
  S.iterations(80).chains(1).seed(13);
  S.telemetry().TraceOut = TracePath;
  S.telemetry().MetricsOut = MetricsPath;
  Session::Outcome O = S.run();
  ASSERT_TRUE(O.ok()) << O.Error.Message;

  std::ifstream Trace(TracePath);
  ASSERT_TRUE(Trace.good());
  std::string FirstLine;
  ASSERT_TRUE(std::getline(Trace, FirstLine));
  EXPECT_NE(FirstLine.find("telemetry.psk"), std::string::npos);
  size_t Events = 0;
  for (std::string Line; std::getline(Trace, Line);)
    ++Events;
  EXPECT_EQ(Events, 80u);

  std::ifstream Metrics(MetricsPath);
  ASSERT_TRUE(Metrics.good());
  std::string Json((std::istreambuf_iterator<char>(Metrics)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Json.find("{"), std::string::npos);
}
