//===- tests/symbolic/AlgebraPropertyTest.cpp - Randomized properties -----===//
//
// Property-style sweeps over randomly generated mixtures: densities
// integrate to one, comparison probabilities are complementary, Monte
// Carlo statistics of the concrete distributions agree with the
// symbolic results for the *precise* (unstarred) Figure 6 rules.
//
//===----------------------------------------------------------------------===//

#include "symbolic/Algebra.h"

#include "support/Rng.h"
#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

struct RandomCase {
  uint64_t Seed;
};

class MixtureProperty : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override { R.seed(GetParam()); }

  /// A random constant-parameter mixture with 1-4 components.
  SymValue randomMixture() {
    unsigned N = unsigned(R.uniformInt(1, 4));
    std::vector<double> W(N);
    double Total = 0;
    for (double &X : W) {
      X = R.uniform(0.1, 1.0);
      Total += X;
    }
    std::vector<MoGComponent> Comps;
    for (unsigned I = 0; I != N; ++I)
      Comps.push_back({B.constant(W[I] / Total),
                       B.constant(R.uniform(-20, 20)),
                       B.constant(R.uniform(0.5, 5.0))});
    return SymValue::mog(Comps);
  }

  /// Numerically integrates exp(logDensityAt) over a wide support.
  double integratedMass(const SymValue &V) {
    const int Steps = 4000;
    const double Lo = -120, Hi = 120;
    double Step = (Hi - Lo) / Steps;
    double Mass = 0;
    for (int I = 0; I <= Steps; ++I) {
      double X = Lo + Step * I;
      Mass += std::exp(B.eval(A.logDensityAt(V, B.constant(X)), {}));
    }
    return Mass * Step;
  }

  /// Draws one sample from a constant-parameter mixture.
  double sampleMixture(const SymValue &V) {
    std::vector<double> W;
    for (const MoGComponent &C : V.components()) {
      double X = 0;
      B.isConst(C.W, X);
      W.push_back(X);
    }
    size_t I = R.weightedIndex(W);
    double Mu = 0, Sigma = 0;
    B.isConst(V.components()[I].Mu, Mu);
    B.isConst(V.components()[I].Sigma, Sigma);
    return R.gaussian(Mu, Sigma);
  }

  double constOf(NumId Id) {
    double V = 0;
    EXPECT_TRUE(B.isConst(Id, V));
    return V;
  }

  NumExprBuilder B;
  MoGAlgebra A{B};
  Rng R{0};
};

TEST_P(MixtureProperty, DensityIntegratesToOne) {
  SymValue M = randomMixture();
  EXPECT_NEAR(integratedMass(M), 1.0, 0.02);
}

TEST_P(MixtureProperty, SumDensityIntegratesToOne) {
  SymValue S = A.add(randomMixture(), randomMixture());
  EXPECT_NEAR(integratedMass(S), 1.0, 0.02);
}

TEST_P(MixtureProperty, IteDensityIntegratesToOne) {
  SymValue S = A.ite(SymValue::bern(B.constant(R.uniform(0.05, 0.95))),
                     randomMixture(), randomMixture());
  EXPECT_NEAR(integratedMass(S), 1.0, 0.02);
}

TEST_P(MixtureProperty, AdditionIsCommutativeInDistribution) {
  SymValue X = randomMixture(), Y = randomMixture();
  SymValue S1 = A.add(X, Y), S2 = A.add(Y, X);
  for (double T : {-15.0, -3.0, 0.0, 4.0, 18.0}) {
    double D1 = B.eval(A.logDensityAt(S1, B.constant(T)), {});
    double D2 = B.eval(A.logDensityAt(S2, B.constant(T)), {});
    EXPECT_NEAR(D1, D2, 1e-9);
  }
}

TEST_P(MixtureProperty, GreaterProbabilitiesAreComplementary) {
  SymValue X = randomMixture(), Y = randomMixture();
  double P = constOf(A.greater(X, Y).bernProb());
  double Q = constOf(A.greater(Y, X).bernProb());
  EXPECT_GE(P, 0.0);
  EXPECT_LE(P, 1.0);
  // Continuous distributions: ties have measure zero.
  EXPECT_NEAR(P + Q, 1.0, 1e-9);
}

TEST_P(MixtureProperty, GreaterMatchesMonteCarlo) {
  SymValue X = randomMixture(), Y = randomMixture();
  double P = constOf(A.greater(X, Y).bernProb());
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I)
    Hits += sampleMixture(X) > sampleMixture(Y);
  EXPECT_NEAR(P, double(Hits) / N, 0.02);
}

TEST_P(MixtureProperty, SumMatchesMonteCarloMoments) {
  SymValue X = randomMixture(), Y = randomMixture();
  SymValue S = A.add(X, Y);
  // Symbolic mean of the sum.
  double SymMean = constOf(A.meanOf(S).knownValue());
  double McMean = 0;
  const int N = 40000;
  for (int I = 0; I != N; ++I)
    McMean += sampleMixture(X) + sampleMixture(Y);
  McMean /= N;
  EXPECT_NEAR(SymMean, McMean, 0.25);
}

TEST_P(MixtureProperty, CompoundGaussianMatchesMonteCarlo) {
  SymValue Mean = randomMixture();
  double Sigma = R.uniform(0.5, 3.0);
  SymValue S = A.gaussian(Mean, SymValue::known(B.constant(Sigma)));
  double SymMean = constOf(A.meanOf(S).knownValue());
  double McMean = 0;
  const int N = 40000;
  for (int I = 0; I != N; ++I)
    McMean += R.gaussian(sampleMixture(Mean), Sigma);
  McMean /= N;
  EXPECT_NEAR(SymMean, McMean, 0.25);
}

TEST_P(MixtureProperty, NotNotIsIdentity) {
  double P = R.uniform(0.0, 1.0);
  SymValue V = SymValue::bern(B.constant(P));
  EXPECT_NEAR(constOf(A.logicalNot(A.logicalNot(V)).bernProb()), P,
              1e-12);
}

TEST_P(MixtureProperty, DeMorganUnderIndependence) {
  double P = R.uniform(0.0, 1.0), Q = R.uniform(0.0, 1.0);
  SymValue VP = SymValue::bern(B.constant(P));
  SymValue VQ = SymValue::bern(B.constant(Q));
  double Lhs = constOf(A.logicalNot(A.logicalAnd(VP, VQ)).bernProb());
  double Rhs = constOf(
      A.logicalOr(A.logicalNot(VP), A.logicalNot(VQ)).bernProb());
  EXPECT_NEAR(Lhs, Rhs, 1e-12);
}

TEST_P(MixtureProperty, IteWeightsAreConvex) {
  double P = R.uniform(0.05, 0.95);
  SymValue S = A.ite(SymValue::bern(B.constant(P)), randomMixture(),
                     randomMixture());
  ASSERT_TRUE(S.isMoG());
  double Total = 0;
  for (const MoGComponent &C : S.components())
    Total += constOf(C.W);
  EXPECT_NEAR(Total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixtureProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

} // namespace
