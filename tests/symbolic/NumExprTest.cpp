//===- tests/symbolic/NumExprTest.cpp - NumExpr builder unit tests --------===//

#include "symbolic/NumExpr.h"

#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

TEST(NumExprTest, HashConsingDeduplicates) {
  NumExprBuilder B;
  NumId A = B.add(B.dataRef(0), B.constant(1.0));
  NumId C = B.add(B.dataRef(0), B.constant(1.0));
  EXPECT_EQ(A, C);
  size_t Before = B.size();
  B.add(B.dataRef(0), B.constant(1.0));
  EXPECT_EQ(B.size(), Before);
}

TEST(NumExprTest, ConstantFoldingBinary) {
  NumExprBuilder B;
  double V;
  EXPECT_TRUE(B.isConst(B.add(B.constant(2), B.constant(3)), V));
  EXPECT_DOUBLE_EQ(V, 5.0);
  EXPECT_TRUE(B.isConst(B.mul(B.constant(4), B.constant(0.5)), V));
  EXPECT_DOUBLE_EQ(V, 2.0);
  EXPECT_TRUE(B.isConst(B.sub(B.constant(1), B.constant(4)), V));
  EXPECT_DOUBLE_EQ(V, -3.0);
  EXPECT_TRUE(B.isConst(B.div(B.constant(9), B.constant(3)), V));
  EXPECT_DOUBLE_EQ(V, 3.0);
}

TEST(NumExprTest, ConstantFoldingUnary) {
  NumExprBuilder B;
  double V;
  EXPECT_TRUE(B.isConst(B.neg(B.constant(2)), V));
  EXPECT_DOUBLE_EQ(V, -2.0);
  EXPECT_TRUE(B.isConst(B.exp(B.constant(0)), V));
  EXPECT_DOUBLE_EQ(V, 1.0);
  EXPECT_TRUE(B.isConst(B.sqrt(B.constant(9)), V));
  EXPECT_DOUBLE_EQ(V, 3.0);
  EXPECT_TRUE(B.isConst(B.abs(B.constant(-7)), V));
  EXPECT_DOUBLE_EQ(V, 7.0);
  EXPECT_TRUE(B.isConst(B.erf(B.constant(0)), V));
  EXPECT_DOUBLE_EQ(V, 0.0);
}

TEST(NumExprTest, AlgebraicIdentities) {
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  EXPECT_EQ(B.add(X, B.constant(0)), X);
  EXPECT_EQ(B.add(B.constant(0), X), X);
  EXPECT_EQ(B.mul(X, B.constant(1)), X);
  EXPECT_EQ(B.mul(B.constant(1), X), X);
  double V;
  EXPECT_TRUE(B.isConst(B.mul(X, B.constant(0)), V));
  EXPECT_DOUBLE_EQ(V, 0.0);
  EXPECT_EQ(B.sub(X, B.constant(0)), X);
  EXPECT_TRUE(B.isConst(B.sub(X, X), V));
  EXPECT_DOUBLE_EQ(V, 0.0);
  EXPECT_EQ(B.neg(B.neg(X)), X);
  EXPECT_EQ(B.div(X, B.constant(1)), X);
  EXPECT_EQ(B.max(X, X), X);
  EXPECT_TRUE(B.isConst(B.eq(X, X), V));
  EXPECT_DOUBLE_EQ(V, 1.0);
}

TEST(NumExprTest, EvalAgainstRow) {
  NumExprBuilder B;
  // (x0 - 2) * x1 + sqrt(x1)
  NumId E = B.add(B.mul(B.sub(B.dataRef(0), B.constant(2.0)), B.dataRef(1)),
                  B.sqrt(B.dataRef(1)));
  EXPECT_DOUBLE_EQ(B.eval(E, {5.0, 4.0}), 14.0);
}

TEST(NumExprTest, EvalComparisonOps) {
  NumExprBuilder B;
  NumId G = B.gt(B.dataRef(0), B.constant(1.0));
  EXPECT_DOUBLE_EQ(B.eval(G, {2.0}), 1.0);
  EXPECT_DOUBLE_EQ(B.eval(G, {0.5}), 0.0);
  NumId Q = B.eq(B.dataRef(0), B.constant(1.0));
  EXPECT_DOUBLE_EQ(B.eval(Q, {1.0}), 1.0);
  EXPECT_DOUBLE_EQ(B.eval(Q, {1.5}), 0.0);
}

TEST(NumExprTest, ClampProbBounds) {
  NumExprBuilder B;
  NumId P = B.clampProb(B.dataRef(0));
  EXPECT_DOUBLE_EQ(B.eval(P, {0.5}), 0.5);
  EXPECT_DOUBLE_EQ(B.eval(P, {-3.0}), TinyProb);
  EXPECT_DOUBLE_EQ(B.eval(P, {7.0}), 1.0 - 1e-15);
}

TEST(NumExprTest, GaussianLogPdfMatchesSupport) {
  NumExprBuilder B;
  NumId E = B.gaussianLogPdf(B.dataRef(0), B.constant(2.0),
                             B.constant(1.5));
  for (double X : {-1.0, 0.0, 2.0, 4.5})
    EXPECT_NEAR(B.eval(E, {X}), gaussianLogPdf(X, 2.0, 1.5), 1e-12);
}

TEST(NumExprTest, GaussianGreaterProbMatchesSupport) {
  NumExprBuilder B;
  NumId E = B.gaussianGreaterProb(B.dataRef(0), B.constant(1.0),
                                  B.dataRef(1), B.constant(2.0));
  EXPECT_NEAR(B.eval(E, {3.0, 1.0}),
              gaussianGreaterProb(3.0, 1.0, 1.0, 2.0), 1e-12);
  EXPECT_NEAR(B.eval(E, {0.0, 0.0}), 0.5, 1e-12);
}

TEST(NumExprTest, StrRendersReadably) {
  NumExprBuilder B;
  NumId E = B.add(B.dataRef(1), B.constant(2.0));
  EXPECT_EQ(B.str(E), "+($1, 2)");
}

TEST(NumExprTest, DataRefOutOfRowAsserts) {
  NumExprBuilder B;
  NumId E = B.dataRef(3);
  EXPECT_DOUBLE_EQ(B.eval(E, {0.0, 1.0, 2.0, 42.0}), 42.0);
}
