//===- tests/symbolic/SimplifyTest.cpp - NumExpr simplifier unit tests ----===//
//
// Per-rule checks of the IEEE-exactness contract (Simplify.h): every
// default-mode rewrite must be bitwise result-preserving for every
// input, including NaN, ±Inf and ±0; rules that cannot guarantee that
// must not fire.
//
//===----------------------------------------------------------------------===//

#include "symbolic/Simplify.h"

#include "support/Rng.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>

using namespace psketch;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();
const double NaN = std::numeric_limits<double>::quiet_NaN();

uint64_t bits(double X) {
  uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  return B;
}

/// Bitwise equality with the documented NaN tolerance: non-NaN results
/// must match exactly (including the sign of zero); NaN results must
/// both be NaN (sign/payload may differ across operand reorderings).
::testing::AssertionResult sameValue(double X, double Y) {
  if (std::isnan(X) && std::isnan(Y))
    return ::testing::AssertionSuccess();
  if (bits(X) == bits(Y))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << X << " (0x" << std::hex << bits(X) << ") vs " << Y << " (0x"
         << bits(Y) << ")";
}

} // namespace

TEST(SimplifyTest, DoubleNegationCancels) {
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Neg, 0, B.rawNode(NumOp::Neg, 0, X, 0), 0);
  SimplifyStats Stats;
  NumId S = simplifyNumExpr(B, Root, {}, &Stats);
  EXPECT_EQ(S, X);
  EXPECT_EQ(Stats.NodesIn, 3u);
  EXPECT_EQ(Stats.NodesOut, 1u);
  EXPECT_GE(Stats.Rewrites, 1u);
}

TEST(SimplifyTest, NegFeedingAddBecomesSub) {
  NumExprBuilder B;
  NumId A = B.dataRef(0), C = B.dataRef(1);
  // a + neg(b)  ->  a - b (IEEE defines subtraction that way).
  NumId Root =
      B.rawNode(NumOp::Add, 0, A, B.rawNode(NumOp::Neg, 0, C, 0));
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Sub);
  for (double X : {1.5, -0.0, 0.0, Inf, -Inf, NaN})
    for (double Y : {2.25, -0.0, 0.0, Inf, -Inf, NaN})
      EXPECT_TRUE(sameValue(B.eval(S, {X, Y}), B.eval(Root, {X, Y})))
          << "x=" << X << " y=" << Y;
}

TEST(SimplifyTest, NegOnLeftOfAddCommutesIntoSub) {
  NumExprBuilder B;
  NumId A = B.dataRef(0), C = B.dataRef(1);
  // neg(a) + b  ->  b - a; addition commutes value-exactly.
  NumId Root =
      B.rawNode(NumOp::Add, 0, B.rawNode(NumOp::Neg, 0, A, 0), C);
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Sub);
  for (double X : {1.5, 0.0, -0.0, Inf, -Inf, NaN})
    for (double Y : {0.5, 0.0, -0.0, Inf, -Inf, NaN})
      EXPECT_TRUE(sameValue(B.eval(S, {X, Y}), B.eval(Root, {X, Y})));
}

TEST(SimplifyTest, SubOfNegBecomesAdd) {
  NumExprBuilder B;
  NumId A = B.dataRef(0), C = B.dataRef(1);
  NumId Root =
      B.rawNode(NumOp::Sub, 0, A, B.rawNode(NumOp::Neg, 0, C, 0));
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Add);
  for (double X : {1.5, 0.0, -0.0, Inf, -Inf, NaN})
    for (double Y : {0.5, 0.0, -0.0, Inf, -Inf, NaN})
      EXPECT_TRUE(sameValue(B.eval(S, {X, Y}), B.eval(Root, {X, Y})));
}

TEST(SimplifyTest, MulByOneDropsForEveryValue) {
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Mul, 0, X, B.constant(1.0));
  EXPECT_EQ(simplifyNumExpr(B, Root), X);
  NumId RootL = B.rawNode(NumOp::Mul, 0, B.constant(1.0), X);
  EXPECT_EQ(simplifyNumExpr(B, RootL), X);
  NumId RootD = B.rawNode(NumOp::Div, 0, X, B.constant(1.0));
  EXPECT_EQ(simplifyNumExpr(B, RootD), X);
}

TEST(SimplifyTest, MulByZeroIsNotRewritten) {
  // x * 0 is NOT identically 0: Inf * 0 and NaN * 0 are NaN, and
  // (-5) * 0 is -0.  The rule must not fire.
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Mul, 0, X, B.constant(0.0));
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Mul);
  for (double V : {3.0, -5.0, Inf, -Inf, NaN})
    EXPECT_TRUE(sameValue(B.eval(S, {V}), B.eval(Root, {V})));
}

TEST(SimplifyTest, AddNegativeZeroDropsAlways) {
  // x + (-0) == x for every x, including x == -0 and x == NaN.
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Add, 0, X, B.constant(-0.0));
  EXPECT_EQ(simplifyNumExpr(B, Root), X);
}

TEST(SimplifyTest, AddPositiveZeroKeptWhenOperandMayBeNegZero) {
  // (-0) + (+0) is +0, so x + 0 -> x would flip the sign of zero when
  // x evaluates to -0.  A bare data reference can be -0.
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Add, 0, X, B.constant(0.0));
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Add);
  EXPECT_TRUE(sameValue(B.eval(S, {-0.0}), 0.0));
  EXPECT_FALSE(std::signbit(B.eval(S, {-0.0})));
}

TEST(SimplifyTest, AddPositiveZeroDropsWhenOperandNeverNegZero) {
  // abs(x) is never -0 (fabs clears the sign bit), so the identity is
  // exact there.
  NumExprBuilder B;
  NumId A = B.rawNode(NumOp::Abs, 0, B.dataRef(0), 0);
  NumId Root = B.rawNode(NumOp::Add, 0, A, B.constant(0.0));
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Abs);
}

TEST(SimplifyTest, SubPositiveZeroDropsAlways) {
  // x - (+0) == x for every x including -0 (IEEE: -0 - +0 = -0).
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Sub, 0, X, B.constant(0.0));
  EXPECT_EQ(simplifyNumExpr(B, Root), X);
}

TEST(SimplifyTest, SubNegativeZeroKeptWhenOperandMayBeNegZero) {
  // (-0) - (-0) is +0, so x - (-0) -> x is wrong when x can be -0.
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Sub, 0, X, B.constant(-0.0));
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Sub);
  EXPECT_FALSE(std::signbit(B.eval(S, {-0.0})));
}

TEST(SimplifyTest, SubOfEqualOperandsIsNotRewritten) {
  // x - x is NaN for x = Inf and NaN, not 0.
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Sub, 0, X, X);
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Sub);
  EXPECT_TRUE(std::isnan(B.eval(S, {Inf})));
}

TEST(SimplifyTest, ConstantsFold) {
  NumExprBuilder B;
  NumId Root =
      B.rawNode(NumOp::Mul, 0, B.constant(3.0),
                B.rawNode(NumOp::Add, 0, B.constant(1.5), B.constant(2.5)));
  NumId S = simplifyNumExpr(B, Root);
  ASSERT_EQ(B.node(S).Op, NumOp::Const);
  EXPECT_DOUBLE_EQ(B.node(S).Value, 12.0);
}

TEST(SimplifyTest, NegatedOperandsOfMulCancel) {
  NumExprBuilder B;
  NumId A = B.dataRef(0), C = B.dataRef(1);
  NumId Root = B.rawNode(NumOp::Mul, 0, B.rawNode(NumOp::Neg, 0, A, 0),
                         B.rawNode(NumOp::Neg, 0, C, 0));
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Mul);
  EXPECT_EQ(B.node(S).A, A);
  EXPECT_EQ(B.node(S).B, C);
  for (double X : {2.0, -0.0, Inf, NaN})
    for (double Y : {-3.0, 0.0, -Inf, NaN})
      EXPECT_TRUE(sameValue(B.eval(S, {X, Y}), B.eval(Root, {X, Y})));
}

TEST(SimplifyTest, MaxMinOfEqualOperandsCollapse) {
  NumExprBuilder B;
  NumId X = B.rawNode(NumOp::Mul, 0, B.dataRef(0), B.dataRef(1));
  EXPECT_EQ(simplifyNumExpr(B, B.rawNode(NumOp::Max, 0, X, X)), X);
  EXPECT_EQ(simplifyNumExpr(B, B.rawNode(NumOp::Min, 0, X, X)), X);
}

TEST(SimplifyTest, EqOfEqualOperandsIsNotRewritten) {
  // eq(x, x) is 0, not 1, when x is NaN.
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root = B.rawNode(NumOp::Eq, 0, X, X);
  NumId S = simplifyNumExpr(B, Root);
  EXPECT_EQ(B.node(S).Op, NumOp::Eq);
  EXPECT_DOUBLE_EQ(B.eval(S, {NaN}), 0.0);
}

TEST(SimplifyTest, AbsOfNegAndAbsOfAbs) {
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId AbsNeg =
      B.rawNode(NumOp::Abs, 0, B.rawNode(NumOp::Neg, 0, X, 0), 0);
  NumId S = simplifyNumExpr(B, AbsNeg);
  EXPECT_EQ(B.node(S).Op, NumOp::Abs);
  EXPECT_EQ(B.node(S).A, X);
  NumId AbsAbs = B.rawNode(NumOp::Abs, 0, S, 0);
  EXPECT_EQ(simplifyNumExpr(B, AbsAbs), S);
}

TEST(SimplifyTest, LogExpInverseOnlyInFastMath) {
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  NumId Root =
      B.rawNode(NumOp::Log, 0, B.rawNode(NumOp::Exp, 0, X, 0), 0);
  // Default: log(exp x) can differ from x by a rounding, so no rewrite.
  EXPECT_EQ(B.node(simplifyNumExpr(B, Root)).Op, NumOp::Log);
  SimplifyOptions Fast;
  Fast.FastMath = true;
  EXPECT_EQ(simplifyNumExpr(B, Root, Fast), X);
}

TEST(SimplifyTest, CascadedRewritesReachFixpointBottomUp) {
  NumExprBuilder B;
  NumId X = B.dataRef(0);
  // neg(neg(x)) * 1 + (-0)  ->  x, through three distinct rules.
  NumId Inner = B.rawNode(NumOp::Neg, 0, B.rawNode(NumOp::Neg, 0, X, 0), 0);
  NumId Root = B.rawNode(
      NumOp::Add, 0, B.rawNode(NumOp::Mul, 0, Inner, B.constant(1.0)),
      B.constant(-0.0));
  EXPECT_EQ(simplifyNumExpr(B, Root), X);
}

TEST(SimplifyTest, LiveNodeCountIgnoresDeadNodes) {
  NumExprBuilder B;
  for (int I = 0; I < 20; ++I)
    B.rawNode(NumOp::Add, 0, B.dataRef(0), B.constant(double(I) + 0.5));
  NumId Root = B.rawNode(NumOp::Mul, 0, B.dataRef(1), B.dataRef(0));
  EXPECT_EQ(liveNodeCount(B, Root), 3u);
}

TEST(SimplifyTest, RandomUnfoldedDagsPreserveValuesBitwise) {
  // Differential fuzz at the DAG level: random expressions built with
  // rawNode (so factory folding cannot pre-empt the pass), evaluated on
  // rows mixing ordinary values with NaN/Inf/±0.
  Rng R(2024);
  const double Specials[] = {0.0, -0.0, 1.0,  -1.0, 0.5,
                             Inf, -Inf, NaN,  3.25, -2.5};
  for (int Trial = 0; Trial < 200; ++Trial) {
    NumExprBuilder B;
    std::vector<NumId> Pool = {B.dataRef(0), B.dataRef(1),
                               B.constant(Specials[R.index(10)]),
                               B.constant(1.0), B.constant(0.0),
                               B.constant(-0.0)};
    for (int I = 0; I < 40; ++I) {
      NumId A = Pool[R.index(Pool.size())];
      NumId C = Pool[R.index(Pool.size())];
      NumOp Op = NumOp(2 + R.index(14)); // Add .. Eq.
      Pool.push_back(numOpIsBinary(Op) ? B.rawNode(Op, 0, A, C)
                                       : B.rawNode(Op, 0, A, 0));
    }
    NumId Root = Pool.back();
    SimplifyStats Stats;
    NumId S = simplifyNumExpr(B, Root, {}, &Stats);
    EXPECT_LE(Stats.NodesOut, Stats.NodesIn);
    for (int Row = 0; Row < 12; ++Row) {
      std::vector<double> Data = {Specials[R.index(10)],
                                  Specials[R.index(10)]};
      EXPECT_TRUE(sameValue(B.eval(S, Data), B.eval(Root, Data)))
          << "trial " << Trial << " row {" << Data[0] << ", " << Data[1]
          << "}: " << B.str(Root) << "  =>  " << B.str(S);
    }
  }
}
