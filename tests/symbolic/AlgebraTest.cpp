//===- tests/symbolic/AlgebraTest.cpp - Figure 6 rule unit tests ----------===//

#include "symbolic/Algebra.h"

#include "support/Special.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace psketch;

namespace {

/// Fixture holding one builder + algebra and small helpers.
class AlgebraTest : public ::testing::Test {
protected:
  double constOf(NumId Id) {
    double V = 0;
    EXPECT_TRUE(B.isConst(Id, V)) << B.str(Id);
    return V;
  }

  SymValue gauss(double Mu, double Sigma) {
    return SymValue::mog(
        {{B.constant(1.0), B.constant(Mu), B.constant(Sigma)}});
  }

  SymValue known(double V) { return SymValue::known(B.constant(V)); }

  /// Evaluates a (constant-parameter) symbolic density at X.
  double densityAt(const SymValue &V, double X) {
    return std::exp(B.eval(A.logDensityAt(V, B.constant(X)), {}));
  }

  NumExprBuilder B;
  MoGAlgebra A{B};
};

TEST_F(AlgebraTest, KnownArithmeticFolds) {
  SymValue S = A.add(known(2.0), known(3.0));
  ASSERT_TRUE(S.isKnown());
  EXPECT_DOUBLE_EQ(constOf(S.knownValue()), 5.0);
  EXPECT_DOUBLE_EQ(constOf(A.mul(known(2.0), known(4.0)).knownValue()),
                   8.0);
  EXPECT_DOUBLE_EQ(constOf(A.sub(known(2.0), known(4.0)).knownValue()),
                   -2.0);
  EXPECT_DOUBLE_EQ(constOf(A.negate(known(2.0)).knownValue()), -2.0);
}

TEST_F(AlgebraTest, MoGPlusMoGConvolvesComponents) {
  // N(1, 3) + N(2, 4) = N(3, 5).
  SymValue S = A.add(gauss(1.0, 3.0), gauss(2.0, 4.0));
  ASSERT_TRUE(S.isMoG());
  ASSERT_EQ(S.components().size(), 1u);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 3.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Sigma), 5.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].W), 1.0);
}

TEST_F(AlgebraTest, MoGMinusMoG) {
  SymValue S = A.sub(gauss(5.0, 3.0), gauss(2.0, 4.0));
  ASSERT_TRUE(S.isMoG());
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 3.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Sigma), 5.0);
}

TEST_F(AlgebraTest, MixturePlusMixtureHasPairwiseComponents) {
  SymValue M1 = SymValue::mog(
      {{B.constant(0.4), B.constant(0.0), B.constant(1.0)},
       {B.constant(0.6), B.constant(10.0), B.constant(2.0)}});
  SymValue S = A.add(M1, gauss(1.0, 1.0));
  ASSERT_TRUE(S.isMoG());
  ASSERT_EQ(S.components().size(), 2u);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].W), 0.4);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 1.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[1].Mu), 11.0);
}

TEST_F(AlgebraTest, KnownShiftIsExact) {
  // Known + MoG must not inflate the deviation (no bandwidth smear in
  // the default mode).
  SymValue S = A.add(known(5.0), gauss(1.0, 2.0));
  ASSERT_TRUE(S.isMoG());
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 6.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Sigma), 2.0);
}

TEST_F(AlgebraTest, KnownScaleIsExact) {
  SymValue S = A.mul(known(-3.0), gauss(2.0, 1.5));
  ASSERT_TRUE(S.isMoG());
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), -6.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Sigma), 4.5);
}

TEST_F(AlgebraTest, StrictLiftingSmearsConstants) {
  AlgebraConfig Cfg;
  Cfg.StrictConstLifting = true;
  Cfg.Bandwidth = 0.5;
  MoGAlgebra Strict(B, Cfg);
  SymValue S = Strict.add(SymValue::known(B.constant(5.0)),
                          gauss(1.0, 2.0));
  ASSERT_TRUE(S.isMoG());
  double V = 0;
  ASSERT_TRUE(B.isConst(S.components()[0].Sigma, V));
  EXPECT_NEAR(V, std::sqrt(4.0 + 0.25), 1e-12);
}

TEST_F(AlgebraTest, PaperProductRule) {
  // The starred MoG x MoG rule: precision-weighted mean, harmonic
  // variance.
  SymValue S = A.mul(gauss(2.0, 1.0), gauss(6.0, 1.0));
  ASSERT_TRUE(S.isMoG());
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 4.0);
  EXPECT_NEAR(constOf(S.components()[0].Sigma), std::sqrt(0.5), 1e-12);
}

TEST_F(AlgebraTest, GreaterYieldsErfProbability) {
  SymValue P = A.greater(gauss(3.0, 1.0), gauss(1.0, 2.0));
  ASSERT_TRUE(P.isBern());
  EXPECT_NEAR(constOf(P.bernProb()),
              gaussianGreaterProb(3.0, 1.0, 1.0, 2.0), 1e-12);
}

TEST_F(AlgebraTest, GreaterAgainstKnownIsExactTail) {
  SymValue P = A.greater(gauss(0.0, 1.0), known(1.0));
  ASSERT_TRUE(P.isBern());
  EXPECT_NEAR(constOf(P.bernProb()), 1.0 - gaussianCdf(1.0, 0.0, 1.0),
              1e-12);
}

TEST_F(AlgebraTest, LessIsMirrorOfGreater) {
  SymValue P1 = A.less(gauss(1.0, 2.0), gauss(3.0, 1.0));
  SymValue P2 = A.greater(gauss(3.0, 1.0), gauss(1.0, 2.0));
  EXPECT_DOUBLE_EQ(constOf(P1.bernProb()), constOf(P2.bernProb()));
}

TEST_F(AlgebraTest, KnownComparisonIsIndicator) {
  EXPECT_DOUBLE_EQ(
      constOf(A.greater(known(2.0), known(1.0)).bernProb()), 1.0);
  EXPECT_DOUBLE_EQ(
      constOf(A.greater(known(1.0), known(2.0)).bernProb()), 0.0);
}

TEST_F(AlgebraTest, MixtureGreaterSumsPairwise) {
  SymValue M = SymValue::mog(
      {{B.constant(0.5), B.constant(-10.0), B.constant(1.0)},
       {B.constant(0.5), B.constant(10.0), B.constant(1.0)}});
  SymValue P = A.greater(M, known(0.0));
  EXPECT_NEAR(constOf(P.bernProb()), 0.5, 1e-9);
}

TEST_F(AlgebraTest, BernoulliLogic) {
  SymValue P = SymValue::bern(B.constant(0.3));
  SymValue Q = SymValue::bern(B.constant(0.5));
  EXPECT_NEAR(constOf(A.logicalAnd(P, Q).bernProb()), 0.15, 1e-12);
  EXPECT_NEAR(constOf(A.logicalOr(P, Q).bernProb()), 0.65, 1e-12);
  EXPECT_NEAR(constOf(A.logicalNot(P).bernProb()), 0.7, 1e-12);
}

TEST_F(AlgebraTest, BernoulliEquality) {
  SymValue P = SymValue::bern(B.constant(0.3));
  SymValue Q = SymValue::bern(B.constant(0.5));
  // agree = pq + (1-p)(1-q) = 0.15 + 0.35 = 0.5.
  EXPECT_NEAR(constOf(A.equal(P, Q).bernProb()), 0.5, 1e-12);
}

TEST_F(AlgebraTest, KnownEqualityIsIndicator) {
  EXPECT_DOUBLE_EQ(constOf(A.equal(known(2.0), known(2.0)).bernProb()),
                   1.0);
  EXPECT_DOUBLE_EQ(constOf(A.equal(known(2.0), known(3.0)).bernProb()),
                   0.0);
}

TEST_F(AlgebraTest, ContinuousEqualityIsUnit) {
  EXPECT_TRUE(A.equal(gauss(0, 1), known(0.0)).isUnit());
}

TEST_F(AlgebraTest, IteMixesNumericBranches) {
  SymValue Cond = SymValue::bern(B.constant(0.25));
  SymValue S = A.ite(Cond, gauss(0.0, 1.0), gauss(10.0, 2.0));
  ASSERT_TRUE(S.isMoG());
  ASSERT_EQ(S.components().size(), 2u);
  EXPECT_NEAR(constOf(S.components()[0].W), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 0.0);
  EXPECT_NEAR(constOf(S.components()[1].W), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(constOf(S.components()[1].Mu), 10.0);
}

TEST_F(AlgebraTest, IteWithConstantConditionPicksBranch) {
  SymValue T = A.ite(SymValue::bern(B.constant(1.0)), gauss(0, 1),
                     gauss(10, 2));
  ASSERT_TRUE(T.isMoG());
  EXPECT_EQ(T.components().size(), 1u);
  EXPECT_DOUBLE_EQ(constOf(T.components()[0].Mu), 0.0);
  SymValue F = A.ite(SymValue::bern(B.constant(0.0)), gauss(0, 1),
                     gauss(10, 2));
  EXPECT_DOUBLE_EQ(constOf(F.components()[0].Mu), 10.0);
}

TEST_F(AlgebraTest, IteOfBernoullisCombines) {
  SymValue S = A.ite(SymValue::bern(B.constant(0.5)),
                     SymValue::bern(B.constant(0.8)),
                     SymValue::bern(B.constant(0.2)));
  ASSERT_TRUE(S.isBern());
  EXPECT_NEAR(constOf(S.bernProb()), 0.5, 1e-12);
}

TEST_F(AlgebraTest, GaussianConstructorKnownParams) {
  SymValue S = A.gaussian(known(5.0), known(2.0));
  ASSERT_TRUE(S.isMoG());
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 5.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Sigma), 2.0);
}

TEST_F(AlgebraTest, GaussianNegativeSigmaIsRectified) {
  SymValue S = A.gaussian(known(0.0), known(-2.0));
  ASSERT_TRUE(S.isMoG());
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Sigma), 2.0);
}

TEST_F(AlgebraTest, CompoundGaussianAddsVariances) {
  // Gaussian(m, 15) with m ~ N(100, 10) == N(100, sqrt(325)).
  SymValue S = A.gaussian(gauss(100.0, 10.0), known(15.0));
  ASSERT_TRUE(S.isMoG());
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 100.0);
  EXPECT_NEAR(constOf(S.components()[0].Sigma), std::sqrt(325.0), 1e-12);
}

TEST_F(AlgebraTest, BernoulliConstructorClampsAndAcceptsMoG) {
  EXPECT_NEAR(constOf(A.bernoulli(known(0.3)).bernProb()), 0.3, 1e-12);
  EXPECT_NEAR(constOf(A.bernoulli(known(1.7)).bernProb()), 1.0, 1e-12);
  // Mixture-distributed p collapses to its mean.
  SymValue P = A.bernoulli(gauss(0.4, 0.1));
  EXPECT_NEAR(constOf(P.bernProb()), 0.4, 1e-9);
}

TEST_F(AlgebraTest, BetaMomentMatching) {
  SymValue S = A.beta(known(2.0), known(6.0));
  ASSERT_TRUE(S.isMoG());
  double Mean, Sd;
  betaMoments(2.0, 6.0, Mean, Sd);
  EXPECT_NEAR(constOf(S.components()[0].Mu), Mean, 1e-12);
  EXPECT_NEAR(constOf(S.components()[0].Sigma), Sd, 1e-12);
}

TEST_F(AlgebraTest, GammaMomentMatching) {
  SymValue S = A.gammaDist(known(4.0), known(0.5));
  double Mean, Sd;
  gammaMoments(4.0, 0.5, Mean, Sd);
  EXPECT_NEAR(constOf(S.components()[0].Mu), Mean, 1e-12);
  EXPECT_NEAR(constOf(S.components()[0].Sigma), Sd, 1e-12);
}

TEST_F(AlgebraTest, PoissonMomentMatching) {
  SymValue S = A.poisson(known(9.0));
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Mu), 9.0);
  EXPECT_DOUBLE_EQ(constOf(S.components()[0].Sigma), 3.0);
}

TEST_F(AlgebraTest, UnsupportedCombinationsYieldUnit) {
  SymValue P = SymValue::bern(B.constant(0.5));
  EXPECT_TRUE(A.add(P, gauss(0, 1)).isUnit());
  EXPECT_TRUE(A.logicalAnd(known(1.0), P).isUnit());
  EXPECT_TRUE(A.greater(P, known(0.0)).isUnit());
  EXPECT_TRUE(A.gaussian(P, known(1.0)).isUnit());
}

TEST_F(AlgebraTest, ProbabilityOfUnitIsOne) {
  EXPECT_DOUBLE_EQ(constOf(A.probabilityOf(SymValue::unit())), 1.0);
}

TEST_F(AlgebraTest, LogDensityOfMoGMatchesClosedForm) {
  SymValue M = SymValue::mog(
      {{B.constant(0.3), B.constant(0.0), B.constant(1.0)},
       {B.constant(0.7), B.constant(5.0), B.constant(2.0)}});
  for (double X : {-1.0, 0.0, 2.5, 5.0})
    EXPECT_NEAR(std::log(densityAt(M, X)),
                mixtureLogPdf(X, {0.3, 0.7}, {0.0, 5.0}, {1.0, 2.0}),
                1e-9);
}

TEST_F(AlgebraTest, LogDensityOfSingleComponentAvoidsUnderflow) {
  SymValue G = gauss(0.0, 1.0);
  // 60 sigma out: the linear-space density underflows, the single
  // component fast path must not.
  NumId LL = A.logDensityAt(G, B.constant(60.0));
  EXPECT_NEAR(B.eval(LL, {}), gaussianLogPdf(60.0, 0.0, 1.0), 1e-6);
}

TEST_F(AlgebraTest, LogDensityOfBernoulli) {
  SymValue P = SymValue::bern(B.constant(0.3));
  EXPECT_NEAR(B.eval(A.logDensityAt(P, B.constant(1.0)), {}),
              std::log(0.3), 1e-9);
  EXPECT_NEAR(B.eval(A.logDensityAt(P, B.constant(0.0)), {}),
              std::log(0.7), 1e-9);
}

TEST_F(AlgebraTest, LogDensityOfKnownUsesBandwidth) {
  SymValue K = known(2.0);
  EXPECT_NEAR(B.eval(A.logDensityAt(K, B.constant(2.0)), {}),
              gaussianLogPdf(2.0, 2.0, A.config().Bandwidth), 1e-9);
}

TEST_F(AlgebraTest, MeanOfMixture) {
  SymValue M = SymValue::mog(
      {{B.constant(0.25), B.constant(0.0), B.constant(1.0)},
       {B.constant(0.75), B.constant(4.0), B.constant(1.0)}});
  SymValue Mean = A.meanOf(M);
  ASSERT_TRUE(Mean.isKnown());
  EXPECT_NEAR(constOf(Mean.knownValue()), 3.0, 1e-12);
}

TEST_F(AlgebraTest, ComponentCapPrunesAndRenormalizes) {
  AlgebraConfig Cfg;
  Cfg.MaxComponents = 4;
  MoGAlgebra Small(B, Cfg);
  // Build an 8-component mixture by three doublings.
  SymValue M = gauss(0.0, 1.0);
  for (int I = 0; I < 3; ++I)
    M = Small.ite(SymValue::bern(B.constant(0.5)), M,
                  Small.add(M, gauss(1.0, 1.0)));
  ASSERT_TRUE(M.isMoG());
  EXPECT_LE(M.components().size(), 4u);
  double TotalW = 0;
  for (const MoGComponent &C : M.components()) {
    double W = 0;
    ASSERT_TRUE(B.isConst(C.W, W));
    TotalW += W;
  }
  EXPECT_NEAR(TotalW, 1.0, 1e-9);
}

} // namespace
