//===- tests/symbolic/SymValueTest.cpp - SymValue unit tests --------------===//

#include "symbolic/SymValue.h"

#include <gtest/gtest.h>

using namespace psketch;

TEST(SymValueTest, DefaultIsUnit) {
  SymValue V;
  EXPECT_TRUE(V.isUnit());
  EXPECT_FALSE(V.isKnown());
  EXPECT_FALSE(V.isMoG());
  EXPECT_FALSE(V.isBern());
  EXPECT_EQ(V.kind(), SymValue::Kind::Unit);
}

TEST(SymValueTest, KnownHoldsExpression) {
  NumExprBuilder B;
  NumId E = B.add(B.dataRef(0), B.constant(1.0));
  SymValue V = SymValue::known(E);
  ASSERT_TRUE(V.isKnown());
  EXPECT_EQ(V.knownValue(), E);
}

TEST(SymValueTest, BernHoldsProbability) {
  NumExprBuilder B;
  NumId P = B.constant(0.25);
  SymValue V = SymValue::bern(P);
  ASSERT_TRUE(V.isBern());
  EXPECT_EQ(V.bernProb(), P);
}

TEST(SymValueTest, MoGHoldsComponents) {
  NumExprBuilder B;
  SymValue V = SymValue::mog(
      {{B.constant(0.3), B.constant(0.0), B.constant(1.0)},
       {B.constant(0.7), B.constant(5.0), B.constant(2.0)}});
  ASSERT_TRUE(V.isMoG());
  ASSERT_EQ(V.components().size(), 2u);
  double W = 0;
  EXPECT_TRUE(B.isConst(V.components()[1].W, W));
  EXPECT_DOUBLE_EQ(W, 0.7);
}

TEST(SymValueTest, CopyKeepsKindAndPayload) {
  NumExprBuilder B;
  SymValue V = SymValue::mog(
      {{B.constant(1.0), B.constant(2.0), B.constant(3.0)}});
  SymValue Copy = V;
  ASSERT_TRUE(Copy.isMoG());
  EXPECT_EQ(Copy.components().size(), 1u);
  EXPECT_EQ(Copy.components()[0].Mu, V.components()[0].Mu);
}
